//! Topology automorphism detection for symmetry-aware solving.
//!
//! Fat-tree pods are massively symmetric: every aggregation switch within a
//! pod (same ASIC, same layer, same links, same scope membership) is
//! interchangeable with every other, and likewise for the ToRs. Any
//! placement found on one representative therefore transfers to the others
//! by relabeling. [`interchangeable_classes`] detects these classes so the
//! synthesis layer can (a) emit lexicographic tie-breaking constraints that
//! keep the CDCL solver from branching over equivalent placements, and
//! (b) solve a quotient problem over class representatives and replicate
//! the solution.
//!
//! Detection is deliberately conservative: two switches are grouped only
//! when the *transposition* swapping them (and fixing everything else) is
//! verified to be an automorphism of both the topology's link relation and
//! every scope's switch set and path multiset. A transposition that passes
//! this check maps any constraint of the encoding to another constraint of
//! the encoding, so symmetry conclusions drawn from the classes are sound
//! by construction rather than by pattern-matching on switch names.

use std::collections::BTreeMap;

use crate::scope::ResolvedScope;
use crate::{SwitchId, Topology};

/// Union-find with path halving.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Apply the transposition `(a b)` to a switch id.
fn swap_id(s: SwitchId, a: SwitchId, b: SwitchId) -> SwitchId {
    if s == a {
        b
    } else if s == b {
        a
    } else {
        s
    }
}

/// Is the transposition `(a b)` an automorphism of the link relation?
fn links_invariant(topo: &Topology, a: SwitchId, b: SwitchId) -> bool {
    // Compare edge multisets as sorted normalized pairs.
    let canon = |x: SwitchId, y: SwitchId| {
        if x.0 <= y.0 {
            (x.0, y.0)
        } else {
            (y.0, x.0)
        }
    };
    let mut orig: Vec<(u32, u32)> = topo.links.iter().map(|l| canon(l.a, l.b)).collect();
    let mut swapped: Vec<(u32, u32)> = topo
        .links
        .iter()
        .map(|l| canon(swap_id(l.a, a, b), swap_id(l.b, a, b)))
        .collect();
    orig.sort_unstable();
    swapped.sort_unstable();
    orig == swapped
}

/// Is the transposition `(a b)` an automorphism of every scope — same
/// switch set and same path multiset after the swap?
fn scopes_invariant(scopes: &[ResolvedScope], a: SwitchId, b: SwitchId) -> bool {
    scopes.iter().all(|scope| {
        // Membership: both in or both out.
        if scope.switches.contains(&a) != scope.switches.contains(&b) {
            return false;
        }
        // Path multiset invariant under the swap.
        let mut orig: Vec<&Vec<SwitchId>> = scope.paths.iter().collect();
        let mut swapped: Vec<Vec<SwitchId>> = scope
            .paths
            .iter()
            .map(|p| p.iter().map(|&s| swap_id(s, a, b)).collect())
            .collect();
        orig.sort_unstable();
        swapped.sort_unstable();
        orig.iter().zip(&swapped).all(|(o, s)| **o == *s)
    })
}

/// Detect classes of interchangeable switches: groups whose pairwise
/// transpositions are verified automorphisms of the topology *and* of every
/// resolved scope. Returns classes of size ≥ 2, each sorted by [`SwitchId`],
/// ordered by their smallest member.
///
/// Only switches with identical `(asic, layer)` are ever candidates —
/// differing chips have differing resource constraints, so swapping them
/// changes the encoding even when the wiring matches.
pub fn interchangeable_classes(topo: &Topology, scopes: &[ResolvedScope]) -> Vec<Vec<SwitchId>> {
    // Candidate buckets by (asic, layer).
    let mut buckets: BTreeMap<(String, u8), Vec<SwitchId>> = BTreeMap::new();
    for (i, sw) in topo.switches.iter().enumerate() {
        let layer = match sw.layer {
            crate::Layer::ToR => 0u8,
            crate::Layer::Agg => 1,
            crate::Layer::Core => 2,
        };
        buckets
            .entry((sw.asic.clone(), layer))
            .or_default()
            .push(SwitchId(i as u32));
    }
    let mut uf = UnionFind::new(topo.len());
    for ids in buckets.values() {
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if uf.find(a.index()) == uf.find(b.index()) {
                    continue; // already known interchangeable (transitively)
                }
                if links_invariant(topo, a, b) && scopes_invariant(scopes, a, b) {
                    uf.union(a.index(), b.index());
                }
            }
        }
    }
    // Note: union-find closure is sound here. If (a b) and (b c) are both
    // automorphisms then (a c) = (a b)(b c)(a b) is too, so transitive
    // grouping never over-approximates.
    let mut classes: BTreeMap<usize, Vec<SwitchId>> = BTreeMap::new();
    for i in 0..topo.len() {
        classes
            .entry(uf.find(i))
            .or_default()
            .push(SwitchId(i as u32));
    }
    classes.into_values().filter(|c| c.len() >= 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fat_tree_pod, figure1_network};
    use crate::resolve_scope;
    use lyra_lang::parse_scopes;

    fn resolved(topo: &Topology, text: &str) -> Vec<ResolvedScope> {
        parse_scopes(text)
            .unwrap()
            .iter()
            .map(|s| resolve_scope(topo, s).unwrap())
            .collect()
    }

    #[test]
    fn fat_tree_pod_has_two_full_classes() {
        let topo = fat_tree_pod(8, "tofino-32q", "trident4");
        let scopes = resolved(
            &topo,
            "lb: [ ToR*,Agg* | MULTI-SW | (Agg1,Agg2,Agg3,Agg4->ToR1,ToR2,ToR3,ToR4) ]",
        );
        let classes = interchangeable_classes(&topo, &scopes);
        assert_eq!(classes.len(), 2, "aggs and tors: {classes:?}");
        let sizes: Vec<usize> = classes.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4]);
        // Each class is layer-pure.
        for class in &classes {
            let layers: Vec<_> = class.iter().map(|&s| topo.switch(s).layer).collect();
            assert!(layers.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn figure1_tors_split_by_asic() {
        let topo = figure1_network();
        // ToR1 is tofino-32q, ToR2 tofino-64q, ToR3/ToR4 silicon-one: only
        // the silicon-one pair can be interchangeable, and only within a
        // scope that treats them symmetrically.
        let scopes = resolved(
            &topo,
            "lb: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
        );
        let classes = interchangeable_classes(&topo, &scopes);
        let tor3 = topo.find("ToR3").unwrap();
        let tor4 = topo.find("ToR4").unwrap();
        assert!(
            classes
                .iter()
                .any(|c| c.contains(&tor3) && c.contains(&tor4)),
            "silicon-one ToRs should pair: {classes:?}"
        );
        let tor1 = topo.find("ToR1").unwrap();
        assert!(
            classes.iter().all(|c| !c.contains(&tor1)),
            "ToR1 (unique ASIC) must stay alone: {classes:?}"
        );
    }

    #[test]
    fn asymmetric_scope_breaks_class() {
        let topo = fat_tree_pod(4, "tofino-32q", "trident4");
        // A scope naming only ToR1 distinguishes ToR1 from ToR2.
        let scopes = resolved(&topo, "a: [ ToR1 | PER-SW | - ]");
        let classes = interchangeable_classes(&topo, &scopes);
        let tor1 = topo.find("ToR1").unwrap();
        assert!(classes.iter().all(|c| !c.contains(&tor1)));
    }

    #[test]
    fn no_scopes_pure_topology_symmetry() {
        let topo = fat_tree_pod(4, "tofino-32q", "trident4");
        let classes = interchangeable_classes(&topo, &[]);
        // k=4 pod: 2 aggs + 2 tors, fully bipartite — two classes of two.
        assert_eq!(classes.len(), 2);
        assert!(classes.iter().all(|c| c.len() == 2));
    }
}
