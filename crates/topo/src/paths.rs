//! Flow-path enumeration (§4.3): "potential flow paths in each scope, such
//! as in the Load Balancer scope there are four possible flow paths:
//! Agg3 → ToR3, Agg3 → ToR4, Agg4 → ToR3, and Agg4 → ToR4."
//!
//! Paths are simple (no repeated switch) and restricted to an allowed switch
//! set, which is how scopes "tailor" the network.

use crate::{SwitchId, Topology};

/// Enumerate all simple paths from any switch in `from` to any switch in
/// `to`, visiting only switches in `allowed`. Paths are returned in
/// deterministic order. `max_len` bounds the path length in hops to keep the
/// enumeration tractable on dense topologies.
pub fn enumerate_paths(
    topo: &Topology,
    from: &[SwitchId],
    to: &[SwitchId],
    allowed: &[SwitchId],
    max_len: usize,
) -> Vec<Vec<SwitchId>> {
    let allowed_set: Vec<bool> = {
        let mut v = vec![false; topo.len()];
        for &s in allowed {
            v[s.index()] = true;
        }
        v
    };
    let target: Vec<bool> = {
        let mut v = vec![false; topo.len()];
        for &s in to {
            v[s.index()] = true;
        }
        v
    };
    let mut out = Vec::new();
    for &start in from {
        if !allowed_set[start.index()] {
            continue;
        }
        let mut visited = vec![false; topo.len()];
        visited[start.index()] = true;
        let mut path = vec![start];
        dfs(
            topo,
            &allowed_set,
            &target,
            &mut visited,
            &mut path,
            &mut out,
            max_len,
        );
    }
    out
}

fn dfs(
    topo: &Topology,
    allowed: &[bool],
    target: &[bool],
    visited: &mut Vec<bool>,
    path: &mut Vec<SwitchId>,
    out: &mut Vec<Vec<SwitchId>>,
    max_len: usize,
) {
    let cur = *path.last().unwrap();
    if target[cur.index()] {
        out.push(path.clone());
        // Traffic leaves the scope at the first egress switch it reaches
        // ("the load balancer ... could never take a path from ToR4 to
        // Agg4"), so the path ends here.
        return;
    }
    if path.len() > max_len {
        return;
    }
    let mut neighbors = topo.neighbors(cur);
    neighbors.sort();
    for n in neighbors {
        if allowed[n.index()] && !visited[n.index()] {
            visited[n.index()] = true;
            path.push(n);
            dfs(topo, allowed, target, visited, path, out, max_len);
            path.pop();
            visited[n.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::figure1_network;

    #[test]
    fn figure1_lb_paths() {
        // The paper: within {Agg3, Agg4, ToR3, ToR4}, flows Agg→ToR yield
        // four direct paths.
        let t = figure1_network();
        let ids = |names: &[&str]| -> Vec<SwitchId> {
            names.iter().map(|n| t.find(n).unwrap()).collect()
        };
        let from = ids(&["Agg3", "Agg4"]);
        let to = ids(&["ToR3", "ToR4"]);
        let allowed = ids(&["Agg3", "Agg4", "ToR3", "ToR4"]);
        let paths = enumerate_paths(&t, &from, &to, &allowed, 1);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.len(), 2);
            assert!(matches!(t.switch(p[0]).layer, crate::Layer::Agg));
            assert!(matches!(t.switch(p[1]).layer, crate::Layer::ToR));
        }
    }

    #[test]
    fn no_path_outside_allowed_set() {
        let t = figure1_network();
        let from = vec![t.find("Agg3").unwrap()];
        let to = vec![t.find("ToR1").unwrap()];
        // ToR1 is reachable only through the core, which is not allowed.
        let allowed = vec![t.find("Agg3").unwrap(), t.find("ToR1").unwrap()];
        let paths = enumerate_paths(&t, &from, &to, &allowed, 5);
        assert!(paths.is_empty());
    }

    #[test]
    fn single_switch_path() {
        let t = figure1_network();
        let s = t.find("ToR3").unwrap();
        let paths = enumerate_paths(&t, &[s], &[s], &[s], 1);
        assert_eq!(paths, vec![vec![s]]);
    }

    #[test]
    fn longer_paths_respect_max_len() {
        let t = figure1_network();
        let from = vec![t.find("ToR3").unwrap()];
        let to = vec![t.find("ToR4").unwrap()];
        let allowed: Vec<SwitchId> = (0..t.len() as u32).map(SwitchId).collect();
        // ToR3 → Agg3/Agg4 → ToR4 (2 hops).
        let paths = enumerate_paths(&t, &from, &to, &allowed, 2);
        assert!(paths.iter().any(|p| p.len() == 3));
        for p in &paths {
            assert!(p.len() <= 3);
        }
    }
}
