//! The topology fault model (§8 "handling network changes").
//!
//! Lyra's operational pitch is that one big-pipeline program survives
//! network change: when a link or switch dies, operators re-run the
//! compiler against the degraded network instead of rewriting chip code.
//! This module supplies the vocabulary for that workflow:
//!
//! * [`FaultSet`] — a set of failed switches and failed links, by name;
//! * [`Topology::degrade`] — the surviving topology (failed switches and
//!   links removed, plus every link stranded by a switch failure), together
//!   with the connected components of what remains;
//! * [`scope_health`] — per-scope triage: did a resolved scope stay intact,
//!   merely shrink, become *partitioned* (switches survive but no flow path
//!   does), or become entirely *unreachable*?
//!
//! The compile driver builds on these to recompile a deployment for a
//! fault set and to report exactly which algorithm scopes a fault killed.

use std::collections::{BTreeSet, VecDeque};

use crate::{ResolvedScope, SwitchId, Topology};

/// A set of failed network elements, identified by switch name. Links are
/// undirected: failing `(a, b)` also fails `(b, a)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    switches: BTreeSet<String>,
    links: BTreeSet<(String, String)>,
}

/// Order a link's endpoint names so `(a, b)` and `(b, a)` collide.
fn link_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

impl FaultSet {
    /// An empty fault set (nothing failed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark a switch as failed. Builder-style; see also
    /// [`FaultSet::add_switch`].
    pub fn with_switch(mut self, name: impl Into<String>) -> Self {
        self.add_switch(name);
        self
    }

    /// Mark a link as failed. Builder-style; see also [`FaultSet::add_link`].
    pub fn with_link(mut self, a: impl AsRef<str>, b: impl AsRef<str>) -> Self {
        self.add_link(a, b);
        self
    }

    /// Mark a switch as failed.
    pub fn add_switch(&mut self, name: impl Into<String>) {
        self.switches.insert(name.into());
    }

    /// Mark an undirected link as failed.
    pub fn add_link(&mut self, a: impl AsRef<str>, b: impl AsRef<str>) {
        self.links.insert(link_key(a.as_ref(), b.as_ref()));
    }

    /// True when nothing is failed.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty() && self.links.is_empty()
    }

    /// Is this switch failed?
    pub fn switch_failed(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Is this link failed — either explicitly, or because an endpoint
    /// switch is down?
    pub fn link_failed(&self, a: &str, b: &str) -> bool {
        self.switches.contains(a)
            || self.switches.contains(b)
            || self.links.contains(&link_key(a, b))
    }

    /// Failed switch names, sorted.
    pub fn failed_switches(&self) -> impl Iterator<Item = &str> {
        self.switches.iter().map(|s| s.as_str())
    }

    /// Explicitly failed links, sorted.
    pub fn failed_links(&self) -> impl Iterator<Item = (&str, &str)> {
        self.links.iter().map(|(a, b)| (a.as_str(), b.as_str()))
    }

    /// A path of switch names survives when every hop is alive and every
    /// consecutive hop pair's link is alive.
    pub fn path_survives<S: AsRef<str>>(&self, path: &[S]) -> bool {
        if path.iter().any(|s| self.switch_failed(s.as_ref())) {
            return false;
        }
        path.windows(2)
            .all(|w| !self.link_failed(w[0].as_ref(), w[1].as_ref()))
    }

    /// Fault elements that name switches absent from `topo` (typos, or a
    /// fault set built against a different network). Link endpoints are
    /// checked too.
    pub fn unknown_elements(&self, topo: &Topology) -> Vec<String> {
        let mut unknown: Vec<String> = Vec::new();
        for s in &self.switches {
            if topo.find(s).is_none() {
                unknown.push(s.clone());
            }
        }
        for (a, b) in &self.links {
            for end in [a, b] {
                if topo.find(end).is_none() && !unknown.contains(end) {
                    unknown.push(end.clone());
                }
            }
        }
        unknown
    }
}

/// The result of applying a [`FaultSet`] to a [`Topology`].
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeReport {
    /// The surviving topology: failed switches removed (switch ids are
    /// re-assigned), failed links and links stranded by switch failures
    /// removed.
    pub topology: Topology,
    /// Names of switches removed by the fault set.
    pub removed_switches: Vec<String>,
    /// Links physically removed — explicitly failed links plus links that
    /// lost an endpoint.
    pub removed_links: Vec<(String, String)>,
    /// Connected components of the surviving topology (switch names). More
    /// than one component means the surviving network is partitioned.
    pub components: Vec<Vec<String>>,
}

impl Topology {
    /// Apply a fault set: drop failed switches and links and report what
    /// remains. Fault entries naming unknown switches are ignored here;
    /// use [`FaultSet::unknown_elements`] to validate a fault set first.
    pub fn degrade(&self, faults: &FaultSet) -> DegradeReport {
        let mut survivor = Topology::new();
        let mut removed_switches = Vec::new();
        for sw in &self.switches {
            if faults.switch_failed(&sw.name) {
                removed_switches.push(sw.name.clone());
            } else {
                survivor.add_switch(sw.name.clone(), sw.layer, sw.asic.clone());
            }
        }
        let mut removed_links = Vec::new();
        for l in &self.links {
            let (a, b) = (&self.switch(l.a).name, &self.switch(l.b).name);
            if faults.link_failed(a, b) {
                removed_links.push(link_key(a, b));
            } else {
                let (sa, sb) = (
                    survivor.find(a).expect("survivor"),
                    survivor.find(b).expect("survivor"),
                );
                survivor.add_link(sa, sb);
            }
        }
        removed_links.sort();
        removed_links.dedup();
        let components = components_of(&survivor);
        DegradeReport {
            topology: survivor,
            removed_switches,
            removed_links,
            components,
        }
    }
}

/// Connected components of a topology, as sorted switch-name groups.
fn components_of(topo: &Topology) -> Vec<Vec<String>> {
    let mut seen = vec![false; topo.len()];
    let mut components = Vec::new();
    for start in 0..topo.len() {
        if seen[start] {
            continue;
        }
        let mut group = Vec::new();
        let mut queue = VecDeque::from([SwitchId(start as u32)]);
        seen[start] = true;
        while let Some(cur) = queue.pop_front() {
            group.push(topo.switch(cur).name.clone());
            for n in topo.neighbors(cur) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    queue.push_back(n);
                }
            }
        }
        group.sort();
        components.push(group);
    }
    components
}

/// How a resolved scope fares under a fault set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeHealth {
    /// Every scope switch and every flow path survives.
    Intact,
    /// Some switches or paths were lost, but at least one flow path
    /// survives — the scope can be recompiled onto the survivors.
    Degraded {
        /// Scope switches that failed.
        lost_switches: Vec<String>,
        /// Flow paths that no longer exist.
        lost_paths: usize,
    },
    /// Scope switches survive, but no flow path does: traffic can no
    /// longer traverse the scope (the scope's region is partitioned).
    Partitioned,
    /// Every switch of the scope failed.
    Unreachable,
}

impl ScopeHealth {
    /// True when the scope can still host its algorithm (intact or merely
    /// degraded).
    pub fn survivable(&self) -> bool {
        matches!(self, ScopeHealth::Intact | ScopeHealth::Degraded { .. })
    }
}

/// Classify a resolved scope against a fault set (see [`ScopeHealth`]).
pub fn scope_health(topo: &Topology, scope: &ResolvedScope, faults: &FaultSet) -> ScopeHealth {
    let lost_switches: Vec<String> = scope
        .switches
        .iter()
        .map(|&s| topo.switch(s).name.clone())
        .filter(|n| faults.switch_failed(n))
        .collect();
    if lost_switches.len() == scope.switches.len() {
        return ScopeHealth::Unreachable;
    }
    let surviving_paths = scope
        .paths
        .iter()
        .filter(|p| {
            let names: Vec<&str> = p.iter().map(|&s| topo.switch(s).name.as_str()).collect();
            faults.path_survives(&names)
        })
        .count();
    if surviving_paths == 0 {
        return ScopeHealth::Partitioned;
    }
    let lost_paths = scope.paths.len() - surviving_paths;
    if lost_switches.is_empty() && lost_paths == 0 {
        ScopeHealth::Intact
    } else {
        ScopeHealth::Degraded {
            lost_switches,
            lost_paths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::figure1_network;
    use crate::resolve_scope;
    use lyra_lang::parse_scopes;

    fn lb_scope(topo: &Topology) -> ResolvedScope {
        let specs = parse_scopes(
            "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
        )
        .unwrap();
        resolve_scope(topo, &specs[0]).unwrap()
    }

    #[test]
    fn degrade_removes_switch_and_stranded_links() {
        let topo = figure1_network();
        let faults = FaultSet::new().with_switch("Agg3");
        let report = topo.degrade(&faults);
        assert_eq!(report.topology.len(), topo.len() - 1);
        assert!(report.topology.find("Agg3").is_none());
        assert_eq!(report.removed_switches, vec!["Agg3".to_string()]);
        // Agg3 had 4 links (2 ToRs + 2 cores); all are stranded.
        assert_eq!(report.removed_links.len(), 4);
        // The survivor network stays connected.
        assert_eq!(report.components.len(), 1);
    }

    #[test]
    fn degrade_reports_partition() {
        let mut topo = Topology::new();
        let a = topo.add_switch("A", crate::Layer::ToR, "tofino-32q");
        let b = topo.add_switch("B", crate::Layer::Agg, "trident4");
        let c = topo.add_switch("C", crate::Layer::ToR, "tofino-32q");
        topo.add_link(a, b);
        topo.add_link(b, c);
        let report = topo.degrade(&FaultSet::new().with_switch("B"));
        assert_eq!(report.components.len(), 2);
    }

    #[test]
    fn link_failure_is_undirected() {
        let faults = FaultSet::new().with_link("ToR3", "Agg3");
        assert!(faults.link_failed("Agg3", "ToR3"));
        assert!(faults.link_failed("ToR3", "Agg3"));
        assert!(!faults.link_failed("ToR4", "Agg3"));
    }

    #[test]
    fn scope_health_classification() {
        let topo = figure1_network();
        let scope = lb_scope(&topo);

        assert_eq!(
            scope_health(&topo, &scope, &FaultSet::new()),
            ScopeHealth::Intact
        );
        // One Agg down: two of four paths die, scope survives.
        let h = scope_health(&topo, &scope, &FaultSet::new().with_switch("Agg3"));
        match h {
            ScopeHealth::Degraded {
                lost_switches,
                lost_paths,
            } => {
                assert_eq!(lost_switches, vec!["Agg3".to_string()]);
                assert_eq!(lost_paths, 2);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // Both Aggs down: ToRs survive but no path enters the scope.
        let h = scope_health(
            &topo,
            &scope,
            &FaultSet::new().with_switch("Agg3").with_switch("Agg4"),
        );
        assert_eq!(h, ScopeHealth::Partitioned);
        // Everything down.
        let mut all = FaultSet::new();
        for n in ["ToR3", "ToR4", "Agg3", "Agg4"] {
            all.add_switch(n);
        }
        assert_eq!(scope_health(&topo, &scope, &all), ScopeHealth::Unreachable);
    }

    #[test]
    fn scope_health_sees_link_failures() {
        let topo = figure1_network();
        let scope = lb_scope(&topo);
        // Cutting one Agg→ToR link kills exactly one path.
        let h = scope_health(&topo, &scope, &FaultSet::new().with_link("Agg3", "ToR3"));
        assert_eq!(
            h,
            ScopeHealth::Degraded {
                lost_switches: vec![],
                lost_paths: 1
            }
        );
    }

    #[test]
    fn unknown_elements_are_reported() {
        let topo = figure1_network();
        let faults = FaultSet::new()
            .with_switch("NoSuchSwitch")
            .with_link("ToR3", "Agg3");
        assert_eq!(faults.unknown_elements(&topo), vec!["NoSuchSwitch"]);
    }

    #[test]
    fn path_survives_checks_hops_and_links() {
        let faults = FaultSet::new().with_link("Agg3", "ToR3");
        assert!(!faults.path_survives(&["Agg3", "ToR3"]));
        assert!(faults.path_survives(&["Agg3", "ToR4"]));
        let faults = FaultSet::new().with_switch("Agg3");
        assert!(!faults.path_survives(&["Agg3", "ToR4"]));
    }
}
