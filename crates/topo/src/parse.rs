//! A plain-text topology description format, for the `lyrac` CLI and for
//! users who keep network descriptions in files:
//!
//! ```text
//! # comments and blank lines are ignored
//! switch ToR1 tor  tofino-32q
//! switch Agg1 agg  trident4
//! switch Core1 core tomahawk
//! link ToR1 Agg1
//! link Agg1 Core1
//! ```

use crate::{Layer, SwitchId, Topology};

/// Errors from parsing a topology document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for TopologyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "topology error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TopologyParseError {}

/// Parse a topology document.
pub fn parse_topology(src: &str) -> Result<Topology, TopologyParseError> {
    let mut topo = Topology::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["switch", name, layer, asic] => {
                let layer = match layer.to_ascii_lowercase().as_str() {
                    "tor" => Layer::ToR,
                    "agg" | "aggregation" => Layer::Agg,
                    "core" => Layer::Core,
                    other => {
                        return Err(TopologyParseError {
                            line: line_no,
                            message: format!(
                                "unknown layer `{other}` (expected tor, agg, or core)"
                            ),
                        })
                    }
                };
                if topo.find(name).is_some() {
                    return Err(TopologyParseError {
                        line: line_no,
                        message: format!("duplicate switch `{name}`"),
                    });
                }
                topo.add_switch(*name, layer, *asic);
            }
            ["link", a, b] => {
                let find = |n: &str| -> Result<SwitchId, TopologyParseError> {
                    topo.find(n).ok_or_else(|| TopologyParseError {
                        line: line_no,
                        message: format!("link references undeclared switch `{n}`"),
                    })
                };
                let (a, b) = (find(a)?, find(b)?);
                if a == b {
                    return Err(TopologyParseError {
                        line: line_no,
                        message: "self links are not allowed".into(),
                    });
                }
                topo.add_link(a, b);
            }
            _ => {
                return Err(TopologyParseError {
                    line: line_no,
                    message: format!(
                        "expected `switch NAME LAYER ASIC` or `link A B`, found `{line}`"
                    ),
                })
            }
        }
    }
    if topo.is_empty() {
        return Err(TopologyParseError {
            line: 0,
            message: "no switches declared".into(),
        });
    }
    Ok(topo)
}

/// Render a topology back to the text format (round-trips through
/// [`parse_topology`]).
pub fn print_topology(topo: &Topology) -> String {
    let mut out = String::new();
    for s in &topo.switches {
        let layer = match s.layer {
            Layer::ToR => "tor",
            Layer::Agg => "agg",
            Layer::Core => "core",
        };
        out.push_str(&format!("switch {} {layer} {}\n", s.name, s.asic));
    }
    for l in &topo.links {
        out.push_str(&format!(
            "link {} {}\n",
            topo.switch(l.a).name,
            topo.switch(l.b).name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
        # a small pod
        switch ToR1 tor tofino-32q
        switch ToR2 tor silicon-one
        switch Agg1 agg trident4
        link ToR1 Agg1
        link ToR2 Agg1
    "#;

    #[test]
    fn parses_and_roundtrips() {
        let t = parse_topology(DOC).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.links.len(), 2);
        assert_eq!(t.switch(t.find("Agg1").unwrap()).layer, Layer::Agg);
        let printed = print_topology(&t);
        let t2 = parse_topology(&printed).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn errors_are_located() {
        let err = parse_topology("switch A tor x\nlink A B").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("undeclared"));
        assert!(parse_topology("switch A spine x").is_err());
        assert!(parse_topology("gibberish").is_err());
        assert!(parse_topology("# only comments").is_err());
        let dup = parse_topology("switch A tor x\nswitch A tor x").unwrap_err();
        assert!(dup.message.contains("duplicate"));
    }
}
