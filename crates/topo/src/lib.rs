#![warn(missing_docs)]
//! # lyra-topo — network topology, scopes, and flow paths
//!
//! Models the *target network* a Lyra program compiles against (§4.3):
//! switches with names, layers, and ASIC types; links; and the flow-path
//! enumeration that deployment constraints are generated from. Includes
//! generators for the paper's Figure 1 network, the §7 evaluation testbed
//! (four Tofino ToRs, four Trident-4 Aggs, two Tofino Cores), and the
//! fat-tree pods used in the Figure 10 scalability experiment.

pub mod builders;
pub mod fault;
pub mod parse;
pub mod paths;
pub mod scope;
pub mod symmetry;

pub use builders::*;
pub use fault::{scope_health, DegradeReport, FaultSet, ScopeHealth};
pub use parse::{parse_topology, print_topology, TopologyParseError};
pub use paths::enumerate_paths;
pub use scope::{resolve_scope, resolve_scope_degraded, ResolvedScope, ScopeResolutionError};
pub use symmetry::interchangeable_classes;

/// Index of a switch within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which layer of the DCN a switch sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Top-of-rack.
    ToR,
    /// Aggregation.
    Agg,
    /// Core.
    Core,
}

/// One switch: a name, its layer, and the ASIC model it runs (by model name;
/// `lyra-chips` owns the resource descriptions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Switch {
    /// Unique switch name (`ToR3`, `Agg1`, …).
    pub name: String,
    /// DCN layer.
    pub layer: Layer,
    /// ASIC model name (`tofino-32q`, `trident4`, `silicon-one`, …).
    pub asic: String,
}

/// An undirected link between two switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One endpoint.
    pub a: SwitchId,
    /// Other endpoint.
    pub b: SwitchId,
}

/// A data center network topology.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Topology {
    /// Switches.
    pub switches: Vec<Switch>,
    /// Links.
    pub links: Vec<Link>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch, returning its id. Panics on duplicate names.
    pub fn add_switch(
        &mut self,
        name: impl Into<String>,
        layer: Layer,
        asic: impl Into<String>,
    ) -> SwitchId {
        let name = name.into();
        assert!(self.find(&name).is_none(), "duplicate switch name `{name}`");
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(Switch {
            name,
            layer,
            asic: asic.into(),
        });
        id
    }

    /// Add an undirected link.
    pub fn add_link(&mut self, a: SwitchId, b: SwitchId) {
        assert!(a != b, "self links are not allowed");
        self.links.push(Link { a, b });
    }

    /// Look up a switch id by name.
    pub fn find(&self, name: &str) -> Option<SwitchId> {
        self.switches
            .iter()
            .position(|s| s.name == name)
            .map(|i| SwitchId(i as u32))
    }

    /// Switch metadata.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.index()]
    }

    /// All switch names, in id order.
    pub fn names(&self) -> Vec<&str> {
        self.switches.iter().map(|s| s.name.as_str()).collect()
    }

    /// Neighbors of a switch.
    pub fn neighbors(&self, id: SwitchId) -> Vec<SwitchId> {
        let mut out = Vec::new();
        for l in &self.links {
            if l.a == id {
                out.push(l.b);
            } else if l.b == id {
                out.push(l.a);
            }
        }
        out
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// True if the topology has no switches.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_find() {
        let mut t = Topology::new();
        let a = t.add_switch("ToR1", Layer::ToR, "tofino-32q");
        let b = t.add_switch("Agg1", Layer::Agg, "trident4");
        t.add_link(a, b);
        assert_eq!(t.find("ToR1"), Some(a));
        assert_eq!(t.find("nope"), None);
        assert_eq!(t.neighbors(a), vec![b]);
        assert_eq!(t.neighbors(b), vec![a]);
    }

    #[test]
    #[should_panic]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add_switch("S", Layer::ToR, "x");
        t.add_switch("S", Layer::Agg, "y");
    }

    #[test]
    #[should_panic]
    fn self_links_rejected() {
        let mut t = Topology::new();
        let a = t.add_switch("S", Layer::ToR, "x");
        t.add_link(a, a);
    }
}
