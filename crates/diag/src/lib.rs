#![warn(missing_docs)]
//! # lyra-diag — structured diagnostics and compile observability
//!
//! Every phase of the Lyra compiler (lexing, parsing, semantic checking,
//! scope resolution, SMT synthesis, code generation) reports problems as
//! [`Diagnostic`] values: a severity, a stable `LYR0xxx` [`Code`], one
//! primary [`Span`] plus any number of secondary labels, and free-form
//! notes. A [`SourceMap`] turns a diagnostic into a rustc-style annotated
//! snippet; the [`json`] module serializes diagnostics and compile-session
//! stats without any external dependency.
//!
//! ```
//! use lyra_diag::{codes, Diagnostic, SourceMap, Span};
//!
//! let mut sm = SourceMap::new();
//! let src_id = sm.add("demo.lyra", "if (x in tabl) { drop(); }");
//! let diag = Diagnostic::error(codes::UNKNOWN_EXTERN, "undeclared extern `tabl`")
//!     .with_span(src_id, Span::new(10, 14))
//!     .with_note("externs must be declared with `extern list<...>` before use");
//! let rendered = sm.render(&diag);
//! assert!(rendered.contains("error[LYR0105]"));
//! assert!(rendered.contains("^^^^"));
//! ```

pub mod json;

use std::fmt;

/// A half-open byte span into a source text, used for diagnostics.
///
/// This is the single span type shared by every Lyra crate (the AST,
/// the checker, the scope language, and diagnostics rendering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Start byte offset.
    pub lo: u32,
    /// End byte offset (exclusive).
    pub hi: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(lo: u32, hi: u32) -> Self {
        Span { lo, hi }
    }

    /// The 1-based line/column of `self.lo` within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i as u32 >= self.lo {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note emitted alongside other diagnostics.
    Note,
    /// Suspicious but not fatal; compilation continues.
    Warning,
    /// Fatal: the phase that emitted it failed.
    Error,
}

impl Severity {
    /// Lower-case name as rendered in human output (`error`, `warning`, `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A stable diagnostic code, e.g. `LYR0102`.
///
/// Codes are grouped by pipeline phase; see [`codes`] for the registry.
/// Codes never get reused once published — tools may match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code(pub &'static str);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// The registry of stable diagnostic codes.
///
/// Ranges:
/// * `LYR00xx` — lexer / parser
/// * `LYR01xx` — semantic checker and lowering (`LYR015x` are warnings)
/// * `LYR02xx` — scope language and scope resolution over the topology
/// * `LYR03xx` — SMT encoding (pre-solve structural errors)
/// * `LYR04xx` — synthesis outcomes (infeasibility families, budget)
/// * `LYR05xx` — code generation, backend validation, and robustness
///   (`LYR055x` are degraded-result and fault-model codes, `LYR056x` are
///   transactional-rollout codes, `LYR057x` are controller-crash
///   recovery and anti-entropy codes, `LYR058x` are failure-detection
///   and self-healing codes)
/// * `LYR06xx` — semantic-oracle and IR-invariant codes (differential
///   checking of emitted artifacts against the IR interpreter)
pub mod codes {
    use super::Code;

    /// Lexical error (unterminated string, bad character, bad number).
    pub const LEX: Code = Code("LYR0001");
    /// Parse error: unexpected token.
    pub const PARSE: Code = Code("LYR0002");

    /// Duplicate definition (header, packet, parser node, algorithm, func).
    pub const DUPLICATE_DEF: Code = Code("LYR0101");
    /// Pipeline references an algorithm that does not exist.
    pub const UNKNOWN_ALGORITHM: Code = Code("LYR0102");
    /// Call to an unknown function or builtin.
    pub const UNKNOWN_FUNCTION: Code = Code("LYR0103");
    /// Wrong number of arguments in a call.
    pub const ARITY_MISMATCH: Code = Code("LYR0104");
    /// `x in t` where `t` is not a declared extern.
    pub const UNKNOWN_EXTERN: Code = Code("LYR0105");
    /// A void builtin used where a value is required.
    pub const VOID_AS_VALUE: Code = Code("LYR0106");
    /// Bit-slice `f[hi:lo]` with `hi < lo`.
    pub const BAD_SLICE: Code = Code("LYR0107");
    /// Zero-width field or slice.
    pub const ZERO_WIDTH: Code = Code("LYR0108");
    /// Unknown header or field reference.
    pub const UNKNOWN_FIELD: Code = Code("LYR0109");
    /// Indexing a name that is not a global register array.
    pub const BAD_INDEX: Code = Code("LYR0110");
    /// A declaration shadows a builtin function.
    pub const SHADOWS_BUILTIN: Code = Code("LYR0111");
    /// Error while lowering the checked AST to IR.
    pub const LOWER: Code = Code("LYR0112");

    /// Warning: identifier treated as implicit per-packet metadata.
    pub const IMPLICIT_METADATA: Code = Code("LYR0151");
    /// Warning: algorithm defined but not referenced by any pipeline.
    pub const UNUSED_ALGORITHM: Code = Code("LYR0152");

    /// Malformed line in the scope specification language.
    pub const SCOPE_SYNTAX: Code = Code("LYR0201");
    /// Scope names an algorithm the program does not define.
    pub const SCOPE_UNKNOWN_ALGORITHM: Code = Code("LYR0202");
    /// Pipeline algorithm has no scope entry.
    pub const SCOPE_MISSING: Code = Code("LYR0203");
    /// Scope region matches no switch in the topology.
    pub const SCOPE_EMPTY_REGION: Code = Code("LYR0204");
    /// Direction endpoint names an unknown switch.
    pub const SCOPE_UNKNOWN_SWITCH: Code = Code("LYR0205");
    /// Direction endpoint lies outside the scoped region.
    pub const SCOPE_OUTSIDE_REGION: Code = Code("LYR0206");
    /// No flow path exists between the direction endpoints.
    pub const SCOPE_NO_PATH: Code = Code("LYR0207");

    /// Topology/encoding error: no programmable switch available.
    pub const NO_PROGRAMMABLE: Code = Code("LYR0301");
    /// Encoding references an unknown ASIC model.
    pub const UNKNOWN_ASIC: Code = Code("LYR0302");
    /// Structural encoding error (anything else pre-solve).
    pub const ENCODE: Code = Code("LYR0303");

    /// Placement infeasible: no constraint family singled out.
    pub const INFEASIBLE: Code = Code("LYR0401");
    /// Infeasible: a table exceeds every candidate switch's memory blocks.
    pub const INFEASIBLE_MEMORY: Code = Code("LYR0402");
    /// Infeasible: dependency chain exceeds the stage budget.
    pub const INFEASIBLE_STAGES: Code = Code("LYR0403");
    /// Infeasible: header/metadata bits exceed the PHV budget.
    pub const INFEASIBLE_PHV: Code = Code("LYR0404");
    /// Infeasible: more tables than the pipeline can host.
    pub const INFEASIBLE_TABLES: Code = Code("LYR0405");
    /// Solver exhausted its decision budget before reaching a verdict
    /// (`Outcome::Unknown`) — distinct from proved-infeasible.
    pub const SOLVER_BUDGET: Code = Code("LYR0410");

    /// Code generation failed for a placed program.
    pub const CODEGEN: Code = Code("LYR0501");
    /// Generated artifact failed backend validation.
    pub const VALIDATE: Code = Code("LYR0502");

    /// Warning: the placement was produced by a degradation-ladder rung
    /// (the solver deadline or decision budget expired); the message names
    /// the rung (`sequential-restarts` or `greedy-first-fit`).
    pub const DEGRADED: Code = Code("LYR0550");
    /// A fault set left an algorithm scope with no surviving switch.
    pub const FAULT_UNREACHABLE: Code = Code("LYR0551");
    /// A fault set left an algorithm scope with switches but no surviving
    /// flow path (the scope region is partitioned).
    pub const FAULT_PARTITIONED: Code = Code("LYR0552");

    /// A transactional rollout could not stage its new placement on some
    /// switch (capacity refused, switch dead, or the prepare message never
    /// got through).
    pub const ROLLOUT_PREPARE_FAILED: Code = Code("LYR0560");
    /// A rollout prepared everywhere but a commit was never acknowledged
    /// within the retry budget.
    pub const ROLLOUT_COMMIT_TIMEOUT: Code = Code("LYR0561");
    /// Warning: the rollout was rolled back; every switch serves the prior
    /// epoch (the message names the failure that triggered it).
    pub const ROLLOUT_ROLLED_BACK: Code = Code("LYR0562");
    /// The control channel to one switch exhausted its bounded retries
    /// (drops/timeouts on every attempt).
    pub const ROLLOUT_CHANNEL_EXHAUSTED: Code = Code("LYR0563");
    /// A rollout was refused up front: an algorithm scope is not
    /// survivable under the current fault set (gating check).
    pub const ROLLOUT_GATED: Code = Code("LYR0564");

    /// The controller crashed (injected by a `CrashPlan`) partway through
    /// a rollout; the intent log and switch-held state are the only
    /// surviving record, and `Runtime::recover` must be run.
    pub const CONTROLLER_CRASHED: Code = Code("LYR0570");
    /// Warning: restart recovery drove an in-flight rollout forward to an
    /// all-commit outcome (the commit decision was journaled and every
    /// switch held or served the staged epoch).
    pub const RECOVERY_COMMITTED: Code = Code("LYR0571");
    /// Warning: restart recovery drove an in-flight rollout to an
    /// all-rollback outcome (the burned epoch is never reused).
    pub const RECOVERY_ROLLED_BACK: Code = Code("LYR0572");
    /// Warning: a switch could not be queried during restart recovery
    /// (its state is unknown), which forces the rollback outcome.
    pub const RECOVERY_QUERY_FAILED: Code = Code("LYR0573");
    /// The write-ahead intent log is unreadable or holds a torn/corrupt
    /// record; recovery cannot trust it.
    pub const INTENT_LOG_CORRUPT: Code = Code("LYR0574");
    /// Warning: the anti-entropy audit found switch-held state diverging
    /// from the controller-expected state (the message names the drift
    /// classes and counts).
    pub const DRIFT_DETECTED: Code = Code("LYR0575");
    /// Warning: the anti-entropy audit repaired drifted entries in place
    /// (minimal repair installs/removals against the expected state).
    pub const DRIFT_REPAIRED: Code = Code("LYR0576");
    /// Appending to the write-ahead intent log failed (I/O error or
    /// injected store fault); the rollout halts as if the controller
    /// crashed, because un-journaled sends would be unrecoverable.
    pub const INTENT_STORE_IO: Code = Code("LYR0577");

    /// The health monitor confirmed a switch or link dead: its
    /// phi-accrual suspicion crossed the dead threshold (the message
    /// names the target, the score, and the probe evidence).
    pub const HEALTH_DEAD: Code = Code("LYR0580");
    /// Warning: the health monitor confirmed a *gray* failure — the
    /// target answers probes but slowly or lossily (sustained degraded /
    /// lost fraction above the gray threshold without crossing dead).
    pub const HEALTH_GRAY: Code = Code("LYR0581");
    /// Warning: a target's failure signal is flapping (repeated down/up
    /// edges inside the damping window); its flap penalty is accruing.
    pub const HEALTH_FLAPPING: Code = Code("LYR0582");
    /// Warning: a flapping target was quarantined — it stays failed out
    /// and is not restored on apparent recovery until its flap penalty
    /// decays, so an oscillating element converges to one recompile
    /// instead of a recompile storm.
    pub const HEALTH_QUARANTINED: Code = Code("LYR0583");
    /// Warning: the self-healer completed a remediation round
    /// (fail + recompile + rollout + audit) for confirmed suspicions.
    pub const HEAL_REMEDIATED: Code = Code("LYR0584");
    /// Warning: a healed target passed its probation window and was
    /// reinstated (placement re-expanded, entries re-synced).
    pub const HEAL_RESTORED: Code = Code("LYR0585");
    /// Warning: a remediation was deferred by the healer's rate limit /
    /// damped backoff; the confirmed faults stay coalesced for the next
    /// round.
    pub const HEAL_RATE_LIMITED: Code = Code("LYR0586");
    /// A remediation round failed (the recompile was refused or the
    /// rollout rolled back); the healer backs off and retries.
    pub const HEAL_FAILED: Code = Code("LYR0587");

    /// The idempotency-token space was exhausted: the rollout epoch or
    /// its per-message sequence number no longer fits the
    /// `(epoch << 32) | seq` token split. Minting stops with a hard
    /// error — a wrapped token would silently collide with another
    /// epoch's tokens and make a switch swallow a live message as a
    /// duplicate.
    pub const TOKEN_OVERFLOW: Code = Code("LYR0590");

    /// The semantic oracle found a divergence between the IR interpreter
    /// and the model recovered from one emitted artifact (the message
    /// names the switch, backend, and first differing field/effect).
    pub const ORACLE_DIVERGENCE: Code = Code("LYR0601");
    /// The semantic oracle found a divergence between two emitted
    /// backends compiled from the same program (cross-backend pair check).
    pub const ORACLE_PAIR_DIVERGENCE: Code = Code("LYR0602");
    /// The oracle could not parse an emitted artifact back into an
    /// executable model (unknown statement shape, name collision after
    /// sanitization, or a malformed table block).
    pub const ORACLE_PARSE: Code = Code("LYR0603");
    /// An IR invariant was violated at a front-end pass boundary (SSA
    /// single definition, def-before-use, width consistency, predication
    /// exclusivity, or dependency acyclicity).
    pub const IR_INVARIANT: Code = Code("LYR0604");
    /// The control-plane stub disagrees with the placement: a hosted
    /// table is missing its driver functions, capacity, or action rules.
    pub const ORACLE_CONTROL: Code = Code("LYR0605");
}

/// Identifies one source text inside a [`SourceMap`].
///
/// By convention in the Lyra driver, id `0` is the program source and
/// id `1` is the scope specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub u32);

/// One annotated region of source inside a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Which source the span points into; `None` if the diagnostic was
    /// produced by a crate that cannot know the id (the driver attaches it).
    pub source: Option<SourceId>,
    /// The annotated byte range.
    pub span: Span,
    /// Short message shown next to the carets; may be empty.
    pub message: String,
    /// Primary labels get `^^^` underlines, secondary get `---`.
    pub primary: bool,
}

/// A structured compiler diagnostic.
///
/// Built with the fluent constructors and rendered either through
/// [`SourceMap::render`] (human) or [`Diagnostic::to_json`] (machines):
///
/// ```
/// use lyra_diag::{codes, Diagnostic, Severity, Span};
///
/// let d = Diagnostic::error(codes::ARITY_MISMATCH, "`hash` expects 2 arguments, found 3")
///     .with_anonymous_span(Span::new(42, 60))
///     .with_note("declared here with 2 parameters");
/// assert_eq!(d.severity, Severity::Error);
/// assert_eq!(d.code.unwrap().0, "LYR0104");
/// assert!(d.primary_span().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error, warning, or note.
    pub severity: Severity,
    /// Stable code; `None` only for ad-hoc notes.
    pub code: Option<Code>,
    /// The headline message.
    pub message: String,
    /// Annotated source regions (first primary label is "the" location).
    pub labels: Vec<Label>,
    /// Free-form follow-up notes rendered under the snippet.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: Some(code),
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Self::error(code, message)
        }
    }

    /// A new note diagnostic (no code).
    pub fn note(message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            code: None,
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attach a primary span pointing into source `source`.
    pub fn with_span(mut self, source: SourceId, span: Span) -> Self {
        self.labels.push(Label {
            source: Some(source),
            span,
            message: String::new(),
            primary: true,
        });
        self
    }

    /// Attach a primary span whose source id is not yet known; the driver
    /// resolves it with [`Diagnostic::attach_source`].
    pub fn with_anonymous_span(mut self, span: Span) -> Self {
        self.labels.push(Label {
            source: None,
            span,
            message: String::new(),
            primary: true,
        });
        self
    }

    /// Attach a labelled primary span (message shown next to the carets).
    pub fn with_labelled_span(
        mut self,
        source: SourceId,
        span: Span,
        msg: impl Into<String>,
    ) -> Self {
        self.labels.push(Label {
            source: Some(source),
            span,
            message: msg.into(),
            primary: true,
        });
        self
    }

    /// Attach a secondary span (rendered with `---` underlines).
    pub fn with_secondary_span(
        mut self,
        source: SourceId,
        span: Span,
        msg: impl Into<String>,
    ) -> Self {
        self.labels.push(Label {
            source: Some(source),
            span,
            message: msg.into(),
            primary: false,
        });
        self
    }

    /// Append a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Resolve every label that has no [`SourceId`] to `source`.
    ///
    /// The `lang` and `topo` crates emit spans without knowing which slot
    /// their source occupies in the driver's [`SourceMap`]; the driver
    /// calls this once per phase.
    pub fn attach_source(mut self, source: SourceId) -> Self {
        for l in &mut self.labels {
            if l.source.is_none() {
                l.source = Some(source);
            }
        }
        self
    }

    /// The first primary label's span, if any.
    pub fn primary_span(&self) -> Option<Span> {
        self.labels.iter().find(|l| l.primary).map(|l| l.span)
    }

    /// Serialize to a [`json::Value`] object (code, severity, message,
    /// labels with byte spans, notes).
    pub fn to_json(&self) -> json::Value {
        let mut obj = json::Object::new();
        obj.push("severity", json::Value::str(self.severity.as_str()));
        obj.push(
            "code",
            match self.code {
                Some(c) => json::Value::str(c.0),
                None => json::Value::Null,
            },
        );
        obj.push("message", json::Value::str(&self.message));
        obj.push(
            "labels",
            json::Value::Array(
                self.labels
                    .iter()
                    .map(|l| {
                        let mut lo = json::Object::new();
                        lo.push(
                            "source",
                            match l.source {
                                Some(SourceId(id)) => json::Value::Number(id as f64),
                                None => json::Value::Null,
                            },
                        );
                        lo.push("lo", json::Value::Number(l.span.lo as f64));
                        lo.push("hi", json::Value::Number(l.span.hi as f64));
                        lo.push("message", json::Value::str(&l.message));
                        lo.push("primary", json::Value::Bool(l.primary));
                        json::Value::Object(lo)
                    })
                    .collect(),
            ),
        );
        obj.push(
            "notes",
            json::Value::Array(self.notes.iter().map(json::Value::str).collect()),
        );
        json::Value::Object(obj)
    }

    /// Rebuild a diagnostic from [`Diagnostic::to_json`] output. Codes are
    /// matched against the registry; unknown codes are dropped. Used by the
    /// JSON round-trip tests and by tools consuming `lyrac --diag-format json`.
    pub fn from_json(v: &json::Value) -> Option<Diagnostic> {
        let obj = v.as_object()?;
        let severity = match obj.get("severity")?.as_str()? {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            "note" => Severity::Note,
            _ => return None,
        };
        let code = obj
            .get("code")
            .and_then(|c| c.as_str())
            .and_then(lookup_code);
        let message = obj.get("message")?.as_str()?.to_string();
        let mut labels = Vec::new();
        if let Some(arr) = obj.get("labels").and_then(|l| l.as_array()) {
            for l in arr {
                let lo = l.as_object()?;
                labels.push(Label {
                    source: lo
                        .get("source")
                        .and_then(|s| s.as_number())
                        .map(|n| SourceId(n as u32)),
                    span: Span::new(
                        lo.get("lo")?.as_number()? as u32,
                        lo.get("hi")?.as_number()? as u32,
                    ),
                    message: lo
                        .get("message")
                        .and_then(|m| m.as_str())
                        .unwrap_or("")
                        .to_string(),
                    primary: lo.get("primary").and_then(|p| p.as_bool()).unwrap_or(true),
                });
            }
        }
        let notes = obj
            .get("notes")
            .and_then(|n| n.as_array())
            .map(|arr| {
                arr.iter()
                    .filter_map(|n| n.as_str().map(String::from))
                    .collect()
            })
            .unwrap_or_default();
        Some(Diagnostic {
            severity,
            code,
            message,
            labels,
            notes,
        })
    }
}

/// Look up a registry [`Code`] by its string form (`"LYR0102"`).
pub fn lookup_code(s: &str) -> Option<Code> {
    use codes::*;
    const ALL: &[Code] = &[
        LEX,
        PARSE,
        DUPLICATE_DEF,
        UNKNOWN_ALGORITHM,
        UNKNOWN_FUNCTION,
        ARITY_MISMATCH,
        UNKNOWN_EXTERN,
        VOID_AS_VALUE,
        BAD_SLICE,
        ZERO_WIDTH,
        UNKNOWN_FIELD,
        BAD_INDEX,
        SHADOWS_BUILTIN,
        LOWER,
        IMPLICIT_METADATA,
        UNUSED_ALGORITHM,
        SCOPE_SYNTAX,
        SCOPE_UNKNOWN_ALGORITHM,
        SCOPE_MISSING,
        SCOPE_EMPTY_REGION,
        SCOPE_UNKNOWN_SWITCH,
        SCOPE_OUTSIDE_REGION,
        SCOPE_NO_PATH,
        NO_PROGRAMMABLE,
        UNKNOWN_ASIC,
        ENCODE,
        INFEASIBLE,
        INFEASIBLE_MEMORY,
        INFEASIBLE_STAGES,
        INFEASIBLE_PHV,
        INFEASIBLE_TABLES,
        SOLVER_BUDGET,
        CODEGEN,
        VALIDATE,
        DEGRADED,
        FAULT_UNREACHABLE,
        FAULT_PARTITIONED,
        ROLLOUT_PREPARE_FAILED,
        ROLLOUT_COMMIT_TIMEOUT,
        ROLLOUT_ROLLED_BACK,
        ROLLOUT_CHANNEL_EXHAUSTED,
        ROLLOUT_GATED,
        CONTROLLER_CRASHED,
        RECOVERY_COMMITTED,
        RECOVERY_ROLLED_BACK,
        RECOVERY_QUERY_FAILED,
        INTENT_LOG_CORRUPT,
        DRIFT_DETECTED,
        DRIFT_REPAIRED,
        INTENT_STORE_IO,
    ];
    ALL.iter().copied().find(|c| c.0 == s)
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.code {
            Some(c) => write!(f, "{}[{}]: {}", self.severity, c, self.message),
            None => write!(f, "{}: {}", self.severity, self.message),
        }
    }
}

impl std::error::Error for Diagnostic {}

/// The compile phases the driver reports timings and events for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Lex + parse the program source.
    Parse,
    /// Semantic checking.
    Check,
    /// AST → IR lowering.
    Lower,
    /// Scope-spec parsing and resolution over the topology.
    Scopes,
    /// Constraint encoding (program × topology → SMT model).
    Encode,
    /// Constraint solving.
    Solve,
    /// Placement extraction + context synthesis.
    Synthesize,
    /// Per-switch backend code generation.
    Codegen,
    /// Transactional control-plane rollout of a placement onto a running
    /// deployment (prepare/commit across switches).
    Rollout,
}

impl Phase {
    /// Stable lower-case name (used as JSON keys).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Lower => "lower",
            Phase::Scopes => "scopes",
            Phase::Encode => "encode",
            Phase::Solve => "solve",
            Phase::Synthesize => "synthesize",
            Phase::Codegen => "codegen",
            Phase::Rollout => "rollout",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Maps [`SourceId`]s to named source texts and renders diagnostics as
/// rustc-style annotated snippets.
///
/// ```
/// use lyra_diag::{codes, Diagnostic, SourceMap, Span};
///
/// let mut sm = SourceMap::new();
/// let id = sm.add("prog.lyra", "pipeline[X]{ nat };");
/// let d = Diagnostic::error(codes::UNKNOWN_ALGORITHM, "unknown algorithm `nat`")
///     .with_span(id, Span::new(13, 16));
/// let out = sm.render(&d);
/// assert!(out.contains("prog.lyra:1:14"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct SourceMap {
    sources: Vec<(String, String)>,
}

impl SourceMap {
    /// An empty map.
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Register a source text; returns its id (sequential from 0).
    pub fn add(&mut self, name: impl Into<String>, text: impl Into<String>) -> SourceId {
        self.sources.push((name.into(), text.into()));
        SourceId(self.sources.len() as u32 - 1)
    }

    /// The registered name for `id`.
    pub fn name(&self, id: SourceId) -> Option<&str> {
        self.sources.get(id.0 as usize).map(|(n, _)| n.as_str())
    }

    /// The registered text for `id`.
    pub fn text(&self, id: SourceId) -> Option<&str> {
        self.sources.get(id.0 as usize).map(|(_, t)| t.as_str())
    }

    /// Render one diagnostic as an annotated snippet:
    ///
    /// ```text
    /// error[LYR0102]: unknown algorithm `nat`
    ///   --> prog.lyra:1:14
    ///    |
    ///  1 | pipeline[X]{ nat };
    ///    |              ^^^
    /// ```
    pub fn render(&self, diag: &Diagnostic) -> String {
        let mut out = String::new();
        out.push_str(&diag.to_string());
        out.push('\n');

        for label in &diag.labels {
            let Some(src_id) = label.source else { continue };
            let Some(text) = self.text(src_id) else {
                continue;
            };
            let name = self.name(src_id).unwrap_or("<unknown>");
            let (line, col) = label.span.line_col(text);
            out.push_str(&format!("  --> {}:{}:{}\n", name, line, col));
            self.render_snippet(&mut out, text, label);
        }
        for note in &diag.notes {
            out.push_str(&format!("  note: {}\n", note));
        }
        out
    }

    /// Render every diagnostic in order, separated by blank lines.
    pub fn render_all(&self, diags: &[Diagnostic]) -> String {
        diags
            .iter()
            .map(|d| self.render(d))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn render_snippet(&self, out: &mut String, text: &str, label: &Label) {
        // Collect the (1-based) lines the span covers together with the
        // byte offset each line starts at.
        let mut lines: Vec<(usize, u32, &str)> = Vec::new();
        let mut offset = 0u32;
        for (i, line) in text.split('\n').enumerate() {
            let len = line.len() as u32;
            let start = offset;
            let end = offset + len;
            // A span touching [start, end] (inclusive of the newline position
            // for zero-width EOL spans) includes this line.
            if label.span.lo <= end && label.span.hi > start
                || (label.span.lo == label.span.hi
                    && label.span.lo >= start
                    && label.span.lo <= end)
            {
                lines.push((i + 1, start, line));
            }
            offset = end + 1;
        }
        if lines.is_empty() {
            return;
        }
        let gutter = lines
            .last()
            .map(|(n, _, _)| n.to_string().len())
            .unwrap_or(1);
        let marker = if label.primary { '^' } else { '-' };
        out.push_str(&format!("{:>w$} |\n", "", w = gutter));
        let multi = lines.len() > 1;
        for (idx, (num, start, line)) in lines.iter().enumerate() {
            out.push_str(&format!("{:>w$} | {}\n", num, line, w = gutter));
            let line_len = line.len() as u32;
            let from = label.span.lo.saturating_sub(*start).min(line_len) as usize;
            let to = (label.span.hi.saturating_sub(*start)).min(line_len) as usize;
            let width = to.saturating_sub(from).max(1);
            let mut underline = format!(
                "{:>w$} | {}{}",
                "",
                " ".repeat(from),
                marker.to_string().repeat(width),
                w = gutter
            );
            let is_last = idx == lines.len() - 1;
            if is_last && !label.message.is_empty() {
                underline.push(' ');
                underline.push_str(&label.message);
            } else if multi && idx == 0 {
                underline.push_str(" ...");
            }
            underline.push('\n');
            out.push_str(&underline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_single_line() {
        let mut sm = SourceMap::new();
        let id = sm.add("a.lyra", "foo bar baz");
        let d = Diagnostic::error(codes::PARSE, "unexpected `bar`").with_span(id, Span::new(4, 7));
        let r = sm.render(&d);
        assert!(r.contains("error[LYR0002]: unexpected `bar`"), "{r}");
        assert!(r.contains("a.lyra:1:5"), "{r}");
        assert!(r.contains("^^^"), "{r}");
    }

    #[test]
    fn render_multi_line_span() {
        let mut sm = SourceMap::new();
        let id = sm.add("m.lyra", "alpha\nbeta\ngamma");
        let d = Diagnostic::error(codes::ENCODE, "spans lines").with_span(id, Span::new(2, 12));
        let r = sm.render(&d);
        assert!(r.contains("1 | alpha"), "{r}");
        assert!(r.contains("2 | beta"), "{r}");
        assert!(r.contains("3 | gamma"), "{r}");
    }

    #[test]
    fn secondary_labels_use_dashes() {
        let mut sm = SourceMap::new();
        let id = sm.add("s.lyra", "first\nsecond");
        let d = Diagnostic::error(codes::DUPLICATE_DEF, "dup")
            .with_span(id, Span::new(0, 5))
            .with_secondary_span(id, Span::new(6, 12), "previous definition");
        let r = sm.render(&d);
        assert!(r.contains("^^^^^"), "{r}");
        assert!(r.contains("------ previous definition"), "{r}");
    }

    #[test]
    fn json_round_trip() {
        let d = Diagnostic::error(codes::INFEASIBLE_MEMORY, "table too big")
            .with_span(SourceId(0), Span::new(3, 9))
            .with_note("switch tor1 has 40 SRAM blocks");
        let v = d.to_json();
        let text = v.to_string();
        let parsed = json::parse(&text).expect("parses");
        let back = Diagnostic::from_json(&parsed).expect("round-trips");
        assert_eq!(back, d);
    }

    #[test]
    fn code_lookup() {
        assert_eq!(lookup_code("LYR0402"), Some(codes::INFEASIBLE_MEMORY));
        assert_eq!(lookup_code("LYR9999"), None);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
