//! A small dependency-free JSON value, writer, and parser.
//!
//! The workspace builds offline with no external crates, so the machine
//! interfaces (`lyrac --diag-format json`, `--emit-stats`) serialize
//! through this module instead of serde. The surface is deliberately
//! tiny: a [`Value`] tree, `Display` for writing, and [`parse`] for the
//! round-trip tests and stat consumers.
//!
//! Objects preserve insertion order so emitted stats files are stable
//! and diffable across runs.

use std::fmt;

/// An ordered JSON object (insertion-ordered key/value pairs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    entries: Vec<(String, Value)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Append a key/value pair (replaces an existing key).
    pub fn push(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integral values print without `.0`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Object),
}

impl Value {
    /// Shorthand for `Value::String(s.into())`.
    pub fn str(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup, if this is an object: `v.get("phases")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Pretty-print with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{}", n));
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(obj) => {
            out.push('{');
            for (i, (k, item)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    let close = "  ".repeat(depth);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(obj) if !obj.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&close);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(self, &mut s);
        f.write_str(&s)
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. Accepts exactly one top-level value with
/// optional surrounding whitespace.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{}`", word)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut obj = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            obj.push(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(obj));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are rare in compiler output;
                            // map unpaired surrogates to U+FFFD.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = text.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: "invalid number".to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let mut inner = Object::new();
        inner.push("name", Value::str("tor1"));
        inner.push("stages", Value::Number(12.0));
        inner.push("ok", Value::Bool(true));
        let v = Value::Array(vec![Value::Object(inner), Value::Null, Value::Number(-3.5)]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Value::Number(42.0).to_string(), "42");
        assert_eq!(Value::Number(2.5).to_string(), "2.5");
    }

    #[test]
    fn pretty_is_parseable() {
        let mut o = Object::new();
        o.push(
            "xs",
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]),
        );
        let v = Value::Object(o);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("true false").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,").is_err());
    }

    #[test]
    fn object_get_and_replace() {
        let mut o = Object::new();
        o.push("k", Value::Number(1.0));
        o.push("k", Value::Number(2.0));
        assert_eq!(o.len(), 1);
        assert_eq!(o.get("k").unwrap().as_number(), Some(2.0));
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::str("A"));
    }
}
