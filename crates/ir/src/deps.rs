//! Instruction dependency analysis (§4.3). Because the IR is straight-line
//! SSA, read-after-write edges are direct def-use lookups; the graph also
//! serializes side-effecting instructions that touch the same resource (the
//! same extern table, the same global register array, or the same builtin
//! action target), which the paper treats implicitly via program order.

use std::collections::BTreeMap;

use crate::instr::*;

/// The instruction dependency graph of one algorithm: `a → b` means `b`
/// must execute after `a` (b reads a value a writes, or both touch the same
/// stateful resource).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepGraph {
    /// Successor lists per instruction.
    pub succs: Vec<Vec<InstrId>>,
    /// Predecessor lists per instruction.
    pub preds: Vec<Vec<InstrId>>,
}

impl DepGraph {
    /// Does `b` depend directly on `a`?
    pub fn depends(&self, b: InstrId, a: InstrId) -> bool {
        self.preds[b.index()].contains(&a)
    }

    /// Does `b` depend on `a` transitively?
    pub fn depends_transitively(&self, b: InstrId, a: InstrId) -> bool {
        let mut stack = vec![b];
        let mut seen = vec![false; self.preds.len()];
        while let Some(cur) = stack.pop() {
            if cur == a {
                return true;
            }
            for &p in &self.preds[cur.index()] {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// Longest path length (in edges) through the dependency graph — a lower
    /// bound on pipeline stages needed.
    pub fn critical_path_len(&self) -> usize {
        let n = self.succs.len();
        let mut depth = vec![0usize; n];
        // Instructions are in program order, and all edges go forward.
        for i in 0..n {
            for &s in &self.succs[i] {
                depth[s.index()] = depth[s.index()].max(depth[i] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// All direct predecessors of `i`.
    pub fn pred_list(&self, i: InstrId) -> &[InstrId] {
        &self.preds[i.index()]
    }
}

/// Build the dependency graph for an algorithm.
pub fn dependency_graph(alg: &IrAlgorithm) -> DepGraph {
    let n = alg.instrs.len();
    let mut succs = vec![Vec::new(); n];
    let mut preds = vec![Vec::new(); n];
    let add_edge =
        |succs: &mut Vec<Vec<InstrId>>, preds: &mut Vec<Vec<InstrId>>, a: InstrId, b: InstrId| {
            if a != b && !succs[a.index()].contains(&b) {
                succs[a.index()].push(b);
                preds[b.index()].push(a);
            }
        };

    // Def-use edges via SSA values (including predicate reads).
    for (bi, instr) in alg.instrs.iter().enumerate() {
        let b = InstrId(bi as u32);
        let mut reads: Vec<Operand> = instr.op.reads();
        if let Some(p) = instr.pred {
            reads.push(Operand::Value(p));
        }
        for r in reads {
            if let Operand::Value(v) = r {
                if let Some(def) = alg.value(v).def {
                    add_edge(&mut succs, &mut preds, def, b);
                }
            }
        }
    }

    // Storage hazards: SSA removes write-after-read and write-after-write
    // dependencies, but every version of a base shares physical storage
    // (one PHV field / metadata slot), so a later write must still execute
    // after earlier reads and writes of the same base — otherwise placing
    // the writer on an upstream switch would corrupt the reader's value.
    let mut last_write: BTreeMap<String, InstrId> = BTreeMap::new();
    let mut reads_since_write: BTreeMap<String, Vec<InstrId>> = BTreeMap::new();
    for (bi, instr) in alg.instrs.iter().enumerate() {
        let b = InstrId(bi as u32);
        let mut read_bases: Vec<String> = Vec::new();
        for o in instr.op.reads() {
            if let Operand::Value(v) = o {
                read_bases.push(alg.value(v).base.clone());
            }
        }
        if let Some(p) = instr.pred {
            read_bases.push(alg.value(p).base.clone());
        }
        for base in read_bases {
            reads_since_write.entry(base).or_default().push(b);
        }
        if let Some(d) = instr.dst {
            let base = alg.value(d).base.clone();
            // Instructions in mutually-exclusive branches never both
            // execute, so no storage hazard exists between them (this keeps
            // if/else stores to the same field mergeable into one table).
            let exclusive = |other: InstrId| -> bool {
                match (alg.instr(other).pred, instr.pred) {
                    (Some(p), Some(q)) => crate::blocks::preds_mutually_exclusive(alg, p, q),
                    _ => false,
                }
            };
            // WAW: after the previous write.
            if let Some(&w) = last_write.get(&base) {
                if !exclusive(w) {
                    add_edge(&mut succs, &mut preds, w, b);
                }
            }
            // WAR: after every read of the previous version.
            if let Some(readers) = reads_since_write.remove(&base) {
                for r in readers {
                    if !exclusive(r) {
                        add_edge(&mut succs, &mut preds, r, b);
                    }
                }
            }
            last_write.insert(base, b);
        }
    }

    // Resource serialization: program order between instructions touching
    // the same stateful resource.
    let mut last_touch: BTreeMap<String, InstrId> = BTreeMap::new();
    for (bi, instr) in alg.instrs.iter().enumerate() {
        let b = InstrId(bi as u32);
        let key = match &instr.op {
            IrOp::TableLookup { table, .. } | IrOp::TableMember { table, .. } => {
                Some(format!("table:{table}"))
            }
            IrOp::GlobalRead { global, .. } | IrOp::GlobalWrite { global, .. } => {
                Some(format!("global:{global}"))
            }
            IrOp::Action { name, args } => {
                let target = args.first().map(|a| match a {
                    Operand::Value(v) => alg.value(*v).base.clone(),
                    Operand::Const(c) => c.to_string(),
                });
                Some(format!("action:{name}:{}", target.unwrap_or_default()))
            }
            _ => None,
        };
        if let Some(key) = key {
            if let Some(&prev) = last_touch.get(&key) {
                add_edge(&mut succs, &mut preds, prev, b);
            }
            last_touch.insert(key, b);
        }
    }

    DepGraph { succs, preds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    #[test]
    fn figure8_dependencies() {
        // Figure 8(c): three dependencies — v1→int_info1, int_info1→int_info2,
        // v2→int_info2 (modulo the extra dead store `info = 0`).
        let ir = frontend(
            r#"
            pipeline[P]{a};
            algorithm a {
                if (int_enable) {
                    v1 = ig_ts - eg_ts;
                    info1 = v1 & 0x0fffffff;
                    v2 = sw_id << 28;
                    info2 = info1 & v2;
                }
            }
            "#,
        )
        .unwrap();
        let alg = &ir.algorithms[0];
        let g = dependency_graph(alg);
        // Find instructions by destination base.
        let by_dst = |base: &str| -> InstrId {
            InstrId(
                alg.instrs
                    .iter()
                    .position(|i| i.dst.map(|d| alg.value(d).base == base).unwrap_or(false))
                    .unwrap_or_else(|| panic!("no {base}")) as u32,
            )
        };
        let (v1, i1, v2, i2) = (by_dst("v1"), by_dst("info1"), by_dst("v2"), by_dst("info2"));
        assert!(g.depends(i1, v1));
        assert!(g.depends(i2, i1));
        assert!(g.depends(i2, v2));
        assert!(!g.depends(v2, v1));
        assert!(g.depends_transitively(i2, v1));
    }

    #[test]
    fn independent_instructions_have_no_edges() {
        let ir = frontend("pipeline[P]{a}; algorithm a { x = 1; y = 2; }").unwrap();
        let g = dependency_graph(&ir.algorithms[0]);
        assert!(g.succs.iter().all(|s| s.is_empty()));
        assert_eq!(g.critical_path_len(), 0);
    }

    #[test]
    fn global_accesses_serialize() {
        let ir = frontend(
            "pipeline[P]{a}; algorithm a { global bit[32][8] g; x = g[0]; g[0] = 1; y = g[0]; }",
        )
        .unwrap();
        let g = dependency_graph(&ir.algorithms[0]);
        // read → write → read chain on the same global.
        assert!(g.critical_path_len() >= 2);
    }

    #[test]
    fn predicate_creates_dependency() {
        let ir = frontend("pipeline[P]{a}; algorithm a { c = x == 1; if (c) { y = 2; } }").unwrap();
        let alg = &ir.algorithms[0];
        let g = dependency_graph(alg);
        let cmp = InstrId(0);
        let assign = InstrId((alg.instrs.len() - 1) as u32);
        assert!(g.depends_transitively(assign, cmp));
    }

    #[test]
    fn critical_path_chain() {
        let ir = frontend(
            "pipeline[P]{a}; algorithm a { a1 = x + 1; a2 = a1 + 1; a3 = a2 + 1; a4 = a3 + 1; }",
        )
        .unwrap();
        let g = dependency_graph(&ir.algorithms[0]);
        assert_eq!(g.critical_path_len(), 3);
    }
}
