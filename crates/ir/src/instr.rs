//! IR data types: programs, algorithms, instructions, and SSA values.

use std::collections::BTreeMap;

use lyra_lang::{BinOp, ExternVar, HeaderType, PacketDecl, ParserNode, Pipeline, UnOp};

/// Identifier of an SSA value within one [`IrAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

/// Identifier of an instruction within one [`IrAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstrId(pub u32);

impl ValueId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl InstrId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where an SSA value's storage lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageClass {
    /// A local/metadata variable (PHV-resident).
    Local,
    /// A packet header field (`ipv4.src_ip`).
    HeaderField,
    /// A predicate temporary produced by branch removal.
    Predicate,
}

/// Metadata about one SSA value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueInfo {
    /// Storage base name (`ipv4.src_ip`, `int_info`, `%t3`). All versions of
    /// a base share the same physical storage after code generation.
    pub base: String,
    /// SSA version (0 = value on entry).
    pub version: u32,
    /// Bit width; 0 until inference fills it in.
    pub width: u32,
    /// Instruction defining this value, if any (`None` = live-in).
    pub def: Option<InstrId>,
    /// If this value is the boolean negation of another (used to detect the
    /// mutually-exclusive predicate blocks of §5.2).
    pub neg_of: Option<ValueId>,
    /// Storage class.
    pub class: StorageClass,
}

impl ValueInfo {
    /// Display name `base#version`.
    pub fn name(&self) -> String {
        if self.version == 0 {
            self.base.clone()
        } else {
            format!("{}#{}", self.base, self.version)
        }
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Immediate constant.
    Const(u64),
    /// SSA value.
    Value(ValueId),
}

/// Instruction operations. Each carries at most one operator (§4.2 step 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrOp {
    /// `dst = a`.
    Assign(Operand),
    /// `dst = a ⊕ b`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = ⊖a`.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// `dst = builtin(args)` for value-producing library calls.
    Call {
        /// Builtin name.
        name: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `builtin(args)` for void library calls (`add_header`, `drop`, …).
    Action {
        /// Builtin name.
        name: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst = table[key]` — read the value column of an extern dict.
    TableLookup {
        /// Extern table name.
        table: String,
        /// Key operand.
        key: Operand,
    },
    /// `dst = (key in table)` — membership test, 1-bit result.
    TableMember {
        /// Extern table name.
        table: String,
        /// Key operand.
        key: Operand,
    },
    /// `dst = global[index]`.
    GlobalRead {
        /// Global array name.
        global: String,
        /// Index operand.
        index: Operand,
    },
    /// `global[index] = value`.
    GlobalWrite {
        /// Global array name.
        global: String,
        /// Index operand.
        index: Operand,
        /// Stored operand.
        value: Operand,
    },
    /// `dst = base[hi:lo]` bit slice.
    Slice {
        /// Sliced operand.
        a: Operand,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
}

impl IrOp {
    /// All operands read by this op (not including the predicate).
    pub fn reads(&self) -> Vec<Operand> {
        match self {
            IrOp::Assign(a) | IrOp::Unary { a, .. } | IrOp::Slice { a, .. } => vec![*a],
            IrOp::Binary { a, b, .. } => vec![*a, *b],
            IrOp::Call { args, .. } | IrOp::Action { args, .. } => args.clone(),
            IrOp::TableLookup { key, .. } | IrOp::TableMember { key, .. } => vec![*key],
            IrOp::GlobalRead { index, .. } => vec![*index],
            IrOp::GlobalWrite { index, value, .. } => vec![*index, *value],
        }
    }

    /// Name of the extern table this op touches, if any.
    pub fn table(&self) -> Option<&str> {
        match self {
            IrOp::TableLookup { table, .. } | IrOp::TableMember { table, .. } => Some(table),
            _ => None,
        }
    }

    /// Name of the global register array this op touches, if any.
    pub fn global(&self) -> Option<&str> {
        match self {
            IrOp::GlobalRead { global, .. } | IrOp::GlobalWrite { global, .. } => Some(global),
            _ => None,
        }
    }

    /// True for ops with externally visible effects (must not be
    /// dead-code-eliminated and must keep their relative order per resource).
    pub fn has_side_effect(&self) -> bool {
        matches!(self, IrOp::Action { .. } | IrOp::GlobalWrite { .. })
    }
}

/// One IR instruction: an optional predicate guard, the operation, and an
/// optional destination value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instr {
    /// Predicate guard: the instruction only takes effect when this 1-bit
    /// value is true (§4.2 step 2 "branch removal").
    pub pred: Option<ValueId>,
    /// The operation.
    pub op: IrOp,
    /// Defined value, if the op produces one.
    pub dst: Option<ValueId>,
}

/// An algorithm lowered to predicated straight-line SSA code.
#[derive(Debug, Clone, PartialEq)]
pub struct IrAlgorithm {
    /// Algorithm name.
    pub name: String,
    /// Instructions in program order.
    pub instrs: Vec<Instr>,
    /// SSA value table.
    pub values: Vec<ValueInfo>,
}

impl IrAlgorithm {
    /// Value metadata.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id.index()]
    }

    /// Instruction by id.
    pub fn instr(&self, id: InstrId) -> &Instr {
        &self.instrs[id.index()]
    }

    /// Ids of all instructions.
    pub fn instr_ids(&self) -> impl Iterator<Item = InstrId> {
        (0..self.instrs.len() as u32).map(InstrId)
    }

    /// Render the algorithm as readable text (for tests and debugging).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            let pred = match ins.pred {
                Some(p) => format!("{} ? ", self.value(p).name()),
                None => String::new(),
            };
            let dst = match ins.dst {
                Some(d) => format!("{} = ", self.value(d).name()),
                None => String::new(),
            };
            let opnd = |o: &Operand| match o {
                Operand::Const(c) => format!("{c}"),
                Operand::Value(v) => self.value(*v).name(),
            };
            let body = match &ins.op {
                IrOp::Assign(a) => opnd(a),
                IrOp::Binary { op, a, b } => format!("{} {} {}", opnd(a), op.symbol(), opnd(b)),
                IrOp::Unary { op, a } => format!("{op:?} {}", opnd(a)),
                IrOp::Call { name, args } | IrOp::Action { name, args } => {
                    let args: Vec<String> = args.iter().map(opnd).collect();
                    format!("{name}({})", args.join(", "))
                }
                IrOp::TableLookup { table, key } => format!("{table}[{}]", opnd(key)),
                IrOp::TableMember { table, key } => format!("{} in {table}", opnd(key)),
                IrOp::GlobalRead { global, index } => format!("{global}[{}]", opnd(index)),
                IrOp::GlobalWrite {
                    global,
                    index,
                    value,
                } => {
                    format!("{global}[{}] <- {}", opnd(index), opnd(value))
                }
                IrOp::Slice { a, hi, lo } => format!("{}[{hi}:{lo}]", opnd(a)),
            };
            out.push_str(&format!("{i:3}: {pred}{dst}{body}\n"));
        }
        out
    }
}

/// The whole program in context-aware IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    /// Lowered algorithms.
    pub algorithms: Vec<IrAlgorithm>,
    /// One-big-pipeline declarations (chains of algorithm names).
    pub pipelines: Vec<Pipeline>,
    /// Extern tables by name.
    pub externs: BTreeMap<String, ExternVar>,
    /// Global register arrays by name → (element width, length).
    pub globals: BTreeMap<String, (u32, u64)>,
    /// Header types (for parser TCAM / PHV accounting).
    pub headers: Vec<HeaderType>,
    /// Packet metadata declarations.
    pub packets: Vec<PacketDecl>,
    /// Parser states.
    pub parser_nodes: Vec<ParserNode>,
}

impl IrProgram {
    /// Find a lowered algorithm by name.
    pub fn algorithm(&self, name: &str) -> Option<&IrAlgorithm> {
        self.algorithms.iter().find(|a| a.name == name)
    }

    /// Total instruction count across all algorithms.
    pub fn total_instrs(&self) -> usize {
        self.algorithms.iter().map(|a| a.instrs.len()).sum()
    }
}
