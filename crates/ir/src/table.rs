//! Compact, structurally-shared extern-table storage.
//!
//! A million-entry control plane cannot afford per-entry `BTreeMap`s that
//! are cloned wholesale every time an epoch is staged: the clone alone is
//! O(state), and diffing two epochs walks every entry even when nothing
//! changed. [`ExternTable`] stores entries as a vector of sorted,
//! immutable *pages* behind `Arc`s:
//!
//! * **Clones are O(pages)** — they copy `Arc` pointers, not entries, so
//!   staging an epoch or retaining a prior one is cheap no matter how big
//!   the table is.
//! * **Mutation is copy-on-write per page** — an insert or remove clones
//!   only the ~[`PAGE_CAP`]-entry page it lands in; every other page stays
//!   shared with all other clones.
//! * **Equality and diffing skip shared pages** — two tables that share a
//!   page (by pointer) provably agree on that page's entries, so comparing
//!   a staged epoch against its base costs O(pages + changed entries), not
//!   O(entries). This is what makes delta-based rollout prepare
//!   ([`lyra` `rollout`]) O(delta).
//!
//! Lookup binary-searches the page directory, then the page: O(log n)
//! with far better cache behavior than a pointer-chasing tree.

use std::collections::BTreeMap;
use std::sync::Arc;

/// Entries per page before a split. Large enough that the page directory
/// stays tiny (a 10⁶-entry table is ~2048 pages), small enough that
/// copy-on-write touches only a few KiB per mutation.
pub const PAGE_CAP: usize = 512;

/// A sorted, paged `u64 → u64` map with structural sharing between
/// clones. The storage behind every extern table in
/// [`crate::DataPlaneState`].
#[derive(Debug, Clone, Default)]
pub struct ExternTable {
    /// Non-empty pages, each sorted by key, covering strictly ascending
    /// disjoint key ranges.
    pages: Vec<Arc<Vec<(u64, u64)>>>,
    /// Total entries (maintained incrementally).
    len: usize,
}

impl ExternTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the first page whose last key is `>= key` (the only page
    /// that could contain `key`), or `pages.len()` when every page ends
    /// below it.
    fn page_for(&self, key: u64) -> usize {
        self.pages
            .partition_point(|p| p.last().is_some_and(|&(k, _)| k < key))
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let pi = self.page_for(key);
        let page = self.pages.get(pi)?;
        page.binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| page[i].1)
    }

    /// True when `key` has an entry.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert or overwrite `key`, returning the previous value if any.
    /// Copy-on-write: only the page containing `key` is cloned.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        if self.pages.is_empty() {
            self.pages.push(Arc::new(vec![(key, value)]));
            self.len = 1;
            return None;
        }
        // Clamp to the last page so appends extend it instead of growing
        // a fresh page per key.
        let pi = self.page_for(key).min(self.pages.len() - 1);
        match self.pages[pi].binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => {
                let old = self.pages[pi][i].1;
                // A redundant overwrite keeps the page shared, so
                // structural diffs stay O(entries that actually changed)
                // even when a planner re-installs identical entries.
                if old != value {
                    Arc::make_mut(&mut self.pages[pi])[i].1 = value;
                }
                Some(old)
            }
            Err(i) => {
                let page = Arc::make_mut(&mut self.pages[pi]);
                page.insert(i, (key, value));
                self.len += 1;
                if page.len() > PAGE_CAP {
                    let upper = page.split_off(page.len() / 2);
                    self.pages.insert(pi + 1, Arc::new(upper));
                }
                None
            }
        }
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let pi = self.page_for(key);
        let hit = self
            .pages
            .get(pi)?
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()?;
        let page = Arc::make_mut(&mut self.pages[pi]);
        let (_, old) = page.remove(hit);
        self.len -= 1;
        if page.is_empty() {
            self.pages.remove(pi);
        }
        Some(old)
    }

    /// Iterate entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages.iter().flat_map(|p| p.iter().copied())
    }

    /// Iterate keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Build from entries already sorted by strictly ascending key —
    /// O(n) bulk load straight into full pages. Panics (debug) on
    /// unsorted input.
    pub fn from_sorted(entries: Vec<(u64, u64)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly ascending keys"
        );
        let len = entries.len();
        let mut pages = Vec::with_capacity(len.div_ceil(PAGE_CAP));
        let mut it = entries.into_iter().peekable();
        while it.peek().is_some() {
            pages.push(Arc::new(it.by_ref().take(PAGE_CAP).collect::<Vec<_>>()));
        }
        ExternTable { pages, len }
    }

    /// FNV-1a digest over `(key, value)` little-endian words in key
    /// order — the anti-entropy audit's cheap comparison, and the fold
    /// the generated control stub's `<t>_state_digest()` mirrors.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (k, v) in self.iter() {
            for w in [k, v] {
                for b in w.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        h
    }

    /// Walk the delta from `self` (the base) to `target`: `f(key, old,
    /// new)` fires for every key present in exactly one table or mapped
    /// to different values. Pages shared by pointer between the two
    /// tables are skipped wholesale, so the cost is O(pages + differing
    /// entries) when the tables share structure (one was cloned from the
    /// other), never worse than a full sorted merge.
    pub fn for_each_delta(&self, target: &Self, mut f: impl FnMut(u64, Option<u64>, Option<u64>)) {
        let (a, b) = (&self.pages, &target.pages);
        let (mut ia, mut ja) = (0usize, 0usize);
        let (mut ib, mut jb) = (0usize, 0usize);
        loop {
            if ja == 0 && jb == 0 {
                while ia < a.len() && ib < b.len() && Arc::ptr_eq(&a[ia], &b[ib]) {
                    ia += 1;
                    ib += 1;
                }
            }
            let av = a.get(ia).map(|p| p[ja]);
            let bv = b.get(ib).map(|p| p[jb]);
            let mut step_a = || {
                ja += 1;
                if ja == a[ia].len() {
                    ia += 1;
                    ja = 0;
                }
            };
            match (av, bv) {
                (None, None) => break,
                (Some((k, v)), None) => {
                    f(k, Some(v), None);
                    step_a();
                }
                (None, Some((k, v))) => {
                    f(k, None, Some(v));
                    jb += 1;
                    if jb == b[ib].len() {
                        ib += 1;
                        jb = 0;
                    }
                }
                (Some((ka, va)), Some((kb, vb))) => {
                    if ka <= kb {
                        if ka < kb {
                            f(ka, Some(va), None);
                        } else {
                            if va != vb {
                                f(ka, Some(va), Some(vb));
                            }
                            jb += 1;
                            if jb == b[ib].len() {
                                ib += 1;
                                jb = 0;
                            }
                        }
                        step_a();
                    } else {
                        f(kb, None, Some(vb));
                        jb += 1;
                        if jb == b[ib].len() {
                            ib += 1;
                            jb = 0;
                        }
                    }
                }
            }
        }
    }

    /// True when the two tables share every page by pointer — a cheap
    /// sufficient (not necessary) condition for equality, used to skip
    /// work on untouched switches.
    pub fn same_pages(&self, other: &Self) -> bool {
        self.pages.len() == other.pages.len()
            && self
                .pages
                .iter()
                .zip(&other.pages)
                .all(|(x, y)| Arc::ptr_eq(x, y))
    }
}

impl PartialEq for ExternTable {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        if self.same_pages(other) {
            return true;
        }
        self.iter().eq(other.iter())
    }
}

impl Eq for ExternTable {}

impl FromIterator<(u64, u64)> for ExternTable {
    /// Collect arbitrary (possibly unsorted, possibly duplicated)
    /// entries; later duplicates win, as with `BTreeMap::insert`.
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        let sorted: BTreeMap<u64, u64> = iter.into_iter().collect();
        Self::from_sorted(sorted.into_iter().collect())
    }
}

impl From<BTreeMap<u64, u64>> for ExternTable {
    fn from(m: BTreeMap<u64, u64>) -> Self {
        Self::from_sorted(m.into_iter().collect())
    }
}

impl Extend<(u64, u64)> for ExternTable {
    fn extend<T: IntoIterator<Item = (u64, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<'a> IntoIterator for &'a ExternTable {
    type Item = (u64, u64);
    type IntoIter = Box<dyn Iterator<Item = (u64, u64)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(entries: impl IntoIterator<Item = (u64, u64)>) -> ExternTable {
        entries.into_iter().collect()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = ExternTable::new();
        assert!(t.is_empty());
        for k in 0..2000u64 {
            assert_eq!(t.insert(k * 3, k), None);
        }
        assert_eq!(t.len(), 2000);
        assert_eq!(t.get(3), Some(1));
        assert_eq!(t.get(4), None);
        assert_eq!(t.insert(3, 99), Some(1));
        assert_eq!(t.len(), 2000, "overwrite must not change len");
        assert_eq!(t.remove(3), Some(99));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.len(), 1999);
        let keys: Vec<u64> = t.keys().collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        // Seeded xorshift mirror of the map semantics.
        let mut x: u64 = 0x1234_5678;
        let mut next = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut t = ExternTable::new();
        let mut m = BTreeMap::new();
        for _ in 0..20_000 {
            let k = next() % 4096;
            let v = next();
            if v % 5 == 0 {
                assert_eq!(t.remove(k), m.remove(&k));
            } else {
                assert_eq!(t.insert(k, v), m.insert(k, v));
            }
            assert_eq!(t.len(), m.len());
        }
        assert!(t.iter().eq(m.iter().map(|(&k, &v)| (k, v))));
        for k in 0..4096 {
            assert_eq!(t.get(k), m.get(&k).copied());
        }
    }

    #[test]
    fn clones_share_pages_and_cow_isolates_mutation() {
        let t = table_of((0..10_000u64).map(|k| (k, k + 1)));
        let mut u = t.clone();
        assert!(t.same_pages(&u));
        u.insert(7, 8); // redundant overwrite: must not break sharing
        assert!(t.same_pages(&u));
        u.insert(5, 0xdead);
        assert_eq!(t.get(5), Some(6), "base unaffected by clone mutation");
        assert_eq!(u.get(5), Some(0xdead));
        // All pages but the mutated one stay shared.
        let shared = t
            .pages
            .iter()
            .filter(|p| u.pages.iter().any(|q| Arc::ptr_eq(p, q)))
            .count();
        assert_eq!(shared, t.pages.len() - 1);
    }

    #[test]
    fn delta_between_clone_and_base_is_exactly_the_mutations() {
        let base = table_of((0..100_000u64).map(|k| (k, k)));
        let mut next = base.clone();
        next.insert(200_000, 1); // add
        next.remove(17); // remove
        next.insert(40_000, 7); // modify
        let mut delta = Vec::new();
        base.for_each_delta(&next, |k, old, new| delta.push((k, old, new)));
        delta.sort();
        assert_eq!(
            delta,
            vec![
                (17, Some(17), None),
                (40_000, Some(40_000), Some(7)),
                (200_000, None, Some(1)),
            ]
        );
        // And a table diffed against itself is silent.
        let mut none = 0;
        base.for_each_delta(&base, |_, _, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn delta_between_unrelated_tables_is_a_full_merge() {
        let a = table_of([(1, 1), (2, 2), (3, 3)]);
        let b = table_of([(2, 2), (3, 9), (4, 4)]);
        let mut delta = Vec::new();
        a.for_each_delta(&b, |k, old, new| delta.push((k, old, new)));
        assert_eq!(
            delta,
            vec![
                (1, Some(1), None),
                (3, Some(3), Some(9)),
                (4, None, Some(4)),
            ]
        );
    }

    #[test]
    fn equality_is_logical_not_structural() {
        let a = table_of((0..3000u64).map(|k| (k, k)));
        // Same contents, different page structure (built by inserts in
        // reverse order).
        let mut b = ExternTable::new();
        for k in (0..3000u64).rev() {
            b.insert(k, k);
        }
        assert_eq!(a, b);
        let mut c = b.clone();
        c.insert(1, 999);
        assert_ne!(a, c);
    }

    #[test]
    fn from_sorted_bulk_load_matches_inserts() {
        let entries: Vec<(u64, u64)> = (0..5000u64).map(|k| (k * 2, k)).collect();
        let bulk = ExternTable::from_sorted(entries.clone());
        let slow: ExternTable = entries.into_iter().collect();
        assert_eq!(bulk, slow);
        assert_eq!(bulk.len(), 5000);
    }

    #[test]
    fn digest_tracks_content_only() {
        let a = table_of((0..1000u64).map(|k| (k, k)));
        let mut b = ExternTable::new();
        for k in (0..1000u64).rev() {
            b.insert(k, k);
        }
        assert_eq!(a.digest(), b.digest());
        b.insert(0, 5);
        assert_ne!(a.digest(), b.digest());
    }
}
