//! SSA conversion (§4.2 step 4): version every named location so each value
//! is assigned exactly once, removing write-after-read and write-after-write
//! dependencies. Only read-after-write dependencies remain afterwards, which
//! the paper relies on for dependency analysis ("After this step, only
//! Read-After-Write dependency remains").
//!
//! SSA here is *analysis* SSA: all versions of a base name still map to the
//! same physical storage (PHV field / metadata slot) in code generation —
//! exactly how the paper treats `int_info1`/`int_info2` in Figure 8(c).

use std::collections::BTreeMap;

use crate::instr::*;
use crate::lower::{RawAlgorithm, RawOp, RawOperand, RawProgram};
use lyra_lang::UnOp;

/// Convert a raw program into SSA form.
pub fn to_ssa(raw: RawProgram) -> IrProgram {
    let algorithms = raw.algorithms.iter().map(ssa_algorithm).collect();
    let ir = IrProgram {
        algorithms,
        pipelines: raw.pipelines,
        externs: raw.externs,
        globals: raw.globals,
        headers: raw.headers,
        packets: raw.packets,
        parser_nodes: raw.parser_nodes,
    };
    // Pass-boundary invariant check (debug builds only): SSA conversion
    // must produce single definitions, def-before-use, and sound negation
    // links before width inference runs.
    crate::verify::debug_verify(&ir, crate::verify::Stage::PostSsa);
    ir
}

struct SsaCx {
    values: Vec<ValueInfo>,
    current: BTreeMap<String, ValueId>,
    versions: BTreeMap<String, u32>,
    declared: BTreeMap<String, u32>,
}

impl SsaCx {
    /// Current version of `name`, creating a live-in version 0 on first read.
    fn read(&mut self, name: &str) -> ValueId {
        if let Some(&v) = self.current.get(name) {
            return v;
        }
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo {
            base: name.to_string(),
            version: 0,
            width: self.declared.get(name).copied().unwrap_or(0),
            def: None,
            neg_of: None,
            class: classify(name),
        });
        self.current.insert(name.to_string(), id);
        self.versions.insert(name.to_string(), 0);
        id
    }

    /// A fresh version of `name` defined by `def`.
    fn write(&mut self, name: &str, def: InstrId) -> ValueId {
        let ver = self.versions.get(name).map(|v| v + 1).unwrap_or(1);
        self.versions.insert(name.to_string(), ver);
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo {
            base: name.to_string(),
            version: ver,
            width: self.declared.get(name).copied().unwrap_or(0),
            def: Some(def),
            neg_of: None,
            class: classify(name),
        });
        self.current.insert(name.to_string(), id);
        id
    }

    fn operand(&mut self, o: &RawOperand) -> Operand {
        match o {
            RawOperand::Const(c) => Operand::Const(*c),
            RawOperand::Name(n) => Operand::Value(self.read(n)),
        }
    }
}

fn classify(name: &str) -> StorageClass {
    if name.contains('.') {
        StorageClass::HeaderField
    } else {
        StorageClass::Local
    }
}

fn ssa_algorithm(raw: &RawAlgorithm) -> IrAlgorithm {
    let mut cx = SsaCx {
        values: Vec::new(),
        current: BTreeMap::new(),
        versions: BTreeMap::new(),
        declared: raw.declared.clone(),
    };
    let mut instrs: Vec<Instr> = Vec::with_capacity(raw.instrs.len());
    for (idx, ri) in raw.instrs.iter().enumerate() {
        let iid = InstrId(idx as u32);
        // Reads first (operands and predicate), then the write.
        let pred = ri.pred.as_ref().map(|p| cx.read(p));
        let op = convert_op(&ri.op, &mut cx);
        let dst = ri.dst.as_ref().map(|d| cx.write(d, iid));
        // Track negation structure for mutual-exclusivity analysis.
        if let (
            Some(d),
            IrOp::Unary {
                op: UnOp::Not,
                a: Operand::Value(src),
            },
        ) = (dst, &op)
        {
            cx.values[d.index()].neg_of = Some(*src);
        }
        // Predicate temporaries get the Predicate storage class.
        if let Some(p) = pred {
            if cx.values[p.index()].class == StorageClass::Local
                && cx.values[p.index()].base.starts_with('%')
            {
                cx.values[p.index()].class = StorageClass::Predicate;
            }
        }
        instrs.push(Instr { pred, op, dst });
    }
    IrAlgorithm {
        name: raw.name.clone(),
        instrs,
        values: cx.values,
    }
}

fn convert_op(op: &RawOp, cx: &mut SsaCx) -> IrOp {
    match op {
        RawOp::Assign(a) => IrOp::Assign(cx.operand(a)),
        RawOp::Binary { op, a, b } => IrOp::Binary {
            op: *op,
            a: cx.operand(a),
            b: cx.operand(b),
        },
        RawOp::Unary { op, a } => IrOp::Unary {
            op: *op,
            a: cx.operand(a),
        },
        RawOp::Call { name, args } => IrOp::Call {
            name: name.clone(),
            args: args.iter().map(|a| cx.operand(a)).collect(),
        },
        RawOp::Action { name, args } => IrOp::Action {
            name: name.clone(),
            args: args.iter().map(|a| cx.operand(a)).collect(),
        },
        RawOp::TableLookup { table, key } => IrOp::TableLookup {
            table: table.clone(),
            key: cx.operand(key),
        },
        RawOp::TableMember { table, key } => IrOp::TableMember {
            table: table.clone(),
            key: cx.operand(key),
        },
        RawOp::GlobalRead { global, index } => IrOp::GlobalRead {
            global: global.clone(),
            index: cx.operand(index),
        },
        RawOp::GlobalWrite {
            global,
            index,
            value,
        } => IrOp::GlobalWrite {
            global: global.clone(),
            index: cx.operand(index),
            value: cx.operand(value),
        },
        RawOp::Slice { a, hi, lo } => IrOp::Slice {
            a: cx.operand(a),
            hi: *hi,
            lo: *lo,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use lyra_lang::{check_program, parse_program};

    fn ssa(src: &str) -> IrProgram {
        let prog = parse_program(src).unwrap();
        let info = check_program(&prog).unwrap();
        to_ssa(lower_program(&prog, &info).unwrap())
    }

    #[test]
    fn single_assignment_property() {
        let ir = ssa("pipeline[P]{a}; algorithm a { x = 1; x = x + 1; x = x + 2; y = x; }");
        let alg = &ir.algorithms[0];
        let mut seen = std::collections::HashSet::new();
        for i in &alg.instrs {
            if let Some(d) = i.dst {
                assert!(seen.insert(d), "double definition");
            }
        }
        // x has versions 1, 2, 3 (no live-in version — never read first).
        let x_versions: Vec<u32> = alg
            .values
            .iter()
            .filter(|v| v.base == "x")
            .map(|v| v.version)
            .collect();
        assert_eq!(x_versions, vec![1, 2, 3]);
    }

    #[test]
    fn reads_see_latest_version() {
        let ir = ssa("pipeline[P]{a}; algorithm a { x = 1; y = x; x = 2; z = x; }");
        let alg = &ir.algorithms[0];
        // y = x must read x#1; z = x must read x#2.
        let get_read = |dst: &str| -> String {
            let i = alg
                .instrs
                .iter()
                .find(|i| i.dst.map(|d| alg.value(d).base == dst).unwrap_or(false))
                .unwrap();
            match &i.op {
                IrOp::Assign(Operand::Value(v)) => alg.value(*v).name(),
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(get_read("y"), "x#1");
        assert_eq!(get_read("z"), "x#2");
    }

    #[test]
    fn live_in_values_have_version_zero() {
        let ir = ssa("pipeline[P]{a}; algorithm a { y = ipv4.src_ip; }");
        let alg = &ir.algorithms[0];
        let live_in = alg.values.iter().find(|v| v.base == "ipv4.src_ip").unwrap();
        assert_eq!(live_in.version, 0);
        assert!(live_in.def.is_none());
        assert_eq!(live_in.class, StorageClass::HeaderField);
    }

    #[test]
    fn negation_tracked() {
        let ir = ssa("pipeline[P]{a}; algorithm a { if (c) { x = 1; } else { x = 2; } }");
        let alg = &ir.algorithms[0];
        let neg = alg
            .values
            .iter()
            .find(|v| v.neg_of.is_some())
            .expect("negation value");
        let pos = alg.value(neg.neg_of.unwrap());
        assert_eq!(pos.base, "c");
    }

    #[test]
    fn declared_widths_flow_into_values() {
        let ir = ssa("pipeline[P]{a}; algorithm a { bit[16] v; v = 3; w = v; }");
        let alg = &ir.algorithms[0];
        let v = alg.values.iter().find(|x| x.base == "v").unwrap();
        assert_eq!(v.width, 16);
    }
}
