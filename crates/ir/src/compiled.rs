//! A compiled data-plane execution engine for the context-aware IR.
//!
//! The reference interpreter ([`crate::interp`]) is the semantic oracle:
//! clear, stateful, and slow — every operand read is a string-keyed map
//! probe. This module flattens an [`IrAlgorithm`] (or any per-switch
//! instruction subset of one) into a slot-indexed bytecode stream at
//! *deployment* time so the per-packet loop does **zero hash-map lookups
//! and zero allocation**:
//!
//! * field/metadata storage bases are resolved once to dense register
//!   slots shared program-wide ([`ProgramLayout`]) — a packet travels a
//!   multi-switch path as one flat `u64` register file, the compiled
//!   equivalent of the bridge header;
//! * extern tables and global register arrays become integer handles into
//!   per-switch [`TableSnapshot`]s (sorted arrays + binary search);
//! * predicates become skip offsets ([`Op::Guard`]) over runs of
//!   identically-predicated instructions, so untaken branches cost one
//!   compare + jump instead of a per-instruction string probe;
//! * builtin calls are pre-dispatched at compile time — environment reads
//!   (deterministic per name) collapse to a precomputed constant.
//!
//! Execution happens on a reusable [`Machine`]: per-packet `reset` clears
//! only the slots the previous packet touched, and effects are recorded
//! into flat buffers that are reused across packets.
//!
//! Global register state has two access modes ([`GlobalAccess`]):
//! `Persistent` mutates a real store with the interpreter's exact
//! semantics (used by the differential suite to verify compiled streams
//! against the oracle over packet *sequences*), while `Isolated` gives
//! each packet a private overlay over a read-only baseline — the mode
//! batched multi-worker replay uses, which makes per-packet results
//! independent of worker count by construction.

use std::collections::BTreeMap;

use crate::instr::*;
use crate::interp::{
    builtin_call, global_read, global_write, mask, DataPlaneState, Effect, PacketState,
};
use lyra_lang::{BinOp, UnOp};

/// Program-wide compiled layout: dense slots for storage bases, integer
/// handles for extern tables, global register arrays, and action names.
/// One layout serves every algorithm of a program and every per-switch
/// subset, so compiled streams on different switches exchange packet state
/// through the same register file.
#[derive(Debug, Clone)]
pub struct ProgramLayout {
    slot_names: Vec<String>,
    slot_index: BTreeMap<String, u32>,
    table_names: Vec<String>,
    table_index: BTreeMap<String, u32>,
    global_names: Vec<String>,
    global_index: BTreeMap<String, u32>,
    /// Declared length per global handle (0 = undeclared, grows on write).
    global_lens: Vec<usize>,
    action_names: Vec<String>,
    action_index: BTreeMap<String, u32>,
}

impl ProgramLayout {
    /// Build the layout for a whole program: slots from every algorithm's
    /// value table, table/global handles from the declarations plus any
    /// name an instruction references, action handles from every `Action`.
    pub fn new(ir: &IrProgram) -> Self {
        Self::unioned(&[ir])
    }

    /// Build one layout covering several programs — e.g. the current and
    /// the next placement of a rollout, whose compiled streams must agree
    /// on every slot and handle so one machine can serve either epoch.
    /// Names are interned by identity, so programs sharing base/table/
    /// global names share slots and handles.
    pub fn unioned(irs: &[&IrProgram]) -> Self {
        let mut l = ProgramLayout {
            slot_names: Vec::new(),
            slot_index: BTreeMap::new(),
            table_names: Vec::new(),
            table_index: BTreeMap::new(),
            global_names: Vec::new(),
            global_index: BTreeMap::new(),
            global_lens: Vec::new(),
            action_names: Vec::new(),
            action_index: BTreeMap::new(),
        };
        for ir in irs {
            for name in ir.externs.keys() {
                l.intern_table(name);
            }
            for (name, &(_, len)) in &ir.globals {
                let g = l.intern_global(name);
                l.global_lens[g as usize] = len as usize;
            }
            for alg in &ir.algorithms {
                for info in &alg.values {
                    l.intern_slot(&info.base);
                }
                for instr in &alg.instrs {
                    if let Some(t) = instr.op.table() {
                        l.intern_table(t);
                    }
                    if let Some(g) = instr.op.global() {
                        l.intern_global(g);
                    }
                    if let IrOp::Action { name, .. } = &instr.op {
                        l.intern_action(name);
                    }
                }
            }
        }
        l
    }

    fn intern_slot(&mut self, base: &str) -> u32 {
        if let Some(&s) = self.slot_index.get(base) {
            return s;
        }
        let s = self.slot_names.len() as u32;
        self.slot_names.push(base.to_string());
        self.slot_index.insert(base.to_string(), s);
        s
    }

    fn intern_table(&mut self, name: &str) -> u32 {
        if let Some(&t) = self.table_index.get(name) {
            return t;
        }
        let t = self.table_names.len() as u32;
        self.table_names.push(name.to_string());
        self.table_index.insert(name.to_string(), t);
        t
    }

    fn intern_global(&mut self, name: &str) -> u32 {
        if let Some(&g) = self.global_index.get(name) {
            return g;
        }
        let g = self.global_names.len() as u32;
        self.global_names.push(name.to_string());
        self.global_index.insert(name.to_string(), g);
        self.global_lens.push(0);
        g
    }

    fn intern_action(&mut self, name: &str) -> u32 {
        if let Some(&a) = self.action_index.get(name) {
            return a;
        }
        let a = self.action_names.len() as u32;
        self.action_names.push(name.to_string());
        self.action_index.insert(name.to_string(), a);
        a
    }

    /// Number of register slots.
    pub fn slots(&self) -> usize {
        self.slot_names.len()
    }

    /// Slot of a storage base name.
    pub fn slot(&self, base: &str) -> Option<u32> {
        self.slot_index.get(base).copied()
    }

    /// Base name of a slot.
    pub fn slot_name(&self, slot: u32) -> &str {
        &self.slot_names[slot as usize]
    }

    /// Handle of an extern table.
    pub fn table(&self, name: &str) -> Option<u32> {
        self.table_index.get(name).copied()
    }

    /// Handle of a global register array.
    pub fn global(&self, name: &str) -> Option<u32> {
        self.global_index.get(name).copied()
    }

    /// Name of a global handle.
    pub fn global_name(&self, g: u32) -> &str {
        &self.global_names[g as usize]
    }

    /// Number of global handles.
    pub fn globals(&self) -> usize {
        self.global_names.len()
    }

    /// Action name of a handle.
    pub fn action_name(&self, a: u32) -> &str {
        &self.action_names[a as usize]
    }

    /// Materialize a global store (indexed by handle) from a data-plane
    /// state, sizing absent arrays from their declared lengths.
    pub fn globals_from(&self, dp: &DataPlaneState) -> Vec<Vec<u64>> {
        self.global_names
            .iter()
            .enumerate()
            .map(|(g, name)| match dp.globals.get(name) {
                Some(arr) => arr.clone(),
                None => vec![0; self.global_lens[g]],
            })
            .collect()
    }

    /// Write a global store back into a data-plane state (the inverse of
    /// [`ProgramLayout::globals_from`], for differential comparisons).
    pub fn globals_into(&self, store: &[Vec<u64>], dp: &mut DataPlaneState) {
        for (g, arr) in store.iter().enumerate() {
            dp.globals.insert(self.global_names[g].clone(), arr.clone());
        }
    }
}

/// A compiled operand: a constant or a register slot.
#[derive(Debug, Clone, Copy)]
pub enum Src {
    /// Immediate.
    Const(u64),
    /// Register slot.
    Slot(u32),
}

/// A compiled destination: the slot plus the precomputed width mask.
#[derive(Debug, Clone, Copy)]
struct Dst {
    slot: u32,
    mask: u64,
}

/// One bytecode op. Every field is pre-resolved: slots, table/global
/// handles, width masks, skip offsets, env-read constants.
#[derive(Debug, Clone)]
enum Op {
    /// If `regs[slot] == 0`, skip the next `skip` ops (a run of
    /// instructions sharing this predicate).
    Guard {
        slot: u32,
        skip: u32,
    },
    Assign {
        dst: Dst,
        a: Src,
    },
    Bin {
        op: BinOp,
        dst: Dst,
        a: Src,
        b: Src,
    },
    Un {
        op: UnOp,
        dst: Dst,
        a: Src,
    },
    /// Pre-dispatched hash builtin: `reference_hash(args) & out_mask`.
    Hash {
        dst: Dst,
        out_mask: u64,
        args: Box<[Src]>,
    },
    /// Pre-dispatched `min`/`max` fold.
    Fold {
        dst: Dst,
        is_min: bool,
        args: Box<[Src]>,
    },
    /// Pre-dispatched environment read (deterministic per builtin name).
    Env {
        dst: Dst,
        value: u64,
    },
    /// Void builtin: record an effect.
    Act {
        action: u32,
        args: Box<[Src]>,
    },
    /// Sticky membership test (`dst |= key in table`).
    Member {
        dst: Dst,
        table: u32,
        key: Src,
    },
    /// Sticky lookup (`dst = table[key]` on hit, unchanged on miss).
    Lookup {
        dst: Dst,
        table: u32,
        key: Src,
    },
    GlobalRead {
        dst: Dst,
        global: u32,
        index: Src,
    },
    GlobalWrite {
        global: u32,
        index: Src,
        value: Src,
    },
    Slice {
        dst: Dst,
        a: Src,
        lo: u32,
        smask: u64,
    },
}

/// An algorithm (or per-switch subset of one) flattened to bytecode over a
/// shared [`ProgramLayout`].
#[derive(Debug, Clone)]
pub struct CompiledAlgorithm {
    /// Source algorithm name.
    pub name: String,
    ops: Vec<Op>,
    /// Slots read before any write in this stream (live-in: the packet
    /// fields this stream consumes).
    live_in: Vec<u32>,
}

impl CompiledAlgorithm {
    /// Compile `subset` (in the order given) of `alg` against `layout`.
    /// The layout must come from the program that owns `alg` (same base
    /// names, table/global/action names).
    pub fn compile(alg: &IrAlgorithm, subset: &[InstrId], layout: &ProgramLayout) -> Self {
        let slot_of = |v: ValueId| -> u32 {
            layout
                .slot(&alg.value(v).base)
                .expect("layout must cover every base of the algorithm")
        };
        let src_of = |o: &Operand| -> Src {
            match o {
                Operand::Const(c) => Src::Const(*c),
                Operand::Value(v) => Src::Slot(slot_of(*v)),
            }
        };
        let dst_of = |d: ValueId| -> Dst {
            let info = alg.value(d);
            Dst {
                slot: slot_of(d),
                mask: mask(u64::MAX, info.width),
            }
        };
        let mut ops: Vec<Op> = Vec::with_capacity(subset.len());
        let mut written: Vec<bool> = vec![false; layout.slots()];
        let mut live_in: Vec<u32> = Vec::new();
        // Open guard: (pred slot, index of the Guard op).
        let mut guard: Option<(u32, usize)> = None;
        let close_guard = |ops: &mut Vec<Op>, guard: &mut Option<(u32, usize)>| {
            if let Some((_, at)) = guard.take() {
                let skip = (ops.len() - at - 1) as u32;
                if skip == 0 {
                    // Guard over an empty run (every instr was elided).
                    ops.remove(at);
                } else if let Op::Guard { skip: s, .. } = &mut ops[at] {
                    *s = skip;
                }
            }
        };
        for &id in subset {
            let instr = alg.instr(id);
            // Dead value op: no destination and no side effect.
            let elide = instr.dst.is_none() && !instr.op.has_side_effect();
            if elide {
                continue;
            }
            let note_read = |s: Src, written: &[bool], live_in: &mut Vec<u32>| {
                if let Src::Slot(slot) = s {
                    if !written[slot as usize] && !live_in.contains(&slot) {
                        live_in.push(slot);
                    }
                }
            };
            // Predicate → guard run. A run breaks when the predicate
            // changes or when an instruction redefines the predicate's own
            // storage (the next instruction must re-check it).
            let pred_slot = instr.pred.map(slot_of);
            match (pred_slot, &guard) {
                (None, _) => close_guard(&mut ops, &mut guard),
                (Some(p), Some((open, _))) if *open == p => {}
                (Some(p), _) => {
                    close_guard(&mut ops, &mut guard);
                    note_read(Src::Slot(p), &written, &mut live_in);
                    guard = Some((p, ops.len()));
                    ops.push(Op::Guard { slot: p, skip: 0 });
                }
            }
            let dst = instr.dst.map(dst_of);
            let op = match &instr.op {
                IrOp::Assign(a) => {
                    let a = src_of(a);
                    note_read(a, &written, &mut live_in);
                    Op::Assign {
                        dst: dst.expect("assign has a destination"),
                        a,
                    }
                }
                IrOp::Binary { op, a, b } => {
                    let (a, b) = (src_of(a), src_of(b));
                    note_read(a, &written, &mut live_in);
                    note_read(b, &written, &mut live_in);
                    Op::Bin {
                        op: *op,
                        dst: dst.expect("binary has a destination"),
                        a,
                        b,
                    }
                }
                IrOp::Unary { op, a } => {
                    let a = src_of(a);
                    note_read(a, &written, &mut live_in);
                    Op::Un {
                        op: *op,
                        dst: dst.expect("unary has a destination"),
                        a,
                    }
                }
                IrOp::Call { name, args } => {
                    let args: Box<[Src]> = args.iter().map(src_of).collect();
                    for &a in args.iter() {
                        note_read(a, &written, &mut live_in);
                    }
                    let dst = dst.expect("call has a destination");
                    let bare = name.strip_prefix("lyra_").unwrap_or(name);
                    match bare {
                        "crc32_hash" | "identity_hash" => Op::Hash {
                            dst,
                            out_mask: 0xffff_ffff,
                            args,
                        },
                        "crc16_hash" => Op::Hash {
                            dst,
                            out_mask: 0xffff,
                            args,
                        },
                        "min" => Op::Fold {
                            dst,
                            is_min: true,
                            args,
                        },
                        "max" => Op::Fold {
                            dst,
                            is_min: false,
                            args,
                        },
                        // Environment reads depend only on the name:
                        // fold the whole call to a constant now.
                        _ => Op::Env {
                            dst,
                            value: builtin_call(name, &[]),
                        },
                    }
                }
                IrOp::Action { name, args } => {
                    let args: Box<[Src]> = args.iter().map(src_of).collect();
                    for &a in args.iter() {
                        note_read(a, &written, &mut live_in);
                    }
                    Op::Act {
                        action: layout
                            .action_index
                            .get(name)
                            .copied()
                            .expect("layout must cover every action name"),
                        args,
                    }
                }
                IrOp::TableMember { table, key } => {
                    let key = src_of(key);
                    note_read(key, &written, &mut live_in);
                    let dst = dst.expect("member has a destination");
                    // Sticky OR reads the previous destination value.
                    note_read(Src::Slot(dst.slot), &written, &mut live_in);
                    Op::Member {
                        dst,
                        table: layout.table(table).expect("layout covers tables"),
                        key,
                    }
                }
                IrOp::TableLookup { table, key } => {
                    let key = src_of(key);
                    note_read(key, &written, &mut live_in);
                    Op::Lookup {
                        dst: dst.expect("lookup has a destination"),
                        table: layout.table(table).expect("layout covers tables"),
                        key,
                    }
                }
                IrOp::GlobalRead { global, index } => {
                    let index = src_of(index);
                    note_read(index, &written, &mut live_in);
                    Op::GlobalRead {
                        dst: dst.expect("global read has a destination"),
                        global: layout.global(global).expect("layout covers globals"),
                        index,
                    }
                }
                IrOp::GlobalWrite {
                    global,
                    index,
                    value,
                } => {
                    let (index, value) = (src_of(index), src_of(value));
                    note_read(index, &written, &mut live_in);
                    note_read(value, &written, &mut live_in);
                    Op::GlobalWrite {
                        global: layout.global(global).expect("layout covers globals"),
                        index,
                        value,
                    }
                }
                IrOp::Slice { a, hi, lo } => {
                    let a = src_of(a);
                    note_read(a, &written, &mut live_in);
                    let d = dst.expect("slice has a destination");
                    let width = (hi - lo + 1).min(63);
                    Op::Slice {
                        // Slice truncates to the slice width *and* the
                        // destination width; compose both masks.
                        dst: Dst {
                            slot: d.slot,
                            mask: d.mask & mask(u64::MAX, width),
                        },
                        a,
                        lo: *lo,
                        smask: u64::MAX,
                    }
                }
            };
            ops.push(op);
            if let Some(d) = instr.dst {
                let slot = slot_of(d) as usize;
                written[slot] = true;
                // A write to the open guard's own predicate base ends the
                // run: later instructions must re-evaluate the guard.
                if let Some((open, _)) = guard {
                    if open as usize == slot {
                        close_guard(&mut ops, &mut guard);
                    }
                }
            }
        }
        close_guard(&mut ops, &mut guard);
        live_in.sort_unstable();
        CompiledAlgorithm {
            name: alg.name.clone(),
            ops,
            live_in,
        }
    }

    /// Compile the whole algorithm.
    pub fn compile_all(alg: &IrAlgorithm, layout: &ProgramLayout) -> Self {
        let ids: Vec<InstrId> = alg.instr_ids().collect();
        Self::compile(alg, &ids, layout)
    }

    /// Slots this stream reads before writing (its packet inputs).
    pub fn live_in(&self) -> &[u32] {
        &self.live_in
    }

    /// Number of bytecode ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the stream compiled to nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Read-mostly per-switch state snapshot: extern tables flattened to
/// sorted `(key, value)` arrays (binary search, cache-friendly) plus the
/// baseline contents of every global register array, all indexed by the
/// layout's integer handles.
#[derive(Debug, Clone, Default)]
pub struct TableSnapshot {
    tables: Vec<Vec<(u64, u64)>>,
    /// Baseline global contents by handle (what `Isolated` reads through
    /// to, and what a fresh `Persistent` store clones).
    pub globals: Vec<Vec<u64>>,
}

impl TableSnapshot {
    /// Snapshot a data-plane state under `layout`.
    pub fn build(layout: &ProgramLayout, dp: &DataPlaneState) -> Self {
        let tables = layout
            .table_names
            .iter()
            .map(|name| match dp.externs.get(name) {
                Some(entries) => entries.iter().collect(),
                None => Vec::new(),
            })
            .collect();
        TableSnapshot {
            tables,
            globals: layout.globals_from(dp),
        }
    }

    #[inline]
    fn lookup(&self, table: u32, key: u64) -> Option<u64> {
        let t = &self.tables[table as usize];
        t.binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| t[i].1)
    }

    /// Total entries across all tables (for reports).
    pub fn entries(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Insert or overwrite one entry of table handle `table`, keeping the
    /// sorted-array invariant. This is how a delta prepare is merged into
    /// a staged snapshot on the live-traffic mirror without ever
    /// materializing the full next-epoch `DataPlaneState`.
    pub fn set(&mut self, table: u32, key: u64, value: u64) {
        let t = &mut self.tables[table as usize];
        match t.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => t[i].1 = value,
            Err(i) => t.insert(i, (key, value)),
        }
    }

    /// Remove one entry of table handle `table` (no-op when absent).
    pub fn remove(&mut self, table: u32, key: u64) {
        let t = &mut self.tables[table as usize];
        if let Ok(i) = t.binary_search_by_key(&key, |&(k, _)| k) {
            t.remove(i);
        }
    }
}

/// A packet-private overlay of global writes: the batched engine's
/// isolation mechanism. Reads scan the (tiny, newest-first) write log
/// before falling back to the snapshot baseline; `clear` is O(writes).
#[derive(Debug, Default)]
pub struct GlobalOverlay {
    writes: Vec<(u32, u64, u64)>,
}

impl GlobalOverlay {
    /// An empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget all writes (start the next packet / hop).
    pub fn clear(&mut self) {
        self.writes.clear();
    }

    #[inline]
    fn read(&self, global: u32, index: u64) -> Option<u64> {
        self.writes
            .iter()
            .rev()
            .find(|&&(g, i, _)| g == global && i == index)
            .map(|&(_, _, v)| v)
    }
}

/// How compiled streams touch global register arrays.
pub enum GlobalAccess<'a> {
    /// Mutate a real store (indexed by global handle) with the reference
    /// interpreter's exact semantics — state persists across packets.
    Persistent(&'a mut Vec<Vec<u64>>),
    /// Per-packet isolation: reads fall through a private overlay to the
    /// read-only snapshot baseline; writes land in the overlay only. This
    /// is what makes batched execution independent of worker count.
    Isolated {
        /// The epoch-pinned baseline (typically [`TableSnapshot::globals`]).
        baseline: &'a [Vec<u64>],
        /// The packet-private write log.
        overlay: &'a mut GlobalOverlay,
    },
}

impl GlobalAccess<'_> {
    #[inline]
    fn read(&self, g: u32, i: u64) -> u64 {
        match self {
            GlobalAccess::Persistent(store) => global_read(&store[g as usize], i),
            GlobalAccess::Isolated { baseline, overlay } => {
                let arr = &baseline[g as usize];
                // Wrap exactly as the baseline store would, so the overlay
                // key matches the physical register.
                let i = if arr.is_empty() {
                    i
                } else {
                    i % arr.len() as u64
                };
                overlay.read(g, i).unwrap_or_else(|| global_read(arr, i))
            }
        }
    }

    #[inline]
    fn write(&mut self, g: u32, i: u64, v: u64) {
        match self {
            GlobalAccess::Persistent(store) => global_write(&mut store[g as usize], i, v),
            GlobalAccess::Isolated { baseline, overlay } => {
                let arr = &baseline[g as usize];
                let i = if arr.is_empty() {
                    i
                } else {
                    i % arr.len() as u64
                };
                overlay.writes.push((g, i, v));
            }
        }
    }
}

/// One recorded effect: `(action handle, arg range in the flat buffer)`.
#[derive(Debug, Clone, Copy)]
struct EffectRec {
    action: u32,
    start: u32,
    len: u32,
}

/// A reusable execution context: the register file, effect buffers, and
/// touched-slot bookkeeping. Create once per worker, `reset` per packet —
/// the steady-state packet loop performs no allocation.
#[derive(Debug)]
pub struct Machine {
    regs: Vec<u64>,
    /// Slot holds a meaningful value (loaded or written) this packet.
    active: Vec<bool>,
    /// Slot was *written* this packet (what `store_packet` persists).
    written: Vec<bool>,
    touched: Vec<u32>,
    effect_args: Vec<u64>,
    effects: Vec<EffectRec>,
}

impl Machine {
    /// A machine sized for `layout`.
    pub fn new(layout: &ProgramLayout) -> Self {
        let n = layout.slots();
        Machine {
            regs: vec![0; n],
            active: vec![false; n],
            written: vec![false; n],
            touched: Vec::with_capacity(n),
            effect_args: Vec::new(),
            effects: Vec::new(),
        }
    }

    /// Clear the machine for the next packet: only the slots the previous
    /// packet touched are reset.
    pub fn reset(&mut self) {
        for &slot in &self.touched {
            self.regs[slot as usize] = 0;
            self.active[slot as usize] = false;
            self.written[slot as usize] = false;
        }
        self.touched.clear();
        self.effect_args.clear();
        self.effects.clear();
    }

    /// Seed a packet field.
    #[inline]
    pub fn set_slot(&mut self, slot: u32, v: u64) {
        if !self.active[slot as usize] {
            self.active[slot as usize] = true;
            self.touched.push(slot);
        }
        self.regs[slot as usize] = v;
    }

    /// Read a register.
    #[inline]
    pub fn slot(&self, slot: u32) -> u64 {
        self.regs[slot as usize]
    }

    #[inline]
    fn write(&mut self, dst: Dst, v: u64) {
        let s = dst.slot as usize;
        if !self.active[s] {
            self.active[s] = true;
            self.touched.push(dst.slot);
        }
        self.written[s] = true;
        self.regs[s] = v & dst.mask;
    }

    #[inline]
    fn read(&self, s: Src) -> u64 {
        match s {
            Src::Const(c) => c,
            Src::Slot(slot) => self.regs[slot as usize],
        }
    }

    /// Load every known field of a packet state (differential harness
    /// entry point — the replay hot path seeds slots directly).
    pub fn load_packet(&mut self, layout: &ProgramLayout, pkt: &PacketState) {
        for (name, &v) in &pkt.values {
            if let Some(slot) = layout.slot(name) {
                self.set_slot(slot, v);
            }
        }
    }

    /// Store written slots back into a packet state, mirroring the
    /// interpreter's insert-on-write key behavior.
    pub fn store_packet(&self, layout: &ProgramLayout, pkt: &mut PacketState) {
        for &slot in &self.touched {
            if self.written[slot as usize] {
                pkt.values
                    .insert(layout.slot_name(slot).to_string(), self.regs[slot as usize]);
            }
        }
    }

    /// Execute one compiled stream against a table snapshot and a global
    /// access mode. Effects accumulate until the next `reset`.
    pub fn run(
        &mut self,
        prog: &CompiledAlgorithm,
        snap: &TableSnapshot,
        globals: &mut GlobalAccess<'_>,
    ) {
        let ops = &prog.ops;
        let mut ip = 0usize;
        while ip < ops.len() {
            match &ops[ip] {
                Op::Guard { slot, skip } => {
                    if self.regs[*slot as usize] == 0 {
                        ip += *skip as usize;
                    }
                }
                Op::Assign { dst, a } => {
                    let v = self.read(*a);
                    self.write(*dst, v);
                }
                Op::Bin { op, dst, a, b } => {
                    let (x, y) = (self.read(*a), self.read(*b));
                    let v = match op {
                        BinOp::Add => x.wrapping_add(y),
                        BinOp::Sub => x.wrapping_sub(y),
                        BinOp::Mul => x.wrapping_mul(y),
                        BinOp::Div => x.checked_div(y).unwrap_or(0),
                        BinOp::Mod => x.checked_rem(y).unwrap_or(0),
                        BinOp::And => x & y,
                        BinOp::Or => x | y,
                        BinOp::Xor => x ^ y,
                        BinOp::Shl => x.checked_shl(y as u32).unwrap_or(0),
                        BinOp::Shr => x.checked_shr(y as u32).unwrap_or(0),
                        BinOp::Eq => (x == y) as u64,
                        BinOp::Ne => (x != y) as u64,
                        BinOp::Lt => (x < y) as u64,
                        BinOp::Le => (x <= y) as u64,
                        BinOp::Gt => (x > y) as u64,
                        BinOp::Ge => (x >= y) as u64,
                        BinOp::LAnd => ((x != 0) && (y != 0)) as u64,
                        BinOp::LOr => ((x != 0) || (y != 0)) as u64,
                    };
                    self.write(*dst, v);
                }
                Op::Un { op, dst, a } => {
                    let x = self.read(*a);
                    let v = match op {
                        UnOp::Not => (x == 0) as u64,
                        UnOp::BitNot => !x,
                        UnOp::Neg => x.wrapping_neg(),
                    };
                    self.write(*dst, v);
                }
                Op::Hash {
                    dst,
                    out_mask,
                    args,
                } => {
                    // Inline reference_hash over the arg slots: no arg
                    // buffer materialization.
                    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
                    for &a in args.iter() {
                        acc ^= self.read(a);
                        acc = acc.wrapping_mul(0xff51_afd7_ed55_8ccd);
                        acc ^= acc >> 33;
                    }
                    self.write(*dst, acc & out_mask);
                }
                Op::Fold { dst, is_min, args } => {
                    let it = args.iter().map(|&a| self.read(a));
                    let v = if *is_min {
                        it.min().unwrap_or(0)
                    } else {
                        it.max().unwrap_or(0)
                    };
                    self.write(*dst, v);
                }
                Op::Env { dst, value } => self.write(*dst, *value),
                Op::Act { action, args } => {
                    let start = self.effect_args.len() as u32;
                    for &a in args.iter() {
                        let v = self.read(a);
                        self.effect_args.push(v);
                    }
                    self.effects.push(EffectRec {
                        action: *action,
                        start,
                        len: args.len() as u32,
                    });
                }
                Op::Member { dst, table, key } => {
                    let k = self.read(*key);
                    let hit = snap.lookup(*table, k).is_some() as u64;
                    let prev = self.regs[dst.slot as usize];
                    self.write(*dst, prev | hit);
                }
                Op::Lookup { dst, table, key } => {
                    let k = self.read(*key);
                    if let Some(v) = snap.lookup(*table, k) {
                        self.write(*dst, v);
                    }
                }
                Op::GlobalRead { dst, global, index } => {
                    let i = self.read(*index);
                    let v = globals.read(*global, i);
                    self.write(*dst, v);
                }
                Op::GlobalWrite {
                    global,
                    index,
                    value,
                } => {
                    let i = self.read(*index);
                    let v = self.read(*value);
                    globals.write(*global, i, v);
                }
                Op::Slice { dst, a, lo, smask } => {
                    let x = self.read(*a);
                    self.write(*dst, (x >> lo) & smask);
                }
            }
            ip += 1;
        }
    }

    /// Number of effects recorded since the last `reset`.
    pub fn effect_count(&self) -> usize {
        self.effects.len()
    }

    /// Materialize the recorded effects (test/verification path — the hot
    /// loop uses [`Machine::effect_count`] and [`Machine::digest`]).
    pub fn effects_vec(&self, layout: &ProgramLayout) -> Vec<Effect> {
        self.effects
            .iter()
            .map(|e| Effect::Action {
                name: layout.action_name(e.action).to_string(),
                args: self.effect_args[e.start as usize..(e.start + e.len) as usize].to_vec(),
            })
            .collect()
    }

    /// An order-sensitive fingerprint of the packet outcome: every touched
    /// register slot plus the effect stream. Touch order is program order,
    /// a function of the packet alone, so two runs of the same packet
    /// produce the same digest regardless of worker partitioning — the
    /// determinism the batched-replay tests assert. Untouched slots are
    /// zero and carry no information, so only touched slots are folded.
    pub fn digest(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            acc ^= v;
            acc = acc.wrapping_mul(0x1000_0000_01b3);
        };
        for &slot in &self.touched {
            mix(slot as u64);
            mix(self.regs[slot as usize]);
        }
        for e in &self.effects {
            mix(0x5eed ^ e.action as u64);
            for &a in &self.effect_args[e.start as usize..(e.start + e.len) as usize] {
                mix(a);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use crate::interp::{execute_all, DataPlaneState, PacketState};

    fn program(src: &str) -> IrProgram {
        frontend(src).unwrap()
    }

    /// Run one packet both ways (interpreter vs compiled, persistent
    /// globals) and assert identical observable state.
    fn check(src: &str, fields: &[(&str, u64)], dp: &DataPlaneState) {
        let ir = program(src);
        let layout = ProgramLayout::new(&ir);
        let alg = &ir.algorithms[0];
        let compiled = CompiledAlgorithm::compile_all(alg, &layout);

        let mut ref_pkt = PacketState::new();
        for &(k, v) in fields {
            ref_pkt.set(k, v);
        }
        let mut ref_dp = dp.clone();
        let ref_fx = execute_all(alg, &mut ref_pkt, &mut ref_dp);

        let mut m = Machine::new(&layout);
        let mut pkt = PacketState::new();
        for &(k, v) in fields {
            pkt.set(k, v);
        }
        m.load_packet(&layout, &pkt);
        let snap = TableSnapshot::build(&layout, dp);
        let mut store = layout.globals_from(dp);
        m.run(&compiled, &snap, &mut GlobalAccess::Persistent(&mut store));
        m.store_packet(&layout, &mut pkt);

        for (name, &v) in &ref_pkt.values {
            assert_eq!(pkt.get(name), v, "field `{name}` diverged");
        }
        assert_eq!(m.effects_vec(&layout), ref_fx, "effects diverged");
        let mut out_dp = dp.clone();
        layout.globals_into(&store, &mut out_dp);
        for (g, arr) in &ref_dp.globals {
            assert_eq!(out_dp.globals.get(g), Some(arr), "global `{g}` diverged");
        }
    }

    #[test]
    fn arithmetic_and_masking_match_interpreter() {
        check(
            "pipeline[P]{a}; algorithm a { bit[8] x; x = 300; y = x + 4; z = y << 2; }",
            &[],
            &DataPlaneState::new(),
        );
    }

    #[test]
    fn predicates_compile_to_guards() {
        let src = "pipeline[P]{a}; algorithm a { if (c == 1) { x = 10; } else { x = 20; } }";
        for c in [0u64, 1, 5] {
            check(src, &[("c", c)], &DataPlaneState::new());
        }
        // The stream has guards and executes the right arm.
        let ir = program(src);
        let layout = ProgramLayout::new(&ir);
        let compiled = CompiledAlgorithm::compile_all(&ir.algorithms[0], &layout);
        assert!(
            compiled.ops.iter().any(|o| matches!(o, Op::Guard { .. })),
            "predicated code must compile to guard skips"
        );
    }

    #[test]
    fn tables_and_stickiness_match_interpreter() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[16] t;
                hit = key in t;
                if (hit) { out = t[key]; }
            }
        "#;
        let mut dp = DataPlaneState::new();
        dp.install("t", 42, 777);
        dp.install("t", 7, 111);
        for key in [42u64, 7, 9] {
            check(src, &[("key", key)], &dp);
        }
    }

    #[test]
    fn builtins_match_shared_dispatch() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                h = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
                h16 = crc16_hash(ipv4.srcAddr);
                lo = min(h, h16);
                q = get_queue_len();
            }
        "#;
        check(
            src,
            &[("ipv4.srcAddr", 0xdead), ("ipv4.dstAddr", 0xbeef)],
            &DataPlaneState::new(),
        );
    }

    #[test]
    fn globals_persist_in_persistent_mode() {
        let ir =
            program("pipeline[P]{a}; algorithm a { global bit[32][4] ctr; ctr[0] = ctr[0] + 1; }");
        let layout = ProgramLayout::new(&ir);
        let compiled = CompiledAlgorithm::compile_all(&ir.algorithms[0], &layout);
        let mut dp = DataPlaneState::new();
        dp.global("ctr", 4);
        let snap = TableSnapshot::build(&layout, &dp);
        let mut store = layout.globals_from(&dp);
        let mut m = Machine::new(&layout);
        for _ in 0..3 {
            m.reset();
            m.run(&compiled, &snap, &mut GlobalAccess::Persistent(&mut store));
        }
        assert_eq!(store[layout.global("ctr").unwrap() as usize][0], 3);
    }

    #[test]
    fn isolated_mode_is_per_packet() {
        let ir = program(
            "pipeline[P]{a}; algorithm a { global bit[32][4] ctr; ctr[0] = ctr[0] + 1; out = ctr[0]; }",
        );
        let layout = ProgramLayout::new(&ir);
        let compiled = CompiledAlgorithm::compile_all(&ir.algorithms[0], &layout);
        let mut dp = DataPlaneState::new();
        dp.global("ctr", 4);
        let snap = TableSnapshot::build(&layout, &dp);
        let mut m = Machine::new(&layout);
        let mut overlay = GlobalOverlay::new();
        for _ in 0..3 {
            m.reset();
            overlay.clear();
            m.run(
                &compiled,
                &snap,
                &mut GlobalAccess::Isolated {
                    baseline: &snap.globals,
                    overlay: &mut overlay,
                },
            );
            // Every packet sees the same baseline: read-after-write works
            // inside the packet, state does not leak across packets.
            assert_eq!(m.slot(layout.slot("out").unwrap()), 1);
        }
    }

    #[test]
    fn sized_global_indices_wrap() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                global bit[32][8] sketch;
                h = crc32_hash(key);
                sketch[h] = sketch[h] + 1;
                out = sketch[h];
            }
        "#;
        // The hash is ~32 bits; the array has 8 slots. Interpreter and
        // compiled engine must agree on the wrapped register.
        let mut dp = DataPlaneState::new();
        dp.global("sketch", 8);
        for key in [1u64, 0xffff_ffff, 0xdead_beef] {
            check(src, &[("key", key)], &dp);
        }
    }

    #[test]
    fn effects_record_in_order() {
        check(
            "pipeline[P]{a}; algorithm a { if (bad == 1) { drop(); } copy_to_cpu(); }",
            &[("bad", 1)],
            &DataPlaneState::new(),
        );
    }

    #[test]
    fn subset_streams_compose_like_split_execution() {
        // Compile two disjoint halves; running them in order must equal
        // the whole (the per-switch placement case).
        let src = "pipeline[P]{a}; algorithm a { x = f + 1; y = x * 2; z = y ^ x; w = z + y; }";
        let ir = program(src);
        let layout = ProgramLayout::new(&ir);
        let alg = &ir.algorithms[0];
        let ids: Vec<InstrId> = alg.instr_ids().collect();
        let (first, second) = ids.split_at(ids.len() / 2);
        let c1 = CompiledAlgorithm::compile(alg, first, &layout);
        let c2 = CompiledAlgorithm::compile(alg, second, &layout);
        let whole = CompiledAlgorithm::compile_all(alg, &layout);
        let dp = DataPlaneState::new();
        let snap = TableSnapshot::build(&layout, &dp);

        let run = |progs: &[&CompiledAlgorithm]| -> u64 {
            let mut m = Machine::new(&layout);
            m.set_slot(layout.slot("f").unwrap(), 41);
            let mut store = layout.globals_from(&dp);
            for p in progs {
                m.run(p, &snap, &mut GlobalAccess::Persistent(&mut store));
            }
            m.digest()
        };
        assert_eq!(run(&[&c1, &c2]), run(&[&whole]));
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let src = "pipeline[P]{a}; algorithm a { x = f + 1; if (x > 10) { drop(); } }";
        let ir = program(src);
        let layout = ProgramLayout::new(&ir);
        let compiled = CompiledAlgorithm::compile_all(&ir.algorithms[0], &layout);
        let dp = DataPlaneState::new();
        let snap = TableSnapshot::build(&layout, &dp);
        let run = |f: u64| -> u64 {
            let mut m = Machine::new(&layout);
            m.set_slot(layout.slot("f").unwrap(), f);
            let mut store = layout.globals_from(&dp);
            m.run(&compiled, &snap, &mut GlobalAccess::Persistent(&mut store));
            m.digest()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(30));
    }
}
