//! A reference interpreter for the context-aware IR.
//!
//! Executes a lowered algorithm (or any subset of its instructions, in
//! program order) against a packet state and a data-plane state. This is
//! the semantic ground truth used by differential tests: compiling a
//! one-big-pipeline program and splitting it across switches must not
//! change what happens to a packet, so the interpreter runs (a) the whole
//! algorithm and (b) each per-switch instruction subset along a flow path,
//! and the results must agree.
//!
//! Semantics:
//!
//! * values live in [`PacketState`] keyed by storage *base* name — all SSA
//!   versions of a base share storage, exactly as code generation maps
//!   them; unset names read as 0;
//! * a predicated instruction executes only when its predicate value is
//!   non-zero;
//! * results are truncated to the destination's inferred width;
//! * `TableMember` ORs its result into the destination and `TableLookup`
//!   writes only on hit — the *sticky* semantics that make a lookup
//!   replicated across a split table behave like one logical lookup;
//! * void builtins are recorded as [`Effect`]s rather than performed.

use std::collections::BTreeMap;

use crate::instr::*;
use crate::table::ExternTable;
use lyra_lang::{BinOp, UnOp};

/// Per-packet state: storage base name → value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketState {
    /// Field/metadata values.
    pub values: BTreeMap<String, u64>,
}

impl PacketState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set an initial field value (e.g. a header field).
    pub fn set(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Read a field (0 when unset).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }
}

/// Switch-resident state: extern table contents and global register arrays.
///
/// Extern tables use the paged, structurally-shared [`ExternTable`]
/// storage: clones are O(pages) pointer copies and diffing two states
/// that share structure is O(delta) — the properties the transactional
/// rollout engine's delta-based prepare relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataPlaneState {
    /// Extern tables: name → paged (key → value) map. Lists store value 1.
    pub externs: BTreeMap<String, ExternTable>,
    /// Globals: name → register array.
    pub globals: BTreeMap<String, Vec<u64>>,
}

impl DataPlaneState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a table entry.
    pub fn install(&mut self, table: &str, key: u64, value: u64) -> &mut Self {
        self.externs
            .entry(table.to_string())
            .or_default()
            .insert(key, value);
        self
    }

    /// Remove a table entry (no-op when absent).
    pub fn uninstall(&mut self, table: &str, key: u64) -> &mut Self {
        if let Some(t) = self.externs.get_mut(table) {
            t.remove(key);
        }
        self
    }

    /// Size a global register array.
    pub fn global(&mut self, name: &str, len: usize) -> &mut Self {
        self.globals.insert(name.to_string(), vec![0; len]);
        self
    }

    /// Total installed entries across all extern tables.
    pub fn total_entries(&self) -> usize {
        self.externs.values().map(|t| t.len()).sum()
    }
}

/// An externally visible action performed during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// A void builtin fired (`drop`, `copy_to_cpu`, `add_header`, …).
    Action {
        /// Builtin name.
        name: String,
        /// Evaluated arguments.
        args: Vec<u64>,
    },
}

/// Truncate `v` to `width` bits (width 0 = untouched).
pub(crate) fn mask(v: u64, width: u32) -> u64 {
    if width == 0 || width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// A deterministic stand-in for the chip's CRC units: any interpreter and
/// any generated program in this repository agree on it.
pub fn reference_hash(args: &[u64]) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for &a in args {
        acc ^= a;
        acc = acc.wrapping_mul(0xff51_afd7_ed55_8ccd);
        acc ^= acc >> 33;
    }
    acc
}

/// Value-producing builtin dispatch — the single point every interpreter in
/// the workspace (this reference interpreter, the emitted-artifact oracle
/// models, the compiled data-plane engine) routes through, so the hash
/// masking can never drift between them. P4₁₆ `lyra_`-prefixed shims
/// resolve to the underlying builtin name. Unknown names are environment
/// reads, deterministic per name.
pub fn builtin_call(name: &str, args: &[u64]) -> u64 {
    let name = name.strip_prefix("lyra_").unwrap_or(name);
    match name {
        "crc32_hash" | "identity_hash" => reference_hash(args) & 0xffff_ffff,
        "crc16_hash" => reference_hash(args) & 0xffff,
        "min" => args.iter().copied().min().unwrap_or(0),
        "max" => args.iter().copied().max().unwrap_or(0),
        other => reference_hash(&[other.len() as u64]) & 0xffff_ffff,
    }
}

/// Read a global register array at `i`. A sized array wraps the index —
/// hash-indexed sketches fold into the array exactly as the masked hash
/// does on hardware — while an unsized (never-declared) array reads 0.
pub fn global_read(arr: &[u64], i: u64) -> u64 {
    if arr.is_empty() {
        0
    } else {
        arr[(i % arr.len() as u64) as usize]
    }
}

/// Write a global register array at `i` with the same wrapping rule; an
/// unsized array grows to fit, preserving the legacy behavior of ad-hoc
/// states built without [`DataPlaneState::global`].
pub fn global_write(arr: &mut Vec<u64>, i: u64, v: u64) {
    if arr.is_empty() {
        arr.resize(i as usize + 1, 0);
        let last = arr.len() - 1;
        arr[last] = v;
    } else {
        let len = arr.len() as u64;
        arr[(i % len) as usize] = v;
    }
}

/// Execute `subset` (in the order given) of `alg` against the states.
/// Returns the effects fired.
pub fn execute(
    alg: &IrAlgorithm,
    subset: &[InstrId],
    pkt: &mut PacketState,
    dp: &mut DataPlaneState,
) -> Vec<Effect> {
    execute_ids(alg, subset.iter().copied(), pkt, dp)
}

/// Execute the whole algorithm (without materializing the id list).
pub fn execute_all(
    alg: &IrAlgorithm,
    pkt: &mut PacketState,
    dp: &mut DataPlaneState,
) -> Vec<Effect> {
    execute_ids(alg, alg.instr_ids(), pkt, dp)
}

/// The interpreter core. Operand storage is resolved *once per execution*:
/// every SSA value's base name maps to a dense register slot (all versions
/// of a base share one slot, exactly as code generation shares their
/// storage), the slots are loaded from the packet up front, and the
/// instruction loop runs on integer indices — no string-keyed map probe
/// per operand. Written bases are stored back at the end, so the packet
/// state observes exactly the keys the old per-operand path inserted.
fn execute_ids(
    alg: &IrAlgorithm,
    ids: impl Iterator<Item = InstrId>,
    pkt: &mut PacketState,
    dp: &mut DataPlaneState,
) -> Vec<Effect> {
    // Base name → slot; value id → slot.
    let mut index: BTreeMap<&str, u32> = BTreeMap::new();
    let mut bases: Vec<&str> = Vec::new();
    let mut slot_of: Vec<u32> = Vec::with_capacity(alg.values.len());
    for info in &alg.values {
        let next = bases.len() as u32;
        let slot = *index.entry(info.base.as_str()).or_insert_with(|| {
            bases.push(info.base.as_str());
            next
        });
        slot_of.push(slot);
    }
    let mut regs: Vec<u64> = bases.iter().map(|b| pkt.get(b)).collect();
    let mut written: Vec<bool> = vec![false; bases.len()];

    let mut effects = Vec::new();
    let mut argbuf: Vec<u64> = Vec::new();
    let read = |regs: &[u64], o: &Operand| -> u64 {
        match o {
            Operand::Const(c) => *c,
            Operand::Value(v) => regs[slot_of[v.index()] as usize],
        }
    };
    for id in ids {
        let instr = alg.instr(id);
        // Predicate gate.
        if let Some(p) = instr.pred {
            if regs[slot_of[p.index()] as usize] == 0 {
                continue;
            }
        }
        let dst = instr.dst.map(|d| {
            let info = alg.value(d);
            (slot_of[d.index()] as usize, info.width)
        });
        let write = |regs: &mut Vec<u64>, written: &mut Vec<bool>, v: u64| {
            if let Some((slot, width)) = dst {
                regs[slot] = mask(v, width);
                written[slot] = true;
            }
        };
        match &instr.op {
            IrOp::Assign(a) => {
                let v = read(&regs, a);
                write(&mut regs, &mut written, v);
            }
            IrOp::Binary { op, a, b } => {
                let (x, y) = (read(&regs, a), read(&regs, b));
                let v = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => x.checked_div(y).unwrap_or(0),
                    BinOp::Mod => x.checked_rem(y).unwrap_or(0),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.checked_shl(y as u32).unwrap_or(0),
                    BinOp::Shr => x.checked_shr(y as u32).unwrap_or(0),
                    BinOp::Eq => (x == y) as u64,
                    BinOp::Ne => (x != y) as u64,
                    BinOp::Lt => (x < y) as u64,
                    BinOp::Le => (x <= y) as u64,
                    BinOp::Gt => (x > y) as u64,
                    BinOp::Ge => (x >= y) as u64,
                    BinOp::LAnd => ((x != 0) && (y != 0)) as u64,
                    BinOp::LOr => ((x != 0) || (y != 0)) as u64,
                };
                write(&mut regs, &mut written, v);
            }
            IrOp::Unary { op, a } => {
                let x = read(&regs, a);
                let v = match op {
                    UnOp::Not => (x == 0) as u64,
                    UnOp::BitNot => !x,
                    UnOp::Neg => x.wrapping_neg(),
                };
                write(&mut regs, &mut written, v);
            }
            IrOp::Call { name, args } => {
                argbuf.clear();
                argbuf.extend(args.iter().map(|a| read(&regs, a)));
                let v = builtin_call(name, &argbuf);
                write(&mut regs, &mut written, v);
            }
            IrOp::Action { name, args } => {
                let vals: Vec<u64> = args.iter().map(|a| read(&regs, a)).collect();
                effects.push(Effect::Action {
                    name: name.clone(),
                    args: vals,
                });
            }
            IrOp::TableMember { table, key } => {
                let k = read(&regs, key);
                let hit = dp
                    .externs
                    .get(table)
                    .map(|t| t.contains_key(k))
                    .unwrap_or(false) as u64;
                // Sticky OR: a replicated lookup over a split table behaves
                // like one logical lookup.
                let prev = dst.map(|(slot, _)| regs[slot]).unwrap_or(0);
                write(&mut regs, &mut written, prev | hit);
            }
            IrOp::TableLookup { table, key } => {
                let k = read(&regs, key);
                if let Some(v) = dp.externs.get(table).and_then(|t| t.get(k)) {
                    write(&mut regs, &mut written, v);
                }
                // Miss: leave the destination unchanged (sticky).
            }
            IrOp::GlobalRead { global, index } => {
                let i = read(&regs, index);
                let v = dp
                    .globals
                    .get(global)
                    .map(|g| global_read(g, i))
                    .unwrap_or(0);
                write(&mut regs, &mut written, v);
            }
            IrOp::GlobalWrite {
                global,
                index,
                value,
            } => {
                let i = read(&regs, index);
                let v = read(&regs, value);
                let arr = dp.globals.entry(global.clone()).or_default();
                global_write(arr, i, v);
            }
            IrOp::Slice { a, hi, lo } => {
                let x = read(&regs, a);
                let width = hi - lo + 1;
                write(&mut regs, &mut written, mask(x >> lo, width.min(63)));
            }
        }
    }
    for (slot, base) in bases.iter().enumerate() {
        if written[slot] {
            pkt.values.insert((*base).to_string(), regs[slot]);
        }
    }
    effects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    fn alg(src: &str) -> IrAlgorithm {
        frontend(src).unwrap().algorithms.remove(0)
    }

    #[test]
    fn straight_line_arithmetic() {
        let a = alg("pipeline[P]{a}; algorithm a { x = 3; y = x + 4; z = y << 2; }");
        let mut pkt = PacketState::new();
        let mut dp = DataPlaneState::new();
        execute_all(&a, &mut pkt, &mut dp);
        assert_eq!(pkt.get("x"), 3);
        assert_eq!(pkt.get("y"), 7);
        assert_eq!(pkt.get("z"), 28);
    }

    #[test]
    fn branches_respect_predicates() {
        let a = alg("pipeline[P]{a}; algorithm a { if (c == 1) { x = 10; } else { x = 20; } }");
        let mut dp = DataPlaneState::new();
        let mut p1 = PacketState::new();
        p1.set("c", 1);
        execute_all(&a, &mut p1, &mut dp);
        assert_eq!(p1.get("x"), 10);
        let mut p2 = PacketState::new();
        p2.set("c", 5);
        execute_all(&a, &mut p2, &mut dp);
        assert_eq!(p2.get("x"), 20);
    }

    #[test]
    fn width_masking_applies() {
        let a = alg("pipeline[P]{a}; algorithm a { bit[8] x; x = 300; }");
        let mut pkt = PacketState::new();
        let mut dp = DataPlaneState::new();
        execute_all(&a, &mut pkt, &mut dp);
        assert_eq!(pkt.get("x"), 300 & 0xff);
    }

    #[test]
    fn table_hit_and_miss() {
        let a = alg(r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[16] t;
                if (key in t) {
                    out = t[key];
                }
            }
            "#);
        let mut dp = DataPlaneState::new();
        dp.install("t", 42, 777);
        let mut hitp = PacketState::new();
        hitp.set("key", 42);
        execute_all(&a, &mut hitp, &mut dp);
        assert_eq!(hitp.get("out"), 777);
        let mut missp = PacketState::new();
        missp.set("key", 1);
        execute_all(&a, &mut missp, &mut dp);
        assert_eq!(missp.get("out"), 0);
    }

    #[test]
    fn globals_persist_across_packets() {
        let a = alg("pipeline[P]{a}; algorithm a { global bit[32][4] ctr; ctr[0] = ctr[0] + 1; }");
        let mut dp = DataPlaneState::new();
        dp.global("ctr", 4);
        for _ in 0..3 {
            let mut pkt = PacketState::new();
            execute_all(&a, &mut pkt, &mut dp);
        }
        assert_eq!(dp.globals["ctr"][0], 3);
    }

    #[test]
    fn effects_recorded_not_performed() {
        let a = alg("pipeline[P]{a}; algorithm a { if (bad == 1) { drop(); } }");
        let mut dp = DataPlaneState::new();
        let mut pkt = PacketState::new();
        pkt.set("bad", 1);
        let fx = execute_all(&a, &mut pkt, &mut dp);
        assert_eq!(fx.len(), 1);
        assert!(matches!(&fx[0], Effect::Action { name, .. } if name == "drop"));
        let mut ok = PacketState::new();
        let fx2 = execute_all(&a, &mut ok, &mut dp);
        assert!(fx2.is_empty());
    }

    #[test]
    fn split_lookup_is_sticky() {
        // The same lookup executed on two "switches" with complementary
        // shards behaves like one lookup over the full table.
        let a = alg(r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[16] t;
                hit = key in t;
                if (hit) { out = t[key]; }
            }
            "#);
        let ids: Vec<InstrId> = a.instr_ids().collect();
        // Shard 1 has no entry for key 5; shard 2 does.
        let mut shard1 = DataPlaneState::new();
        shard1.install("t", 9, 111);
        let mut shard2 = DataPlaneState::new();
        shard2.install("t", 5, 222);
        let mut pkt = PacketState::new();
        pkt.set("key", 5);
        execute(&a, &ids, &mut pkt, &mut shard1);
        execute(&a, &ids, &mut pkt, &mut shard2);
        assert_eq!(pkt.get("hit"), 1);
        assert_eq!(pkt.get("out"), 222);
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(reference_hash(&[1, 2, 3]), reference_hash(&[1, 2, 3]));
        assert_ne!(reference_hash(&[1, 2, 3]), reference_hash(&[3, 2, 1]));
    }
}
