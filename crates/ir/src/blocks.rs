//! Predicate blocks (§5.2): groups of IR instructions that (1) carry the
//! same predicate and (2) have no dependencies among them. Predicate blocks
//! are the unit that conditional P4 synthesis turns into match-action
//! tables.
//!
//! Grouping is greedy in program order, which reproduces the paper's
//! Figure 8(c) example exactly: lines {3}, {4, 5}, {6} form three blocks.
//!
//! The module also classifies the three block relationships the paper
//! defines: *dependency*, *mutually exclusive* (different branches of the
//! same `if`/`else`), and *no correlation*.

use crate::deps::DepGraph;
use crate::instr::*;

/// A predicate block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredBlock {
    /// The common predicate of every member (None = unconditional).
    pub pred: Option<ValueId>,
    /// Member instructions, in program order.
    pub instrs: Vec<InstrId>,
}

/// Relationship between two predicate blocks (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRelation {
    /// One block's predicate is written inside the other; they become two
    /// chained tables.
    Dependency,
    /// The blocks sit in different branches of an if/else; they can fold
    /// into one table.
    MutuallyExclusive,
    /// Nothing relates them.
    NoCorrelation,
}

/// Compute predicate blocks over all instructions of `alg`.
pub fn predicate_blocks(alg: &IrAlgorithm, deps: &DepGraph) -> Vec<PredBlock> {
    let ids: Vec<InstrId> = alg.instr_ids().collect();
    predicate_blocks_of(alg, deps, &ids)
}

/// Compute predicate blocks over a subset of instructions (the per-switch
/// `R_s` of §5.2). The subset must be in program order.
pub fn predicate_blocks_of(
    alg: &IrAlgorithm,
    deps: &DepGraph,
    subset: &[InstrId],
) -> Vec<PredBlock> {
    let mut blocks: Vec<PredBlock> = Vec::new();
    for &id in subset {
        let instr = alg.instr(id);
        let fits = match blocks.last() {
            Some(b) => b.pred == instr.pred && !b.instrs.iter().any(|&m| deps.depends(id, m)),
            None => false,
        };
        if fits {
            blocks.last_mut().unwrap().instrs.push(id);
        } else {
            blocks.push(PredBlock {
                pred: instr.pred,
                instrs: vec![id],
            });
        }
    }
    blocks
}

/// Are two predicates mutually exclusive (one is the negation of the other,
/// possibly under a shared conjunction — `p ∧ c` vs `p ∧ ¬c`)?
pub fn preds_mutually_exclusive(alg: &IrAlgorithm, a: ValueId, b: ValueId) -> bool {
    if is_negation_of(alg, a, b) || is_negation_of(alg, b, a) {
        return true;
    }
    // p ∧ c vs p ∧ ¬c: both defined by LAnd with equal left legs and
    // mutually-exclusive right legs (recursively).
    if let (Some(da), Some(db)) = (alg.value(a).def, alg.value(b).def) {
        if let (
            IrOp::Binary {
                op: lyra_lang::BinOp::LAnd,
                a: la,
                b: ra,
            },
            IrOp::Binary {
                op: lyra_lang::BinOp::LAnd,
                a: lb,
                b: rb,
            },
        ) = (&alg.instr(da).op, &alg.instr(db).op)
        {
            if let (
                Operand::Value(la),
                Operand::Value(ra),
                Operand::Value(lb),
                Operand::Value(rb),
            ) = (la, ra, lb, rb)
            {
                if same_storage(alg, *la, *lb) {
                    return preds_mutually_exclusive(alg, *ra, *rb);
                }
            }
        }
    }
    false
}

fn is_negation_of(alg: &IrAlgorithm, a: ValueId, b: ValueId) -> bool {
    match alg.value(a).neg_of {
        Some(src) => same_storage(alg, src, b),
        None => false,
    }
}

/// Two values denote the same SSA value (same base and version).
fn same_storage(alg: &IrAlgorithm, a: ValueId, b: ValueId) -> bool {
    a == b || {
        let (va, vb) = (alg.value(a), alg.value(b));
        va.base == vb.base && va.version == vb.version
    }
}

/// Classify the relationship between two predicate blocks.
pub fn block_relation(
    alg: &IrAlgorithm,
    deps: &DepGraph,
    a: &PredBlock,
    b: &PredBlock,
) -> BlockRelation {
    // Dependency: some instruction of one block writes the other's
    // predicate, or any member-to-member dependency exists.
    let writes_pred = |blk: &PredBlock, pred: Option<ValueId>| -> bool {
        match pred {
            None => false,
            Some(p) => blk.instrs.iter().any(|&i| alg.instr(i).dst == Some(p)),
        }
    };
    if writes_pred(a, b.pred) || writes_pred(b, a.pred) {
        return BlockRelation::Dependency;
    }
    let dep_between = a.instrs.iter().any(|&x| {
        b.instrs
            .iter()
            .any(|&y| deps.depends_transitively(y, x) || deps.depends_transitively(x, y))
    });
    if dep_between {
        return BlockRelation::Dependency;
    }
    if let (Some(pa), Some(pb)) = (a.pred, b.pred) {
        if preds_mutually_exclusive(alg, pa, pb) {
            return BlockRelation::MutuallyExclusive;
        }
    }
    BlockRelation::NoCorrelation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::dependency_graph;
    use crate::frontend;

    #[test]
    fn figure8_blocks() {
        // The IR mirror of Figure 8(c). Blocks must be {v1}, {info1, v2},
        // {info2}: info1 depends on v1 so it starts a new block, v2 shares
        // the predicate and has no dependency on info1, info2 depends on
        // both.
        let ir = frontend(
            r#"
            pipeline[P]{a};
            algorithm a {
                if (int_enable) {
                    v1 = ig_ts - eg_ts;
                    info1 = v1 & 0x0fffffff;
                    v2 = sw_id << 28;
                    info2 = info1 & v2;
                }
            }
            "#,
        )
        .unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let blocks = predicate_blocks(alg, &deps);
        // All four predicated instructions, grouped 1-2-1.
        let sizes: Vec<usize> = blocks
            .iter()
            .filter(|b| b.pred.is_some())
            .map(|b| b.instrs.len())
            .collect();
        assert_eq!(
            sizes,
            vec![1, 2, 1],
            "blocks: {blocks:?}\n{}",
            alg.to_text()
        );
    }

    #[test]
    fn unconditional_instrs_group_together() {
        let ir = frontend("pipeline[P]{a}; algorithm a { x = 1; y = 2; z = 3; }").unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let blocks = predicate_blocks(alg, &deps);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].instrs.len(), 3);
        assert_eq!(blocks[0].pred, None);
    }

    #[test]
    fn if_else_blocks_are_mutually_exclusive() {
        let ir =
            frontend("pipeline[P]{a}; algorithm a { if (c) { x = 1; } else { x = 2; } }").unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let blocks = predicate_blocks(alg, &deps);
        let conditional: Vec<&PredBlock> = blocks.iter().filter(|b| b.pred.is_some()).collect();
        assert_eq!(conditional.len(), 2);
        assert_eq!(
            block_relation(alg, &deps, conditional[0], conditional[1]),
            BlockRelation::MutuallyExclusive
        );
    }

    #[test]
    fn nested_if_else_mutual_exclusion() {
        // p ∧ c vs p ∧ ¬c
        let ir = frontend(
            "pipeline[P]{a}; algorithm a { if (p) { if (c) { x = 1; } else { x = 2; } } }",
        )
        .unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let blocks = predicate_blocks(alg, &deps);
        let with_writes: Vec<&PredBlock> = blocks
            .iter()
            .filter(|b| {
                b.instrs.iter().any(|&i| {
                    alg.instr(i)
                        .dst
                        .map(|d| alg.value(d).base == "x")
                        .unwrap_or(false)
                })
            })
            .collect();
        assert_eq!(with_writes.len(), 2);
        assert_eq!(
            block_relation(alg, &deps, with_writes[0], with_writes[1]),
            BlockRelation::MutuallyExclusive
        );
    }

    #[test]
    fn dependent_blocks_classified() {
        let ir = frontend("pipeline[P]{a}; algorithm a { c = x == 1; if (c) { y = 2; } }").unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let blocks = predicate_blocks(alg, &deps);
        assert!(blocks.len() >= 2);
        assert_eq!(
            block_relation(alg, &deps, &blocks[0], &blocks[1]),
            BlockRelation::Dependency
        );
    }

    #[test]
    fn subset_blocks() {
        let ir = frontend("pipeline[P]{a}; algorithm a { x = 1; y = x + 1; z = 5; }").unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        // Subset skipping the middle instruction: x and z group together.
        let subset = vec![InstrId(0), InstrId(2)];
        let blocks = predicate_blocks_of(alg, &deps, &subset);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].instrs.len(), 2);
    }

    #[test]
    fn unrelated_conditional_blocks_no_correlation() {
        let ir = frontend("pipeline[P]{a}; algorithm a { if (c1) { x = 1; } if (c2) { y = 2; } }")
            .unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let blocks = predicate_blocks(alg, &deps);
        let conditional: Vec<&PredBlock> = blocks.iter().filter(|b| b.pred.is_some()).collect();
        assert_eq!(conditional.len(), 2);
        assert_eq!(
            block_relation(alg, &deps, conditional[0], conditional[1]),
            BlockRelation::NoCorrelation
        );
    }
}
