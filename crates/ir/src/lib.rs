#![warn(missing_docs)]
//! # lyra-ir — Lyra's context-aware intermediate representation
//!
//! Implements the compiler front-end of the Lyra paper (§4):
//!
//! 1. **Preprocessor** (§4.2, [`lower`] + [`ssa`] + [`types`]):
//!    * *function inlining* — every user-function call is replaced by its
//!      body with by-reference parameter substitution (Figure 8(a)→(b));
//!    * *branch removal* — `if`/`else` become predicates applied to each
//!      instruction in the condition body, leaving straight-line code
//!      (Figure 8(b)→(c));
//!    * *single-operator tuning* — expressions are flattened so each IR
//!      instruction has at most one operator;
//!    * *SSA conversion* — every versioned value is assigned once, leaving
//!      only read-after-write dependencies;
//!    * *variable type inference* — widths propagate from declarations,
//!      library-call signatures, and table column types.
//! 2. **Code analyzer** (§4.3, [`deps`] + [`blocks`]): the instruction
//!    dependency graph and the *predicate blocks* that later drive
//!    conditional P4 table synthesis (§5.2).
//!
//! The result, [`IrProgram`], is the paper's "context-aware IR".

pub mod blocks;
pub mod compiled;
pub mod deps;
pub mod instr;
pub mod interp;
pub mod lower;
pub mod ssa;
pub mod table;
pub mod types;
pub mod verify;

pub use blocks::{predicate_blocks, predicate_blocks_of, PredBlock};
pub use compiled::{
    CompiledAlgorithm, GlobalAccess, GlobalOverlay, Machine, ProgramLayout, TableSnapshot,
};
pub use deps::{dependency_graph, DepGraph};
pub use instr::*;
pub use interp::{
    builtin_call, execute, execute_all, global_read, global_write, reference_hash, DataPlaneState,
    Effect, PacketState,
};
pub use lower::{lower_program, LowerError, RawInstr, RawOp, RawOperand};
pub use ssa::to_ssa;
pub use table::{ExternTable, PAGE_CAP};
pub use types::infer_widths;
pub use verify::{debug_verify, verify_algorithm, verify_program, Stage};

use lyra_lang::{check_program, parse_program, CheckError, ParseError, Program};

/// Front-end driver error.
#[derive(Debug)]
pub enum FrontendError {
    /// Parsing failed.
    Parse(ParseError),
    /// Semantic check failed.
    Check(CheckError),
    /// Lowering failed.
    Lower(LowerError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Check(e) => write!(f, "{e}"),
            FrontendError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Parse(e) => Some(e),
            FrontendError::Check(e) => Some(e),
            FrontendError::Lower(e) => Some(e),
        }
    }
}

impl FrontendError {
    /// Flatten to structured diagnostics. Parse and check errors carry
    /// spans; lowering errors (`LYR0112`) are span-less because the IR has
    /// already left the source text behind.
    pub fn to_diagnostics(&self) -> Vec<lyra_diag::Diagnostic> {
        use lyra_diag::{codes, Diagnostic};
        match self {
            FrontendError::Parse(e) => vec![e.to_diagnostic()],
            FrontendError::Check(e) => e.errors.clone(),
            FrontendError::Lower(e) => {
                vec![Diagnostic::error(codes::LOWER, e.message.clone())]
            }
        }
    }
}

/// Run the complete front-end on Lyra source text: parse, check, lower,
/// SSA-convert, infer widths. This is the paper's Figure 3 front half.
pub fn frontend(src: &str) -> Result<IrProgram, FrontendError> {
    let prog = parse_program(src).map_err(FrontendError::Parse)?;
    frontend_ast(&prog)
}

/// [`frontend`] starting from an already-parsed program.
pub fn frontend_ast(prog: &Program) -> Result<IrProgram, FrontendError> {
    let info = check_program(prog).map_err(FrontendError::Check)?;
    let raw = lower_program(prog, &info).map_err(FrontendError::Lower)?;
    let mut ir = to_ssa(raw);
    infer_widths(&mut ir);
    // Pass-boundary invariant check (debug builds only): width inference
    // must leave the SSA structure intact and every width consistent.
    verify::debug_verify(&ir, verify::Stage::PostWidths);
    Ok(ir)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 8 program, end to end through the front-end.
    #[test]
    fn figure8_end_to_end() {
        let src = r#"
            pipeline[P]{int_in};
            algorithm int_in {
                if (int_enable) {
                    bit[32] int_info;
                    int_info_fn(int_info);
                }
            }
            func int_info_fn(bit[32] info) {
                info = 0;
                info = (ig_ts - eg_ts) & 0x0fffffff;
                info = info & (sw_id << 28);
            }
        "#;
        let ir = frontend(src).unwrap();
        let alg = &ir.algorithms[0];
        // Straight-line code: no instruction remains un-flattened and every
        // instruction inside the branch carries the predicate.
        assert!(alg.instrs.len() >= 5);
        let predicated = alg.instrs.iter().filter(|i| i.pred.is_some()).count();
        assert!(predicated >= 4, "body instructions must be predicated");
        // SSA: every value defined at most once.
        let mut defs = std::collections::HashSet::new();
        for (idx, i) in alg.instrs.iter().enumerate() {
            if let Some(d) = i.dst {
                assert!(defs.insert(d), "value defined twice at instr {idx}");
            }
        }
        // `info` must have at least 3 versions.
        let info_versions = alg
            .values
            .iter()
            .filter(|v| v.base.ends_with("info") && !v.base.contains('.'))
            .count();
        assert!(
            info_versions >= 3,
            "expected SSA versions of info, got {info_versions}"
        );
    }
}
