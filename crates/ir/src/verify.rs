//! IR invariant checker.
//!
//! Asserts the structural properties every front-end pass is supposed to
//! establish, so a broken pass fails loudly at its own boundary instead of
//! surfacing later as a codegen divergence:
//!
//! * **SSA single definition** — every value is defined by at most one
//!   instruction, and its `def` back-pointer names exactly that
//!   instruction;
//! * **def-before-use** — every operand and predicate read refers to a
//!   live-in value or to a value defined by an *earlier* instruction;
//! * **width consistency** — after inference, all SSA versions of a base
//!   agree on one width and no destination is left at width 0;
//! * **predication exclusivity** — every `neg_of` link points at a
//!   distinct, existing value (and, after inference, both sides are
//!   1-bit), so the mutually-exclusive predicate blocks of §5.2 are sound;
//! * **dependency acyclicity** — the instruction dependency graph only has
//!   edges from later instructions to earlier ones.
//!
//! Debug builds run the checker between front-end passes (`to_ssa` →
//! [`Stage::PostSsa`], `infer_widths` → [`Stage::PostWidths`]); violations
//! panic with an `LYR0604`-style message. Release builds skip it.

use std::collections::BTreeMap;

use crate::instr::*;

/// Which front-end pass boundary is being checked. Width rules only apply
/// once inference has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// After SSA conversion, before width inference.
    PostSsa,
    /// After width inference (the front-end's final state).
    PostWidths,
}

impl Stage {
    fn name(self) -> &'static str {
        match self {
            Stage::PostSsa => "post-ssa",
            Stage::PostWidths => "post-widths",
        }
    }
}

/// Check one algorithm. Returns every violation found (empty = sound).
pub fn verify_algorithm(alg: &IrAlgorithm, stage: Stage) -> Vec<String> {
    let mut errs = Vec::new();
    let ctx = |msg: String| format!("[{}] {}: {msg}", stage.name(), alg.name);

    // Map value -> defining instruction, from the instruction side.
    let mut def_of: BTreeMap<ValueId, InstrId> = BTreeMap::new();
    for id in alg.instr_ids() {
        if let Some(d) = alg.instr(id).dst {
            if d.index() >= alg.values.len() {
                errs.push(ctx(format!("instr {} defines unknown value {:?}", id.0, d)));
                continue;
            }
            if let Some(prev) = def_of.insert(d, id) {
                errs.push(ctx(format!(
                    "value {} defined twice (instrs {} and {})",
                    alg.value(d).name(),
                    prev.0,
                    id.0
                )));
            }
        }
    }
    // ... and agree with the value-side back-pointers.
    for (vi, info) in alg.values.iter().enumerate() {
        let v = ValueId(vi as u32);
        match (info.def, def_of.get(&v)) {
            (Some(d), Some(&actual)) if d != actual => errs.push(ctx(format!(
                "value {} says def={} but instr {} defines it",
                info.name(),
                d.0,
                actual.0
            ))),
            (Some(d), None) => {
                if d.index() >= alg.instrs.len() {
                    errs.push(ctx(format!(
                        "value {} names out-of-range def instr {}",
                        info.name(),
                        d.0
                    )));
                } else {
                    errs.push(ctx(format!(
                        "value {} names def instr {} which does not define it",
                        info.name(),
                        d.0
                    )));
                }
            }
            (None, Some(&actual)) => errs.push(ctx(format!(
                "live-in value {} is defined by instr {}",
                info.name(),
                actual.0
            ))),
            _ => {}
        }
    }

    // Def-before-use for operands and predicates.
    let check_use = |errs: &mut Vec<String>, at: InstrId, v: ValueId, what: &str| {
        if v.index() >= alg.values.len() {
            errs.push(ctx(format!("instr {} {what} unknown value {:?}", at.0, v)));
            return;
        }
        if let Some(d) = alg.value(v).def {
            if d.index() >= at.index() {
                errs.push(ctx(format!(
                    "instr {} {what} {} before its definition at instr {}",
                    at.0,
                    alg.value(v).name(),
                    d.0
                )));
            }
        }
    };
    for id in alg.instr_ids() {
        let instr = alg.instr(id);
        for o in instr.op.reads() {
            if let Operand::Value(v) = o {
                check_use(&mut errs, id, v, "reads");
            }
        }
        if let Some(p) = instr.pred {
            check_use(&mut errs, id, p, "is predicated on");
        }
    }

    // Predication exclusivity: neg_of links are well-formed.
    for (vi, info) in alg.values.iter().enumerate() {
        if let Some(n) = info.neg_of {
            if n.index() >= alg.values.len() {
                errs.push(ctx(format!(
                    "value {} negates unknown value {:?}",
                    info.name(),
                    n
                )));
                continue;
            }
            if n.index() == vi {
                errs.push(ctx(format!("value {} negates itself", info.name())));
            }
            if stage == Stage::PostWidths && info.width != 1 {
                errs.push(ctx(format!(
                    "negation value {} has width {} (want 1)",
                    info.name(),
                    info.width
                )));
            }
        }
    }

    // Width consistency after inference.
    if stage == Stage::PostWidths {
        let mut base_width: BTreeMap<&str, (u32, &ValueInfo)> = BTreeMap::new();
        for info in &alg.values {
            match base_width.get(info.base.as_str()) {
                None => {
                    base_width.insert(&info.base, (info.width, info));
                }
                Some(&(w, first)) if w != info.width => errs.push(ctx(format!(
                    "base `{}` has inconsistent widths: {} is {w}, {} is {}",
                    info.base,
                    first.name(),
                    info.name(),
                    info.width
                ))),
                _ => {}
            }
        }
        for id in alg.instr_ids() {
            if let Some(d) = alg.instr(id).dst {
                if alg.value(d).width == 0 {
                    errs.push(ctx(format!(
                        "instr {} destination {} left at width 0 after inference",
                        id.0,
                        alg.value(d).name()
                    )));
                }
            }
        }
    }

    // Dependency acyclicity: every dependency edge points strictly backwards
    // in program order (straight-line SSA code cannot legally depend
    // forward).
    let deps = crate::deps::dependency_graph(alg);
    for id in alg.instr_ids() {
        for &d in deps.pred_list(id) {
            if d.index() >= id.index() {
                errs.push(ctx(format!(
                    "instr {} depends on instr {} which is not earlier",
                    id.0, d.0
                )));
            }
        }
    }
    errs
}

/// Check every algorithm of a program.
pub fn verify_program(ir: &IrProgram, stage: Stage) -> Vec<String> {
    ir.algorithms
        .iter()
        .flat_map(|a| verify_algorithm(a, stage))
        .collect()
}

/// Debug-build assertion used at pass boundaries: panics with an
/// `LYR0604`-style message listing every violated invariant. A no-op in
/// release builds.
pub fn debug_verify(ir: &IrProgram, stage: Stage) {
    if cfg!(debug_assertions) {
        let errs = verify_program(ir, stage);
        assert!(
            errs.is_empty(),
            "[LYR0604] IR invariants violated at {}:\n  {}",
            stage.name(),
            errs.join("\n  ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    #[test]
    fn corpus_passes_both_stages() {
        for src in [
            "pipeline[P]{a}; algorithm a { x = 1; y = x + 2; }",
            "pipeline[P]{a}; algorithm a { if (c == 1) { x = 10; } else { x = 20; } }",
            r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[16] t;
                global bit[32][8] g;
                h = key in t;
                if (h) { out = t[key]; }
                g[0] = g[0] + 1;
            }
            "#,
        ] {
            let ir = frontend(src).unwrap();
            assert!(verify_program(&ir, Stage::PostSsa).is_empty(), "{src}");
            assert!(verify_program(&ir, Stage::PostWidths).is_empty(), "{src}");
        }
    }

    #[test]
    fn double_definition_detected() {
        let mut ir = frontend("pipeline[P]{a}; algorithm a { x = 1; y = 2; }").unwrap();
        let alg = &mut ir.algorithms[0];
        let d0 = alg.instrs[0].dst.unwrap();
        alg.instrs[1].dst = Some(d0);
        let errs = verify_program(&ir, Stage::PostSsa);
        assert!(errs.iter().any(|e| e.contains("defined twice")), "{errs:?}");
    }

    #[test]
    fn use_before_def_detected() {
        let mut ir = frontend("pipeline[P]{a}; algorithm a { x = 1; y = x; }").unwrap();
        let alg = &mut ir.algorithms[0];
        // Swap the two instructions so `y = x` reads x before `x = 1`.
        alg.instrs.swap(0, 1);
        // Fix up def back-pointers to the swapped positions so only the
        // ordering violation remains.
        for (i, instr) in alg.instrs.iter().enumerate() {
            if let Some(d) = instr.dst {
                alg.values[d.index()].def = Some(InstrId(i as u32));
            }
        }
        let errs = verify_program(&ir, Stage::PostSsa);
        assert!(
            errs.iter().any(|e| e.contains("before its definition")),
            "{errs:?}"
        );
    }

    #[test]
    fn width_mismatch_detected() {
        let mut ir =
            frontend("pipeline[P]{a}; algorithm a { bit[8] x; x = 1; x = x + 1; }").unwrap();
        let alg = &mut ir.algorithms[0];
        let vi = alg.values.iter().position(|v| v.base == "x").unwrap();
        alg.values[vi].width = 16; // disagree with the other version of x
        let errs = verify_program(&ir, Stage::PostWidths);
        assert!(
            errs.iter().any(|e| e.contains("inconsistent widths")),
            "{errs:?}"
        );
    }

    #[test]
    fn self_negation_detected() {
        let mut ir =
            frontend("pipeline[P]{a}; algorithm a { if (c) { x = 1; } else { x = 2; } }").unwrap();
        let alg = &mut ir.algorithms[0];
        let vi = alg.values.iter().position(|v| v.neg_of.is_some()).unwrap();
        alg.values[vi].neg_of = Some(ValueId(vi as u32));
        let errs = verify_program(&ir, Stage::PostSsa);
        assert!(
            errs.iter().any(|e| e.contains("negates itself")),
            "{errs:?}"
        );
    }
}
