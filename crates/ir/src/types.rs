//! Variable width inference (§4.2 step 5). Widths propagate to fixpoint from
//! three sources, matching the paper's rules:
//!
//! 1. **function calls** — library calls have known result widths
//!    (`crc32_hash` → 32);
//! 2. **operations** — comparisons and logic yield 1-bit values; arithmetic
//!    yields the wider of its operands; slices yield `hi - lo + 1`;
//! 3. **variable lookups** — extern table columns and global arrays have
//!    explicitly declared widths.
//!
//! Values still unknown at fixpoint (implicit metadata with no constraining
//! use) default to 32 bits, the paper's examples' common width.

use crate::instr::*;
use lyra_lang::check::builtins;
use lyra_lang::BinOp;

/// Fallback width for unconstrained implicit metadata.
pub const DEFAULT_METADATA_WIDTH: u32 = 32;

/// Infer widths for every value in every algorithm of `ir`, in place.
pub fn infer_widths(ir: &mut IrProgram) {
    let externs = ir.externs.clone();
    let globals = ir.globals.clone();
    let headers = ir.headers.clone();
    let packets = ir.packets.clone();
    for alg in &mut ir.algorithms {
        // Seed: header fields and packet metadata.
        for v in &mut alg.values {
            if v.width != 0 {
                continue;
            }
            if let Some((inst, field)) = v.base.split_once('.') {
                if let Some(w) = header_field_width(&headers, inst, field) {
                    v.width = w;
                    continue;
                }
                for p in &packets {
                    if p.name == inst {
                        if let Some(f) = p.fields.iter().find(|f| f.name == field) {
                            v.width = f.ty.width;
                        }
                    }
                }
            } else {
                for p in &packets {
                    if let Some(f) = p.fields.iter().find(|f| f.name == v.base) {
                        v.width = f.ty.width;
                    }
                }
            }
        }
        // Fixpoint propagation.
        loop {
            let mut changed = false;
            for idx in 0..alg.instrs.len() {
                let instr = alg.instrs[idx].clone();
                let Some(dst) = instr.dst else { continue };
                if alg.values[dst.index()].width != 0 {
                    continue;
                }
                let w = infer_one(alg, &instr.op, &externs, &globals);
                if let Some(w) = w {
                    // All versions of the same base share storage; give them
                    // all the same width.
                    let base = alg.values[dst.index()].base.clone();
                    for v in &mut alg.values {
                        if v.base == base && v.width == 0 {
                            v.width = w;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Defaults for anything left.
        for v in &mut alg.values {
            if v.width == 0 {
                v.width = DEFAULT_METADATA_WIDTH;
            }
        }
    }
}

fn header_field_width(
    headers: &[lyra_lang::HeaderType],
    instance: &str,
    field: &str,
) -> Option<u32> {
    for h in headers {
        let matches = h.name == instance
            || h.name
                .strip_suffix("_t")
                .map(|s| s == instance)
                .unwrap_or(false);
        if matches {
            if let Some(f) = h.fields.iter().find(|f| f.name == field) {
                return Some(f.ty.width);
            }
        }
    }
    None
}

fn operand_width(alg: &IrAlgorithm, o: &Operand) -> Option<u32> {
    match o {
        Operand::Const(_) => None, // constants adapt to context
        Operand::Value(v) => {
            let w = alg.value(*v).width;
            if w == 0 {
                None
            } else {
                Some(w)
            }
        }
    }
}

fn infer_one(
    alg: &IrAlgorithm,
    op: &IrOp,
    externs: &std::collections::BTreeMap<String, lyra_lang::ExternVar>,
    globals: &std::collections::BTreeMap<String, (u32, u64)>,
) -> Option<u32> {
    match op {
        IrOp::Assign(a) => operand_width(alg, a),
        IrOp::Binary { op, a, b } => {
            if op.is_comparison() || op.is_logical() {
                Some(1)
            } else if matches!(op, BinOp::Shl | BinOp::Shr) {
                // Shifting preserves the left operand's width.
                operand_width(alg, a)
            } else {
                match (operand_width(alg, a), operand_width(alg, b)) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (None, None) => None,
                }
            }
        }
        IrOp::Unary { op, a } => match op {
            lyra_lang::UnOp::Not => Some(1),
            _ => operand_width(alg, a),
        },
        IrOp::Call { name, .. } => builtins().get(name.as_str()).and_then(|s| s.result_width),
        IrOp::Action { .. } | IrOp::GlobalWrite { .. } => None,
        IrOp::TableLookup { table, .. } => externs.get(table).map(|t| t.value_width()),
        IrOp::TableMember { .. } => Some(1),
        IrOp::GlobalRead { global, .. } => globals.get(global).map(|g| g.0),
        IrOp::Slice { hi, lo, .. } => Some(hi - lo + 1),
    }
}

#[cfg(test)]
mod tests {
    use crate::frontend;

    fn width_of(ir: &crate::IrProgram, alg: usize, base: &str) -> u32 {
        ir.algorithms[alg]
            .values
            .iter()
            .find(|v| v.base == base)
            .unwrap_or_else(|| panic!("no value {base}"))
            .width
    }

    #[test]
    fn builtin_result_width() {
        let ir = frontend("pipeline[P]{a}; algorithm a { h = crc32_hash(x); }").unwrap();
        assert_eq!(width_of(&ir, 0, "h"), 32);
    }

    #[test]
    fn comparison_is_one_bit() {
        let ir = frontend("pipeline[P]{a}; algorithm a { c = x == y; }").unwrap();
        assert_eq!(width_of(&ir, 0, "c"), 1);
    }

    #[test]
    fn table_lookup_width_from_value_column() {
        let ir = frontend(
            r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[8] grp>[64] vip;
                g = vip[k];
            }
            "#,
        )
        .unwrap();
        assert_eq!(width_of(&ir, 0, "g"), 8);
    }

    #[test]
    fn membership_is_one_bit() {
        let ir = frontend(
            r#"
            pipeline[P]{a};
            algorithm a {
                extern list<bit[32] ip>[64] known;
                m = k in known;
            }
            "#,
        )
        .unwrap();
        assert_eq!(width_of(&ir, 0, "m"), 1);
    }

    #[test]
    fn header_field_width_flows() {
        let ir = frontend(
            r#"
            header_type ipv4_t { fields { bit[32] src_ip; } }
            pipeline[P]{a};
            algorithm a { x = ipv4.src_ip; }
            "#,
        )
        .unwrap();
        assert_eq!(width_of(&ir, 0, "x"), 32);
        assert_eq!(width_of(&ir, 0, "ipv4.src_ip"), 32);
    }

    #[test]
    fn figure8_v1_inferred_32() {
        // "the v1 is inferred as a 32-bit variable as the ig_ts and eg_ts
        // are 32 bits" — here via the 32-bit metadata default on ig_ts.
        let ir = frontend(
            "pipeline[P]{a}; algorithm a { bit[32] ig_ts; bit[32] eg_ts; ig_ts = get_ingress_timestamp(); eg_ts = get_egress_timestamp(); v1 = ig_ts - eg_ts; }",
        )
        .unwrap();
        assert_eq!(width_of(&ir, 0, "v1"), 32);
    }

    #[test]
    fn slice_width() {
        let ir = frontend("pipeline[P]{a}; algorithm a { x = smac[47:32]; }").unwrap();
        assert_eq!(width_of(&ir, 0, "x"), 16);
    }

    #[test]
    fn global_read_width() {
        let ir =
            frontend("pipeline[P]{a}; algorithm a { global bit[16][64] g; x = g[i]; }").unwrap();
        assert_eq!(width_of(&ir, 0, "x"), 16);
    }

    #[test]
    fn unknown_defaults_to_32() {
        let ir = frontend("pipeline[P]{a}; algorithm a { x = y; }").unwrap();
        assert_eq!(width_of(&ir, 0, "x"), 32);
        assert_eq!(width_of(&ir, 0, "y"), 32);
    }
}
