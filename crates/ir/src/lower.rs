//! Lowering (§4.2 steps 1–3): function inlining, branch removal, and
//! single-operator flattening. Produces *raw* (name-based, pre-SSA)
//! straight-line predicated instructions — the shape of Figure 8(b) after
//! predication.

use std::collections::BTreeMap;

use lyra_lang::check::{builtins, CheckInfo};
use lyra_lang::{BinOp, Expr, LValue, Program, Stmt, UnOp};

/// Errors during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

/// A pre-SSA operand: constant or named storage location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawOperand {
    /// Immediate.
    Const(u64),
    /// Named location (`int_info`, `ipv4.src_ip`, `%t3`).
    Name(String),
}

/// Pre-SSA operations (single operator each).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawOp {
    /// Copy.
    Assign(RawOperand),
    /// Binary op.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left.
        a: RawOperand,
        /// Right.
        b: RawOperand,
    },
    /// Unary op.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: RawOperand,
    },
    /// Value-producing builtin call.
    Call {
        /// Name.
        name: String,
        /// Arguments.
        args: Vec<RawOperand>,
    },
    /// Void builtin call.
    Action {
        /// Name.
        name: String,
        /// Arguments.
        args: Vec<RawOperand>,
    },
    /// Dict value read.
    TableLookup {
        /// Table.
        table: String,
        /// Key.
        key: RawOperand,
    },
    /// Membership test.
    TableMember {
        /// Table.
        table: String,
        /// Key.
        key: RawOperand,
    },
    /// Register array read.
    GlobalRead {
        /// Global name.
        global: String,
        /// Index.
        index: RawOperand,
    },
    /// Register array write.
    GlobalWrite {
        /// Global name.
        global: String,
        /// Index.
        index: RawOperand,
        /// Value.
        value: RawOperand,
    },
    /// Bit slice.
    Slice {
        /// Operand.
        a: RawOperand,
        /// High bit.
        hi: u32,
        /// Low bit.
        lo: u32,
    },
}

/// A raw instruction: predicate name, op, destination name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInstr {
    /// Guarding predicate (a 1-bit location), if inside a branch.
    pub pred: Option<String>,
    /// Operation.
    pub op: RawOp,
    /// Destination, if value-producing.
    pub dst: Option<String>,
}

/// A lowered (straight-line, predicated, name-based) algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct RawAlgorithm {
    /// Algorithm name.
    pub name: String,
    /// Instructions in program order.
    pub instrs: Vec<RawInstr>,
    /// Declared widths of named locals (base name → width).
    pub declared: BTreeMap<String, u32>,
}

/// The lowered program: raw algorithms plus program-level tables and headers.
#[derive(Debug, Clone, PartialEq)]
pub struct RawProgram {
    /// Lowered algorithms.
    pub algorithms: Vec<RawAlgorithm>,
    /// Pipelines, copied through.
    pub pipelines: Vec<lyra_lang::Pipeline>,
    /// Extern tables.
    pub externs: BTreeMap<String, lyra_lang::ExternVar>,
    /// Globals: name → (width, length).
    pub globals: BTreeMap<String, (u32, u64)>,
    /// Headers, copied through.
    pub headers: Vec<lyra_lang::HeaderType>,
    /// Packet declarations, copied through.
    pub packets: Vec<lyra_lang::PacketDecl>,
    /// Parser nodes, copied through.
    pub parser_nodes: Vec<lyra_lang::ParserNode>,
}

/// Maximum inlining depth before we assume recursion.
const MAX_INLINE_DEPTH: usize = 64;

/// Lower a checked program (§4.2 steps 1–3).
pub fn lower_program(prog: &Program, info: &CheckInfo) -> Result<RawProgram, LowerError> {
    let mut algorithms = Vec::new();
    for a in &prog.algorithms {
        let mut cx = Lowerer {
            prog,
            info,
            instrs: Vec::new(),
            declared: BTreeMap::new(),
            tmp: 0,
            inline_depth: 0,
            inline_sites: 0,
        };
        cx.body(&a.body, &None, &BTreeMap::new())?;
        algorithms.push(RawAlgorithm {
            name: a.name.clone(),
            instrs: cx.instrs,
            declared: cx.declared,
        });
    }
    // Pass-boundary sanity check (debug builds only): lowering synthesizes
    // `%t` temporaries in evaluation order, so every temp (operand or
    // predicate) must be written before it is read.
    if cfg!(debug_assertions) {
        for a in &algorithms {
            debug_check_raw(a);
        }
    }
    Ok(RawProgram {
        algorithms,
        pipelines: prog.pipelines.clone(),
        externs: info
            .externs
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        globals: info.globals.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        headers: prog.headers.clone(),
        packets: prog.packets.clone(),
        parser_nodes: prog.parser_nodes.clone(),
    })
}

/// Debug-build sanity check for one lowered algorithm: `%t` temporaries
/// are single-assignment by construction and must be defined before any
/// read (operand or predicate position).
fn debug_check_raw(alg: &RawAlgorithm) {
    use std::collections::BTreeSet;
    let mut written: BTreeSet<&str> = BTreeSet::new();
    let read_ok =
        |written: &BTreeSet<&str>, name: &str| !name.starts_with('%') || written.contains(name);
    for (idx, instr) in alg.instrs.iter().enumerate() {
        if let Some(p) = &instr.pred {
            assert!(
                read_ok(&written, p),
                "[LYR0604] {}: instr {idx} predicated on unwritten temp {p}",
                alg.name
            );
        }
        let reads: Vec<&RawOperand> = match &instr.op {
            RawOp::Assign(a) | RawOp::Unary { a, .. } | RawOp::Slice { a, .. } => vec![a],
            RawOp::Binary { a, b, .. } => vec![a, b],
            RawOp::Call { args, .. } | RawOp::Action { args, .. } => args.iter().collect(),
            RawOp::TableLookup { key, .. } | RawOp::TableMember { key, .. } => vec![key],
            RawOp::GlobalRead { index, .. } => vec![index],
            RawOp::GlobalWrite { index, value, .. } => vec![index, value],
        };
        for r in reads {
            if let RawOperand::Name(n) = r {
                assert!(
                    read_ok(&written, n),
                    "[LYR0604] {}: instr {idx} reads unwritten temp {n}",
                    alg.name
                );
            }
        }
        if let Some(d) = &instr.dst {
            written.insert(d);
        }
    }
}

struct Lowerer<'p> {
    prog: &'p Program,
    info: &'p CheckInfo,
    instrs: Vec<RawInstr>,
    declared: BTreeMap<String, u32>,
    tmp: u32,
    inline_depth: usize,
    inline_sites: u32,
}

impl<'p> Lowerer<'p> {
    fn fresh(&mut self) -> String {
        self.tmp += 1;
        format!("%t{}", self.tmp)
    }

    fn emit(&mut self, pred: &Option<String>, op: RawOp, dst: Option<String>) {
        self.instrs.push(RawInstr {
            pred: pred.clone(),
            op,
            dst,
        });
    }

    /// Rename a (possibly dotted) path through the inline substitution map.
    fn rename(&self, path: &[String], subst: &BTreeMap<String, String>) -> String {
        if path.len() == 1 {
            if let Some(r) = subst.get(&path[0]) {
                return r.clone();
            }
        }
        path.join(".")
    }

    fn body(
        &mut self,
        stmts: &[Stmt],
        pred: &Option<String>,
        subst: &BTreeMap<String, String>,
    ) -> Result<(), LowerError> {
        for s in stmts {
            self.stmt(s, pred, subst)?;
        }
        Ok(())
    }

    fn stmt(
        &mut self,
        s: &Stmt,
        pred: &Option<String>,
        subst: &BTreeMap<String, String>,
    ) -> Result<(), LowerError> {
        match s {
            Stmt::VarDecl { ty, name, init, .. } => {
                let name = self.rename(std::slice::from_ref(name), subst);
                self.declared.insert(name.clone(), ty.width);
                if let Some(e) = init {
                    self.assign_expr(name, e, pred, subst)?;
                }
                Ok(())
            }
            // Program-level tables were collected by the checker.
            Stmt::GlobalDecl { .. } | Stmt::ExternDecl { .. } => Ok(()),
            Stmt::Assign { lhs, rhs, .. } => match lhs {
                LValue::Path(p) => {
                    let dst = self.rename(p, subst);
                    self.assign_expr(dst, rhs, pred, subst)?;
                    Ok(())
                }
                LValue::Index { base, index } => {
                    let v = self.expr(rhs, pred, subst)?;
                    let idx = self.expr(index, pred, subst)?;
                    if self.info.globals.contains_key(base) {
                        self.emit(
                            pred,
                            RawOp::GlobalWrite {
                                global: base.clone(),
                                index: idx,
                                value: v,
                            },
                            None,
                        );
                        Ok(())
                    } else if self.info.externs.contains_key(base) {
                        Err(LowerError {
                            message: format!(
                                "extern table `{base}` is control-plane managed; the data \
                                     plane cannot write it (§5.8)"
                            ),
                        })
                    } else {
                        Err(LowerError {
                            message: format!("unknown indexed target `{base}`"),
                        })
                    }
                }
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.expr(cond, pred, subst)?;
                // Materialize the condition as a named 1-bit value.
                let cname = match c {
                    RawOperand::Name(n) => n,
                    RawOperand::Const(_) => {
                        let t = self.fresh();
                        self.emit(pred, RawOp::Assign(c), Some(t.clone()));
                        t
                    }
                };
                // Combine with the enclosing predicate.
                let then_pred = match pred {
                    None => cname.clone(),
                    Some(p) => {
                        let t = self.fresh();
                        self.emit(
                            &None,
                            RawOp::Binary {
                                op: BinOp::LAnd,
                                a: RawOperand::Name(p.clone()),
                                b: RawOperand::Name(cname.clone()),
                            },
                            Some(t.clone()),
                        );
                        t
                    }
                };
                self.body(then_body, &Some(then_pred), subst)?;
                if let Some(eb) = else_body {
                    let neg = self.fresh();
                    self.emit(
                        &None,
                        RawOp::Unary {
                            op: UnOp::Not,
                            a: RawOperand::Name(cname),
                        },
                        Some(neg.clone()),
                    );
                    let else_pred = match pred {
                        None => neg,
                        Some(p) => {
                            let t = self.fresh();
                            self.emit(
                                &None,
                                RawOp::Binary {
                                    op: BinOp::LAnd,
                                    a: RawOperand::Name(p.clone()),
                                    b: RawOperand::Name(neg),
                                },
                                Some(t.clone()),
                            );
                            t
                        }
                    };
                    self.body(eb, &Some(else_pred), subst)?;
                }
                Ok(())
            }
            Stmt::Call { name, args, .. } => {
                if builtins().contains_key(name.as_str()) {
                    let mut ops = Vec::new();
                    for a in args {
                        ops.push(self.expr(a, pred, subst)?);
                    }
                    self.emit(
                        pred,
                        RawOp::Action {
                            name: name.clone(),
                            args: ops,
                        },
                        None,
                    );
                    return Ok(());
                }
                self.inline_call(name, args, pred, subst)
            }
        }
    }

    /// Lower `dst = e`, fusing a top-level single operation directly into
    /// the destination (Figure 8(c)'s shape) instead of emitting an extra
    /// copy through a temporary.
    fn assign_expr(
        &mut self,
        dst: String,
        e: &Expr,
        pred: &Option<String>,
        subst: &BTreeMap<String, String>,
    ) -> Result<(), LowerError> {
        match e {
            Expr::Bin { op, lhs, rhs } => {
                let a = self.expr(lhs, pred, subst)?;
                let b = self.expr(rhs, pred, subst)?;
                self.emit(pred, RawOp::Binary { op: *op, a, b }, Some(dst));
            }
            Expr::Un { op, expr } => {
                let a = self.expr(expr, pred, subst)?;
                self.emit(pred, RawOp::Unary { op: *op, a }, Some(dst));
            }
            Expr::Call { name, args } => {
                let sig = builtins().get(name.as_str()).ok_or_else(|| LowerError {
                    message: format!(
                        "user function `{name}` cannot be used as a value; only predefined \
                         library calls return values"
                    ),
                })?;
                if sig.result_width.is_none() {
                    return Err(LowerError {
                        message: format!("builtin `{name}` returns no value"),
                    });
                }
                let mut ops = Vec::new();
                for a in args {
                    ops.push(self.expr(a, pred, subst)?);
                }
                self.emit(
                    pred,
                    RawOp::Call {
                        name: name.clone(),
                        args: ops,
                    },
                    Some(dst),
                );
            }
            Expr::InTable { key, table } => {
                let k = self.expr(key, pred, subst)?;
                self.emit(
                    pred,
                    RawOp::TableMember {
                        table: table.clone(),
                        key: k,
                    },
                    Some(dst),
                );
            }
            Expr::Index { base, index } => {
                let idx = self.expr(index, pred, subst)?;
                if self.info.externs.contains_key(base) {
                    self.emit(
                        pred,
                        RawOp::TableLookup {
                            table: base.clone(),
                            key: idx,
                        },
                        Some(dst),
                    );
                } else if self.info.globals.contains_key(base) {
                    self.emit(
                        pred,
                        RawOp::GlobalRead {
                            global: base.clone(),
                            index: idx,
                        },
                        Some(dst),
                    );
                } else {
                    return Err(LowerError {
                        message: format!("indexing unknown table/global `{base}`"),
                    });
                }
            }
            Expr::Slice { base, hi, lo } => {
                let a = RawOperand::Name(self.rename(base, subst));
                self.emit(
                    pred,
                    RawOp::Slice {
                        a,
                        hi: *hi,
                        lo: *lo,
                    },
                    Some(dst),
                );
            }
            Expr::Num(_) | Expr::Path(_) => {
                let v = self.expr(e, pred, subst)?;
                self.emit(pred, RawOp::Assign(v), Some(dst));
            }
        }
        Ok(())
    }

    /// Function inlining (§4.2 step 1). Parameters are by-reference: a bare
    /// name argument aliases the caller's variable; any other expression is
    /// evaluated into a fresh temporary first.
    fn inline_call(
        &mut self,
        name: &str,
        args: &[Expr],
        pred: &Option<String>,
        subst: &BTreeMap<String, String>,
    ) -> Result<(), LowerError> {
        let f = self.prog.function(name).ok_or_else(|| LowerError {
            message: format!("unknown function `{name}`"),
        })?;
        if self.inline_depth >= MAX_INLINE_DEPTH {
            return Err(LowerError {
                message: format!("inlining depth exceeded at `{name}` — recursive functions are not supported on switching ASICs"),
            });
        }
        if f.params.len() != args.len() {
            return Err(LowerError {
                message: format!("arity mismatch calling `{name}`"),
            });
        }
        let mut inner: BTreeMap<String, String> = BTreeMap::new();
        for (p, a) in f.params.iter().zip(args) {
            match a {
                Expr::Path(path) if path.len() == 1 => {
                    let target = self.rename(path, subst);
                    self.declared.entry(target.clone()).or_insert(p.ty.width);
                    inner.insert(p.name.clone(), target);
                }
                other => {
                    let v = self.expr(other, pred, subst)?;
                    let t = self.fresh();
                    self.declared.insert(t.clone(), p.ty.width);
                    self.emit(pred, RawOp::Assign(v), Some(t.clone()));
                    inner.insert(p.name.clone(), t);
                }
            }
        }
        // Rename function locals to unique names so repeated inlining of the
        // same function cannot collide.
        self.inline_depth += 1;
        self.inline_sites += 1;
        let marker = self.inline_sites;
        let locals = collect_locals(&f.body);
        for l in &locals {
            if !inner.contains_key(l) {
                inner.insert(l.clone(), format!("{name}${marker}${l}"));
            }
        }
        let result = self.body(&f.body, pred, &inner);
        self.inline_depth -= 1;
        result
    }

    fn expr(
        &mut self,
        e: &Expr,
        pred: &Option<String>,
        subst: &BTreeMap<String, String>,
    ) -> Result<RawOperand, LowerError> {
        match e {
            Expr::Num(n) => Ok(RawOperand::Const(*n)),
            Expr::Path(p) => Ok(RawOperand::Name(self.rename(p, subst))),
            Expr::Bin { op, lhs, rhs } => {
                let a = self.expr(lhs, pred, subst)?;
                let b = self.expr(rhs, pred, subst)?;
                let t = self.fresh();
                self.emit(pred, RawOp::Binary { op: *op, a, b }, Some(t.clone()));
                Ok(RawOperand::Name(t))
            }
            Expr::Un { op, expr } => {
                let a = self.expr(expr, pred, subst)?;
                let t = self.fresh();
                self.emit(pred, RawOp::Unary { op: *op, a }, Some(t.clone()));
                Ok(RawOperand::Name(t))
            }
            Expr::Call { name, args } => {
                let sig = builtins().get(name.as_str()).ok_or_else(|| LowerError {
                    message: format!(
                        "user function `{name}` cannot be used as a value; only predefined \
                         library calls return values"
                    ),
                })?;
                if sig.result_width.is_none() {
                    return Err(LowerError {
                        message: format!("builtin `{name}` returns no value"),
                    });
                }
                let mut ops = Vec::new();
                for a in args {
                    ops.push(self.expr(a, pred, subst)?);
                }
                let t = self.fresh();
                self.emit(
                    pred,
                    RawOp::Call {
                        name: name.clone(),
                        args: ops,
                    },
                    Some(t.clone()),
                );
                Ok(RawOperand::Name(t))
            }
            Expr::InTable { key, table } => {
                let k = self.expr(key, pred, subst)?;
                let t = self.fresh();
                self.emit(
                    pred,
                    RawOp::TableMember {
                        table: table.clone(),
                        key: k,
                    },
                    Some(t.clone()),
                );
                Ok(RawOperand::Name(t))
            }
            Expr::Index { base, index } => {
                let idx = self.expr(index, pred, subst)?;
                let t = self.fresh();
                if self.info.externs.contains_key(base) {
                    self.emit(
                        pred,
                        RawOp::TableLookup {
                            table: base.clone(),
                            key: idx,
                        },
                        Some(t.clone()),
                    );
                } else if self.info.globals.contains_key(base) {
                    self.emit(
                        pred,
                        RawOp::GlobalRead {
                            global: base.clone(),
                            index: idx,
                        },
                        Some(t.clone()),
                    );
                } else {
                    return Err(LowerError {
                        message: format!("indexing unknown table/global `{base}`"),
                    });
                }
                Ok(RawOperand::Name(t))
            }
            Expr::Slice { base, hi, lo } => {
                let a = RawOperand::Name(self.rename(base, subst));
                let t = self.fresh();
                self.emit(
                    pred,
                    RawOp::Slice {
                        a,
                        hi: *hi,
                        lo: *lo,
                    },
                    Some(t.clone()),
                );
                Ok(RawOperand::Name(t))
            }
        }
    }
}

/// All local names declared or written (as bare names) inside a function
/// body — these must be renamed per inline site.
fn collect_locals(body: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn rec(body: &[Stmt], out: &mut Vec<String>) {
        for s in body {
            match s {
                Stmt::VarDecl { name, .. } => out.push(name.clone()),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    rec(then_body, out);
                    if let Some(eb) = else_body {
                        rec(eb, out);
                    }
                }
                _ => {}
            }
        }
    }
    rec(body, &mut out);
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_lang::{check_program, parse_program};

    fn lower(src: &str) -> RawProgram {
        let prog = parse_program(src).unwrap();
        let info = check_program(&prog).unwrap();
        lower_program(&prog, &info).unwrap()
    }

    #[test]
    fn flattens_multi_operator_expressions() {
        let raw = lower("pipeline[P]{a}; algorithm a { x = (ig_ts - eg_ts) & 0x0fffffff; }");
        let instrs = &raw.algorithms[0].instrs;
        // sub into temp, then and into x — exactly two single-operator ops.
        assert_eq!(instrs.len(), 2);
        assert!(matches!(instrs[0].op, RawOp::Binary { op: BinOp::Sub, .. }));
        assert!(matches!(instrs[1].op, RawOp::Binary { op: BinOp::And, .. }));
        assert_eq!(instrs[1].dst.as_deref(), Some("x"));
    }

    #[test]
    fn branch_removal_applies_predicates() {
        let raw =
            lower("pipeline[P]{a}; algorithm a { if (en) { x = 1; y = 2; } else { x = 3; } }");
        let instrs = &raw.algorithms[0].instrs;
        // then-branch: two instrs predicated on `en`; a Not; else predicated
        // on the negation.
        let then_instrs: Vec<_> = instrs
            .iter()
            .filter(|i| i.pred.as_deref() == Some("en"))
            .collect();
        assert_eq!(then_instrs.len(), 2);
        let not_instr = instrs
            .iter()
            .find(|i| matches!(i.op, RawOp::Unary { op: UnOp::Not, .. }))
            .expect("negation emitted");
        let neg_name = not_instr.dst.clone().unwrap();
        assert!(instrs
            .iter()
            .any(|i| i.pred.as_deref() == Some(neg_name.as_str())));
    }

    #[test]
    fn nested_branches_conjoin_predicates() {
        let raw = lower("pipeline[P]{a}; algorithm a { if (p) { if (q) { x = 1; } } }");
        let instrs = &raw.algorithms[0].instrs;
        // The innermost assignment's predicate must be an And of p and q.
        let assign = instrs
            .iter()
            .find(|i| i.dst.as_deref() == Some("x"))
            .unwrap();
        let pred_name = assign.pred.clone().unwrap();
        let pred_def = instrs
            .iter()
            .find(|i| i.dst.as_deref() == Some(pred_name.as_str()))
            .unwrap();
        assert!(matches!(
            pred_def.op,
            RawOp::Binary {
                op: BinOp::LAnd,
                ..
            }
        ));
    }

    #[test]
    fn inlining_substitutes_by_reference_params() {
        let raw = lower(
            r#"
            pipeline[P]{a};
            algorithm a { bit[32] v; setit(v); out = v; }
            func setit(bit[32] x) { x = 7; }
            "#,
        );
        let instrs = &raw.algorithms[0].instrs;
        // The inlined body writes the caller's `v` directly.
        assert!(instrs.iter().any(|i| i.dst.as_deref() == Some("v")
            && matches!(i.op, RawOp::Assign(RawOperand::Const(7)))));
    }

    #[test]
    fn inlining_renames_function_locals() {
        let raw = lower(
            r#"
            pipeline[P]{a};
            algorithm a { f(u); f(w); }
            func f(bit[8] x) { bit[8] scratch; scratch = x; x = scratch; }
            "#,
        );
        let instrs = &raw.algorithms[0].instrs;
        // Two inline sites must produce two distinct scratch names.
        let scratch_names: std::collections::HashSet<_> = instrs
            .iter()
            .filter_map(|i| i.dst.clone())
            .filter(|d| d.contains("scratch"))
            .collect();
        assert_eq!(
            scratch_names.len(),
            2,
            "locals must be renamed per inline site"
        );
    }

    #[test]
    fn recursion_is_rejected() {
        let prog =
            parse_program("pipeline[P]{a}; algorithm a { f(x); } func f(bit[8] v) { f(v); }")
                .unwrap();
        let info = check_program(&prog).unwrap();
        let err = lower_program(&prog, &info).unwrap_err();
        assert!(err.message.contains("recursive"));
    }

    #[test]
    fn extern_write_is_rejected() {
        let prog = parse_program(
            r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[16] t;
                t[k] = 1;
            }
            "#,
        )
        .unwrap();
        let info = check_program(&prog).unwrap();
        let err = lower_program(&prog, &info).unwrap_err();
        assert!(err.message.contains("control-plane managed"));
    }

    #[test]
    fn global_read_write_lowering() {
        let raw = lower(
            r#"
            pipeline[P]{a};
            algorithm a {
                global bit[32][1024] counter;
                counter[idx] = counter[idx] + 1;
            }
            "#,
        );
        let instrs = &raw.algorithms[0].instrs;
        assert!(matches!(instrs[0].op, RawOp::GlobalRead { .. }));
        assert!(matches!(instrs[1].op, RawOp::Binary { op: BinOp::Add, .. }));
        assert!(matches!(instrs[2].op, RawOp::GlobalWrite { .. }));
    }

    #[test]
    fn table_ops_lowering() {
        let raw = lower(
            r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] h, bit[32] ip>[64] conn;
                if (h in conn) { ipv4.dst = conn[h]; }
            }
            "#,
        );
        let instrs = &raw.algorithms[0].instrs;
        assert!(matches!(instrs[0].op, RawOp::TableMember { .. }));
        let lookup = instrs
            .iter()
            .find(|i| matches!(i.op, RawOp::TableLookup { .. }))
            .unwrap();
        assert!(lookup.dst.is_some());
        // the lookup is predicated on the membership result
        assert!(lookup.pred.is_some());
    }
}
