//! Property tests for the native solver: on randomly generated small models,
//! the solver's SAT/UNSAT verdict must agree with exhaustive enumeration, and
//! any produced solution must actually satisfy the model.
//!
//! Shared generators live in `tests/common` (seeded xorshift — every run
//! explores the identical case set).

mod common;

use common::{brute_force_sat, gen_model, Rng};
use lyra_solver::{solve, Ix, Model, Outcome, Solution};

#[test]
fn solver_agrees_with_brute_force() {
    let mut rng = Rng::new(0x5eed_0001);
    for case in 0..256 {
        let m = gen_model(&mut rng);
        let expected = brute_force_sat(&m);
        match solve(&m) {
            Outcome::Sat(sol) => {
                assert!(
                    expected,
                    "case {case}: solver said SAT but brute force disagrees"
                );
                assert!(
                    sol.satisfies(&m),
                    "case {case}: returned solution violates model"
                );
            }
            Outcome::Unsat => {
                assert!(
                    !expected,
                    "case {case}: solver said UNSAT but model is satisfiable"
                )
            }
            Outcome::Unknown => {} // budget exhausted — no verdict to check
        }
    }
}

#[test]
fn minimize_returns_feasible_minimum() {
    let mut rng = Rng::new(0x5eed_0002);
    for case in 0..128 {
        let m = gen_model(&mut rng);
        if !brute_force_sat(&m) {
            continue;
        }
        // Objective: sum of all integer variables.
        let obj = Ix::sum(m.int_decls().map(|(id, _)| Ix::var(id)).collect());
        let (sol, v) = lyra_solver::minimize(&m, &obj)
            .unwrap_or_else(|| panic!("case {case}: minimize found nothing on a SAT model"));
        assert!(sol.satisfies(&m), "case {case}");
        assert_eq!(sol.eval_ix(&obj), v, "case {case}");
        // No feasible assignment has a smaller objective (brute force).
        let nb = m.num_bools();
        let domains: Vec<(i64, i64)> = m.int_decls().map(|(_, d)| (d.lo, d.hi)).collect();
        for mask in 0..(1usize << nb) {
            let bools: Vec<bool> = (0..nb).map(|i| mask >> i & 1 == 1).collect();
            let mut ints = vec![0i64; domains.len()];
            check_no_better(&m, &bools, &domains, &mut ints, 0, v, &obj, case);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_no_better(
    m: &Model,
    bools: &[bool],
    domains: &[(i64, i64)],
    ints: &mut Vec<i64>,
    idx: usize,
    best: i64,
    obj: &Ix,
    case: usize,
) {
    if idx == domains.len() {
        let sol = Solution::from_parts(bools.to_vec(), ints.clone());
        if sol.satisfies(m) {
            assert!(
                sol.eval_ix(obj) >= best,
                "case {case}: brute force found objective {} < solver minimum {}",
                sol.eval_ix(obj),
                best
            );
        }
        return;
    }
    for v in domains[idx].0..=domains[idx].1 {
        ints[idx] = v;
        check_no_better(m, bools, domains, ints, idx + 1, best, obj, case);
    }
}
