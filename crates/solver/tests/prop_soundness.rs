//! Property tests for the native solver: on randomly generated small models,
//! the solver's SAT/UNSAT verdict must agree with exhaustive enumeration, and
//! any produced solution must actually satisfy the model.

use lyra_solver::{solve, Bx, Ix, Model, Outcome, Solution};
use proptest::prelude::*;

/// Shape of a randomly generated model.
#[derive(Debug, Clone)]
struct RandomModel {
    num_bools: usize,
    int_domains: Vec<(i64, i64)>,
    constraints: Vec<RandBx>,
}

/// A serializable random boolean expression over variable *indices*.
#[derive(Debug, Clone)]
enum RandBx {
    Var(usize),
    NotVar(usize),
    Or(Vec<RandBx>),
    And(Vec<RandBx>),
    Implies(Box<RandBx>, Box<RandBx>),
    /// c0·x0 + c1·x1 + cb·b0 ≤ k (indices taken modulo arity)
    Lin { c0: i64, c1: i64, cb: i64, k: i64, ge: bool },
    IteCmp { cond: usize, then_min: i64 },
}

fn rand_bx(depth: u32) -> impl Strategy<Value = RandBx> {
    let leaf = prop_oneof![
        (0usize..6).prop_map(RandBx::Var),
        (0usize..6).prop_map(RandBx::NotVar),
        (-3i64..=3, -3i64..=3, -2i64..=2, -10i64..=10, any::<bool>())
            .prop_map(|(c0, c1, cb, k, ge)| RandBx::Lin { c0, c1, cb, k, ge }),
        (0usize..6, 0i64..6).prop_map(|(cond, then_min)| RandBx::IteCmp { cond, then_min }),
    ];
    leaf.prop_recursive(depth, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(RandBx::Or),
            prop::collection::vec(inner.clone(), 1..4).prop_map(RandBx::And),
            (inner.clone(), inner).prop_map(|(a, b)| RandBx::Implies(Box::new(a), Box::new(b))),
        ]
    })
}

fn rand_model() -> impl Strategy<Value = RandomModel> {
    (
        1usize..5,
        prop::collection::vec((0i64..3, 3i64..8), 1..3),
        prop::collection::vec(rand_bx(2), 1..5),
    )
        .prop_map(|(num_bools, int_domains, constraints)| RandomModel {
            num_bools,
            int_domains,
            constraints,
        })
}

fn build(rm: &RandomModel) -> Model {
    let mut m = Model::new();
    let bools: Vec<_> = (0..rm.num_bools).map(|i| m.bool_var(format!("b{i}"))).collect();
    let ints: Vec<_> = rm
        .int_domains
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| m.int_var(format!("x{i}"), lo, hi))
        .collect();
    for c in &rm.constraints {
        let bx = to_bx(c, &bools, &ints);
        m.require(bx);
    }
    m
}

fn to_bx(r: &RandBx, bools: &[lyra_solver::BoolId], ints: &[lyra_solver::IntId]) -> Bx {
    match r {
        RandBx::Var(i) => Bx::var(bools[i % bools.len()]),
        RandBx::NotVar(i) => Bx::not(Bx::var(bools[i % bools.len()])),
        RandBx::Or(xs) => Bx::or(xs.iter().map(|x| to_bx(x, bools, ints)).collect()),
        RandBx::And(xs) => Bx::and(xs.iter().map(|x| to_bx(x, bools, ints)).collect()),
        RandBx::Implies(a, b) => Bx::implies(to_bx(a, bools, ints), to_bx(b, bools, ints)),
        RandBx::Lin { c0, c1, cb, k, ge } => {
            let e = Ix::var(ints[0])
                .scale(*c0)
                .add(Ix::var(ints[ints.len() - 1]).scale(*c1))
                .add(Ix::bool01(bools[0]).scale(*cb));
            if *ge {
                e.ge(Ix::lit(*k))
            } else {
                e.le(Ix::lit(*k))
            }
        }
        RandBx::IteCmp { cond, then_min } => {
            let c = Bx::var(bools[cond % bools.len()]);
            Ix::ite(c, Ix::var(ints[0]), Ix::lit(0)).ge(Ix::lit(*then_min))
        }
    }
}

/// Exhaustively check satisfiability of a small model.
fn brute_force_sat(m: &Model) -> bool {
    let nb = m.num_bools();
    let domains: Vec<(i64, i64)> = m.int_decls().map(|(_, d)| (d.lo, d.hi)).collect();
    let total_bool = 1usize << nb;
    for mask in 0..total_bool {
        let bools: Vec<bool> = (0..nb).map(|i| mask >> i & 1 == 1).collect();
        let mut ints = vec![0i64; domains.len()];
        if enumerate_ints(m, &bools, &domains, &mut ints, 0) {
            return true;
        }
    }
    false
}

fn enumerate_ints(
    m: &Model,
    bools: &[bool],
    domains: &[(i64, i64)],
    ints: &mut Vec<i64>,
    idx: usize,
) -> bool {
    if idx == domains.len() {
        let sol = Solution::from_parts(bools.to_vec(), ints.clone());
        return sol.satisfies(m);
    }
    for v in domains[idx].0..=domains[idx].1 {
        ints[idx] = v;
        if enumerate_ints(m, bools, domains, ints, idx + 1) {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force(rm in rand_model()) {
        let m = build(&rm);
        let expected = brute_force_sat(&m);
        match solve(&m) {
            Outcome::Sat(sol) => {
                prop_assert!(expected, "solver said SAT but brute force disagrees");
                prop_assert!(sol.satisfies(&m), "returned solution violates model");
            }
            Outcome::Unsat => prop_assert!(!expected, "solver said UNSAT but model is satisfiable"),
            Outcome::Unknown => {} // budget exhausted — no verdict to check
        }
    }

    #[test]
    fn minimize_returns_feasible_minimum(rm in rand_model()) {
        let m = build(&rm);
        if !brute_force_sat(&m) {
            return Ok(());
        }
        // Objective: sum of all integer variables.
        let obj = Ix::sum(m.int_decls().map(|(id, _)| Ix::var(id)).collect());
        let Some((sol, v)) = lyra_solver::minimize(&m, &obj) else {
            return Err(TestCaseError::fail("minimize found nothing on a SAT model"));
        };
        prop_assert!(sol.satisfies(&m));
        prop_assert_eq!(sol.eval_ix(&obj), v);
        // No feasible assignment has a smaller objective (brute force).
        let nb = m.num_bools();
        let domains: Vec<(i64, i64)> = m.int_decls().map(|(_, d)| (d.lo, d.hi)).collect();
        for mask in 0..(1usize << nb) {
            let bools: Vec<bool> = (0..nb).map(|i| mask >> i & 1 == 1).collect();
            let mut ints = vec![0i64; domains.len()];
            check_no_better(&m, &bools, &domains, &mut ints, 0, v, &obj)?;
        }
    }
}

fn check_no_better(
    m: &Model,
    bools: &[bool],
    domains: &[(i64, i64)],
    ints: &mut Vec<i64>,
    idx: usize,
    best: i64,
    obj: &Ix,
) -> Result<(), TestCaseError> {
    if idx == domains.len() {
        let sol = Solution::from_parts(bools.to_vec(), ints.clone());
        if sol.satisfies(m) {
            prop_assert!(
                sol.eval_ix(obj) >= best,
                "brute force found objective {} < solver minimum {}",
                sol.eval_ix(obj),
                best
            );
        }
        return Ok(());
    }
    for v in domains[idx].0..=domains[idx].1 {
        ints[idx] = v;
        check_no_better(m, bools, domains, ints, idx + 1, best, obj)?;
    }
    Ok(())
}
