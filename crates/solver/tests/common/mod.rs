//! Shared helpers for the solver's property tests: a deterministic PRNG,
//! a random-model generator, and brute-force satisfiability checking.
//!
//! Randomness comes from a seeded xorshift generator (the workspace builds
//! offline with no external crates), so every run explores the identical
//! case set — failures reproduce from the printed case index alone.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use lyra_solver::{Bx, Ix, Model, Solution};

/// Deterministic xorshift64* PRNG.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[lo, hi]`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    pub fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// A random boolean expression over variable *indices*.
#[derive(Debug, Clone)]
pub enum RandBx {
    Var(usize),
    NotVar(usize),
    Or(Vec<RandBx>),
    And(Vec<RandBx>),
    Implies(Box<RandBx>, Box<RandBx>),
    /// c0·x0 + c1·x1 + cb·b0 ≤ k (indices taken modulo arity)
    Lin {
        c0: i64,
        c1: i64,
        cb: i64,
        k: i64,
        ge: bool,
    },
    IteCmp {
        cond: usize,
        then_min: i64,
    },
}

pub fn gen_bx(rng: &mut Rng, depth: u32) -> RandBx {
    let pick = if depth == 0 {
        rng.below(4)
    } else {
        rng.below(7)
    };
    match pick {
        0 => RandBx::Var(rng.below(6) as usize),
        1 => RandBx::NotVar(rng.below(6) as usize),
        2 => RandBx::Lin {
            c0: rng.range(-3, 3),
            c1: rng.range(-3, 3),
            cb: rng.range(-2, 2),
            k: rng.range(-10, 10),
            ge: rng.bool(),
        },
        3 => RandBx::IteCmp {
            cond: rng.below(6) as usize,
            then_min: rng.range(0, 5),
        },
        4 => RandBx::Or(
            (0..rng.range(1, 3))
                .map(|_| gen_bx(rng, depth - 1))
                .collect(),
        ),
        5 => RandBx::And(
            (0..rng.range(1, 3))
                .map(|_| gen_bx(rng, depth - 1))
                .collect(),
        ),
        _ => RandBx::Implies(
            Box::new(gen_bx(rng, depth - 1)),
            Box::new(gen_bx(rng, depth - 1)),
        ),
    }
}

pub fn gen_model(rng: &mut Rng) -> Model {
    let num_bools = rng.range(1, 4) as usize;
    let num_ints = rng.range(1, 2) as usize;
    let mut m = Model::new();
    let bools: Vec<_> = (0..num_bools)
        .map(|i| m.bool_var(format!("b{i}")))
        .collect();
    let ints: Vec<_> = (0..num_ints)
        .map(|i| {
            let lo = rng.range(0, 2);
            let hi = rng.range(3, 7);
            m.int_var(format!("x{i}"), lo, hi)
        })
        .collect();
    let num_constraints = rng.range(1, 4);
    for _ in 0..num_constraints {
        let bx = to_bx(&gen_bx(rng, 2), &bools, &ints);
        m.require(bx);
    }
    m
}

pub fn to_bx(r: &RandBx, bools: &[lyra_solver::BoolId], ints: &[lyra_solver::IntId]) -> Bx {
    match r {
        RandBx::Var(i) => Bx::var(bools[i % bools.len()]),
        RandBx::NotVar(i) => Bx::not(Bx::var(bools[i % bools.len()])),
        RandBx::Or(xs) => Bx::or(xs.iter().map(|x| to_bx(x, bools, ints)).collect()),
        RandBx::And(xs) => Bx::and(xs.iter().map(|x| to_bx(x, bools, ints)).collect()),
        RandBx::Implies(a, b) => Bx::implies(to_bx(a, bools, ints), to_bx(b, bools, ints)),
        RandBx::Lin { c0, c1, cb, k, ge } => {
            let e = Ix::var(ints[0])
                .scale(*c0)
                .add(Ix::var(ints[ints.len() - 1]).scale(*c1))
                .add(Ix::bool01(bools[0]).scale(*cb));
            if *ge {
                e.ge(Ix::lit(*k))
            } else {
                e.le(Ix::lit(*k))
            }
        }
        RandBx::IteCmp { cond, then_min } => {
            let c = Bx::var(bools[cond % bools.len()]);
            Ix::ite(c, Ix::var(ints[0]), Ix::lit(0)).ge(Ix::lit(*then_min))
        }
    }
}

/// Exhaustively check satisfiability of a small model.
pub fn brute_force_sat(m: &Model) -> bool {
    let nb = m.num_bools();
    let domains: Vec<(i64, i64)> = m.int_decls().map(|(_, d)| (d.lo, d.hi)).collect();
    let total_bool = 1usize << nb;
    for mask in 0..total_bool {
        let bools: Vec<bool> = (0..nb).map(|i| mask >> i & 1 == 1).collect();
        let mut ints = vec![0i64; domains.len()];
        if enumerate_ints(m, &bools, &domains, &mut ints, 0) {
            return true;
        }
    }
    false
}

fn enumerate_ints(
    m: &Model,
    bools: &[bool],
    domains: &[(i64, i64)],
    ints: &mut Vec<i64>,
    idx: usize,
) -> bool {
    if idx == domains.len() {
        let sol = Solution::from_parts(bools.to_vec(), ints.clone());
        return sol.satisfies(m);
    }
    for v in domains[idx].0..=domains[idx].1 {
        ints[idx] = v;
        if enumerate_ints(m, bools, domains, ints, idx + 1) {
            return true;
        }
    }
    false
}
