//! Differential property tests: the portfolio race must agree with the
//! sequential search on every verdict and every minimized objective value.
//!
//! A portfolio is only a scheduling change — whichever diversified worker
//! finishes first, satisfiability and optimal objective values are
//! properties of the formula, not the search order. These tests drive both
//! entry points over hundreds of random models (seeded xorshift — every
//! run explores the identical case set) and fail on any divergence. Which
//! *model* carries a SAT verdict may legitimately differ between workers,
//! so solutions are checked against the formula, not against each other.

mod common;

use common::{gen_model, Rng};
use lyra_solver::{
    minimize_portfolio, solve, solve_portfolio, Ix, Outcome, SearchStats, SolverConfig,
};

/// Worker counts exercised per case: a degenerate race, a typical race,
/// and one larger than the diversification table's named rows.
const WORKER_COUNTS: [usize; 3] = [1, 4, 6];

#[test]
fn portfolio_agrees_with_sequential_on_sat_unsat() {
    let mut rng = Rng::new(0x5eed_0003);
    let cfg = SolverConfig::default();
    for case in 0..256 {
        let m = gen_model(&mut rng);
        let sequential = solve(&m);
        let workers = WORKER_COUNTS[case % WORKER_COUNTS.len()];
        let (portfolio, stats) = solve_portfolio(&m, &cfg, workers);
        match (&sequential, &portfolio) {
            (Outcome::Sat(_), Outcome::Sat(sol)) => {
                assert!(
                    sol.satisfies(&m),
                    "case {case}: portfolio SAT model violates the formula"
                );
            }
            (Outcome::Unsat, Outcome::Unsat) => {}
            (Outcome::Unknown, _) | (_, Outcome::Unknown) => {} // budget, no verdict
            (seq, par) => panic!("case {case}: sequential={seq:?} portfolio={par:?}"),
        }
        assert_eq!(
            stats.workers_spawned, workers as u64,
            "case {case}: spawn accounting"
        );
    }
}

#[test]
fn portfolio_minimize_matches_sequential_objective() {
    let mut rng = Rng::new(0x5eed_0004);
    let cfg = SolverConfig::default();
    for case in 0..200 {
        let m = gen_model(&mut rng);
        let obj = Ix::sum(m.int_decls().map(|(id, _)| Ix::var(id)).collect());
        let (seq, _) = lyra_solver::search::minimize_with(&m, &obj, &cfg);
        let workers = WORKER_COUNTS[case % WORKER_COUNTS.len()];
        let (par, _) = minimize_portfolio(&m, &obj, &cfg, workers);
        match (&seq, &par) {
            (Some((_, seq_v)), Some((par_sol, par_v))) => {
                assert_eq!(
                    seq_v, par_v,
                    "case {case}: minimized objective diverged (workers={workers})"
                );
                assert!(
                    par_sol.satisfies(&m),
                    "case {case}: portfolio optimum violates the formula"
                );
                assert_eq!(par_sol.eval_ix(&obj), *par_v, "case {case}");
            }
            (None, None) => {} // both UNSAT
            (s, p) => panic!(
                "case {case}: sequential={:?} portfolio={:?}",
                s.as_ref().map(|(_, v)| v),
                p.as_ref().map(|(_, v)| v)
            ),
        }
    }
}

#[test]
fn portfolio_stats_never_double_count_a_win() {
    // On a model every worker solves instantly, the winner's counters must
    // be a plausible single-worker effort — not the sum over the race.
    let mut rng = Rng::new(0x5eed_0005);
    let cfg = SolverConfig::default();
    for _ in 0..32 {
        let m = gen_model(&mut rng);
        let (seq_outcome, seq_stats): (Outcome, SearchStats) = {
            let flat = lyra_solver::flatten(&m);
            let (o, _, s) = lyra_solver::solve_flat(&flat, &cfg, &[]);
            (o, s)
        };
        if matches!(seq_outcome, Outcome::Unknown) {
            continue;
        }
        let (_, par_stats) = solve_portfolio(&m, &cfg, 4);
        // Workers are diversified, so effort varies — but a winning worker
        // on these tiny models stays within a small factor of sequential,
        // whereas summing four workers would systematically inflate it.
        assert!(
            par_stats.decisions <= seq_stats.decisions * 4 + 64,
            "suspicious decision count: sequential={} portfolio={}",
            seq_stats.decisions,
            par_stats.decisions
        );
        assert_eq!(par_stats.workers_spawned, 4);
        assert_eq!(par_stats.workers_cancelled, 3);
    }
}
