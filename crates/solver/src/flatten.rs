//! Lowering a [`Model`] to a [`FlatModel`]: CNF clauses over SAT variables
//! (via the Tseitin transformation) plus normalized linear atoms
//! `Σ cᵢ·vᵢ ≤ k`.
//!
//! SAT variable space layout:
//!
//! * `0 .. model.num_bools()` — the model's boolean variables;
//! * then one variable per distinct linear atom (the *atom variables*);
//! * then Tseitin variables introduced for internal formula nodes.
//!
//! Integer variable space layout: the model's integers first, then
//! auxiliaries introduced for `ite` and `ceil_div` nodes.

use std::collections::HashMap;

use crate::expr::{div_ceil_i64, Bx, CmpOp, Ix, LinExpr, VarRef};
use crate::model::{IntId, Model};

/// A literal: SAT variable index with a sign. `Lit(2*v)` is `v`,
/// `Lit(2*v + 1)` is `¬v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of variable `v`.
    pub fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    /// Negative literal of variable `v`.
    pub fn neg(v: u32) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// True if the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// A normalized linear constraint `Σ terms ≤ k` guarded by an atom variable.
///
/// When the atom variable is assigned *true* the constraint `Σ ≤ k` becomes
/// active; when assigned *false* its negation `Σ ≥ k + 1` becomes active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinAtom {
    /// SAT variable guarding this atom.
    pub var: u32,
    /// Coefficient / variable pairs (variables may be model bools as 0/1, or
    /// integers — model or auxiliary).
    pub terms: Vec<(i64, FlatVar)>,
    /// Right-hand side of `Σ ≤ k`.
    pub k: i64,
}

/// A variable reference inside a flattened linear atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlatVar {
    /// SAT (boolean) variable, coerced to 0/1. Always one of the model's
    /// booleans — Tseitin and atom variables never appear in atoms.
    Bool(u32),
    /// Integer variable (model or auxiliary), by flat index.
    Int(u32),
}

/// The result of flattening a [`Model`].
#[derive(Debug, Clone, Default)]
pub struct FlatModel {
    /// Number of boolean variables belonging to the source model.
    pub num_model_bools: usize,
    /// Number of integer variables belonging to the source model.
    pub num_model_ints: usize,
    /// Total number of SAT variables (model + atoms + Tseitin).
    pub num_sat_vars: usize,
    /// Inclusive bounds for every integer variable (model then auxiliary).
    pub int_bounds: Vec<(i64, i64)>,
    /// CNF clauses.
    pub clauses: Vec<Vec<Lit>>,
    /// Linear atoms, indexed by `atom_of_var`.
    pub atoms: Vec<LinAtom>,
    /// Map from SAT variable to its atom index, if it is an atom variable.
    pub atom_of_var: HashMap<u32, usize>,
    /// Linear form of the objective, if one was lowered.
    pub objective: Option<Vec<(i64, FlatVar)>>,
    /// Constant offset of the objective.
    pub objective_constant: i64,
}

impl FlatModel {
    /// Content fingerprint (FNV-1a) of everything the search sees: variable
    /// counts, integer bounds, clause literals, linear atoms, and the
    /// always-active `extra` bound constraints of a branch-and-bound round.
    ///
    /// Two flat models with equal fingerprints are structurally identical
    /// formulas, so clauses learned while solving one are sound to replay
    /// in the other — this is the warm-start key used by
    /// [`crate::decompose::ClauseStore`]. `extra` participates because
    /// branch-and-bound clauses are learned *under* the bound constraints
    /// and are not implied by the base formula alone.
    pub fn fingerprint(&self, extra: &[(Vec<(i64, FlatVar)>, i64)]) -> u64 {
        fn mix(h: &mut u64, x: u64) {
            *h ^= x;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        fn mix_var(h: &mut u64, v: FlatVar) {
            match v {
                FlatVar::Bool(b) => mix(h, u64::from(b)),
                FlatVar::Int(i) => mix(h, (1u64 << 32) | u64::from(i)),
            }
        }
        fn mix_bound(h: &mut u64, terms: &[(i64, FlatVar)], k: i64) {
            mix(h, terms.len() as u64);
            for &(c, v) in terms {
                mix(h, c as u64);
                mix_var(h, v);
            }
            mix(h, k as u64);
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        mix(&mut h, self.num_sat_vars as u64);
        mix(&mut h, self.num_model_bools as u64);
        mix(&mut h, self.num_model_ints as u64);
        mix(&mut h, self.int_bounds.len() as u64);
        for &(lo, hi) in &self.int_bounds {
            mix(&mut h, lo as u64);
            mix(&mut h, hi as u64);
        }
        mix(&mut h, self.clauses.len() as u64);
        for cl in &self.clauses {
            mix(&mut h, cl.len() as u64);
            for l in cl {
                mix(&mut h, u64::from(l.0));
            }
        }
        mix(&mut h, self.atoms.len() as u64);
        for a in &self.atoms {
            mix(&mut h, u64::from(a.var));
            mix_bound(&mut h, &a.terms, a.k);
        }
        mix(&mut h, extra.len() as u64);
        for (terms, k) in extra {
            mix_bound(&mut h, terms, *k);
        }
        h
    }

    /// Bounds `(lo, hi)` a linear combination can take given variable bounds.
    pub fn lin_bounds(&self, terms: &[(i64, FlatVar)]) -> (i64, i64) {
        let mut lo = 0i64;
        let mut hi = 0i64;
        for &(c, v) in terms {
            let (vlo, vhi) = match v {
                FlatVar::Bool(_) => (0, 1),
                FlatVar::Int(i) => self.int_bounds[i as usize],
            };
            if c >= 0 {
                lo += c * vlo;
                hi += c * vhi;
            } else {
                lo += c * vhi;
                hi += c * vlo;
            }
        }
        (lo, hi)
    }
}

struct Flattener<'m> {
    /// Kept for debugging helpers and future name-aware diagnostics.
    #[allow(dead_code)]
    model: &'m Model,
    flat: FlatModel,
    next_sat_var: u32,
    true_lit: Lit,
    atom_cache: HashMap<(Vec<(i64, FlatVar)>, i64), u32>,
}

/// Flatten a model to CNF + linear atoms.
pub fn flatten(model: &Model) -> FlatModel {
    flatten_with_objective(model, None)
}

/// Flatten a model, additionally lowering `objective` so a branch-and-bound
/// loop can evaluate and constrain it.
pub fn flatten_with_objective(model: &Model, objective: Option<&Ix>) -> FlatModel {
    let mut f = Flattener::new(model);
    for c in model.constraints() {
        let expanded = expand(c.clone());
        let lit = f.lower_bx(&expanded);
        f.flat.clauses.push(vec![lit]);
    }
    if let Some(obj) = objective {
        let lin = f.lower_ix(obj);
        f.flat.objective = Some(lin.terms.iter().map(|&(c, v)| (c, f.flat_var(v))).collect());
        f.flat.objective_constant = lin.constant;
    }
    f.flat.num_sat_vars = f.next_sat_var as usize;
    f.flat
}

/// Pre-expansion: rewrite `AtMostOne`, `Iff` over comparisons, `Eq`/`Ne`
/// comparisons into the core connectives so Tseitin only sees
/// and/or/not/implies/iff/var/const/le-atoms.
fn expand(bx: Bx) -> Bx {
    match bx {
        Bx::Const(_) | Bx::Var(_) => bx,
        Bx::Not(b) => Bx::not(expand(*b)),
        Bx::And(xs) => Bx::and(xs.into_iter().map(expand).collect()),
        Bx::Or(xs) => Bx::or(xs.into_iter().map(expand).collect()),
        Bx::Implies(a, b) => Bx::implies(expand(*a), expand(*b)),
        Bx::Iff(a, b) => Bx::iff(expand(*a), expand(*b)),
        Bx::AtMostOne(xs) => {
            let xs: Vec<Bx> = xs.into_iter().map(expand).collect();
            let mut pairs = Vec::new();
            for i in 0..xs.len() {
                for j in (i + 1)..xs.len() {
                    pairs.push(Bx::or(vec![Bx::not(xs[i].clone()), Bx::not(xs[j].clone())]));
                }
            }
            Bx::and(pairs)
        }
        Bx::Cmp(op, a, b) => match op {
            CmpOp::Eq => Bx::and(vec![
                Bx::Cmp(CmpOp::Le, a.clone(), b.clone()),
                Bx::Cmp(CmpOp::Ge, a, b),
            ]),
            CmpOp::Ne => Bx::or(vec![
                Bx::Cmp(CmpOp::Lt, a.clone(), b.clone()),
                Bx::Cmp(CmpOp::Gt, a, b),
            ]),
            _ => Bx::Cmp(op, a, b),
        },
    }
}

impl<'m> Flattener<'m> {
    fn new(model: &'m Model) -> Self {
        let mut flat = FlatModel {
            num_model_bools: model.num_bools(),
            num_model_ints: model.num_ints(),
            ..Default::default()
        };
        for (_, d) in model.int_decls() {
            flat.int_bounds.push((d.lo, d.hi));
        }
        let mut next = model.num_bools() as u32;
        // Reserve one variable that is always true, to represent constants.
        let true_var = next;
        next += 1;
        flat.clauses.push(vec![Lit::pos(true_var)]);
        Flattener {
            model,
            flat,
            next_sat_var: next,
            true_lit: Lit::pos(true_var),
            atom_cache: HashMap::new(),
        }
    }

    fn fresh_var(&mut self) -> u32 {
        let v = self.next_sat_var;
        self.next_sat_var += 1;
        v
    }

    fn flat_var(&self, v: VarRef) -> FlatVar {
        match v {
            VarRef::Int(i) => FlatVar::Int(i.index() as u32),
            VarRef::Bool(b) => FlatVar::Bool(b.index() as u32),
        }
    }

    fn fresh_int(&mut self, lo: i64, hi: i64) -> u32 {
        let idx = self.flat.int_bounds.len() as u32;
        self.flat.int_bounds.push((lo, hi));
        idx
    }

    /// Lower an integer expression to a linear form, introducing auxiliary
    /// integers (as fresh `IntId`-like flat indices) with defining clauses.
    fn lower_ix(&mut self, ix: &Ix) -> LinExpr {
        match ix {
            Ix::Lin(l) => l.clone().normalize(),
            Ix::Sum(xs) => {
                let mut acc = LinExpr::constant(0);
                for x in xs {
                    let l = self.lower_ix(x);
                    acc = acc.add(&l);
                }
                acc
            }
            Ix::Scaled(a, k) => self.lower_ix(a).scale(*k),
            Ix::Ite(c, a, b) => {
                let clit = self.lower_bx(&expand((**c).clone()));
                let la = self.lower_ix(a);
                let lb = self.lower_ix(b);
                let (alo, ahi) = self.bounds_of(&la);
                let (blo, bhi) = self.bounds_of(&lb);
                let t = self.fresh_int(alo.min(blo), ahi.max(bhi));
                let tvar = LinExpr {
                    constant: 0,
                    terms: vec![(1, VarRef::Int(crate::model::IntId(t)))],
                };
                // c → t = a  ≡  (¬c ∨ t ≤ a) ∧ (¬c ∨ t ≥ a)
                let d1 = tvar.clone().sub(&la);
                let le_a = self.atom_le(&d1, 0);
                let ge_a = self.atom_le(&d1.clone().scale(-1), 0);
                self.flat.clauses.push(vec![clit.negate(), le_a]);
                self.flat.clauses.push(vec![clit.negate(), ge_a]);
                // ¬c → t = b
                let d2 = tvar.clone().sub(&lb);
                let le_b = self.atom_le(&d2, 0);
                let ge_b = self.atom_le(&d2.clone().scale(-1), 0);
                self.flat.clauses.push(vec![clit, le_b]);
                self.flat.clauses.push(vec![clit, ge_b]);
                tvar
            }
            Ix::CeilDiv(a, k) => {
                let la = self.lower_ix(a);
                let (alo, ahi) = self.bounds_of(&la);
                let t = self.fresh_int(div_ceil_i64(alo, *k), div_ceil_i64(ahi, *k));
                let tvar = LinExpr {
                    constant: 0,
                    terms: vec![(1, VarRef::Int(crate::model::IntId(t)))],
                };
                // k·t ≥ a  ∧  k·t ≤ a + k - 1
                let kt = tvar.clone().scale(*k);
                let c1 = la.clone().sub(&kt); // a - k·t ≤ 0
                let a1 = self.atom_le(&c1, 0);
                let c2 = kt.sub(&la); // k·t - a ≤ k - 1
                let a2 = self.atom_le(&c2, *k - 1);
                self.flat.clauses.push(vec![a1]);
                self.flat.clauses.push(vec![a2]);
                tvar
            }
        }
    }

    fn bounds_of(&self, l: &LinExpr) -> (i64, i64) {
        let mut lo = l.constant;
        let mut hi = l.constant;
        for &(c, v) in &l.terms {
            let (vlo, vhi) = match v {
                VarRef::Bool(_) => (0, 1),
                VarRef::Int(i) => self.flat.int_bounds[i.index()],
            };
            if c >= 0 {
                lo += c * vlo;
                hi += c * vhi;
            } else {
                lo += c * vhi;
                hi += c * vlo;
            }
        }
        (lo, hi)
    }

    /// Literal for the atom `lin ≤ k` (deduplicated). The linear expression's
    /// constant folds into `k`.
    fn atom_le(&mut self, lin: &LinExpr, k: i64) -> Lit {
        let lin = lin.clone().normalize();
        let rhs = k - lin.constant;
        let terms: Vec<(i64, FlatVar)> = lin
            .terms
            .iter()
            .map(|&(c, v)| (c, self.flat_var(v)))
            .collect();
        // Constant atoms fold to true/false immediately.
        if terms.is_empty() {
            return if 0 <= rhs {
                self.true_lit
            } else {
                self.true_lit.negate()
            };
        }
        // Bound-implied atoms also fold.
        let (lo, hi) = self.flat.lin_bounds(&terms);
        if hi <= rhs {
            return self.true_lit;
        }
        if lo > rhs {
            return self.true_lit.negate();
        }
        let key = (terms.clone(), rhs);
        if let Some(&v) = self.atom_cache.get(&key) {
            return Lit::pos(v);
        }
        let v = self.fresh_var();
        self.atom_cache.insert(key, v);
        let idx = self.flat.atoms.len();
        self.flat.atoms.push(LinAtom {
            var: v,
            terms,
            k: rhs,
        });
        self.flat.atom_of_var.insert(v, idx);
        Lit::pos(v)
    }

    /// Tseitin-lower a boolean expression, returning the literal equivalent
    /// to it.
    fn lower_bx(&mut self, bx: &Bx) -> Lit {
        match bx {
            Bx::Const(true) => self.true_lit,
            Bx::Const(false) => self.true_lit.negate(),
            Bx::Var(v) => Lit::pos(v.index() as u32),
            Bx::Not(b) => self.lower_bx(b).negate(),
            Bx::And(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|x| self.lower_bx(x)).collect();
                let y = Lit::pos(self.fresh_var());
                // y → each lit
                for &l in &lits {
                    self.flat.clauses.push(vec![y.negate(), l]);
                }
                // all lits → y
                let mut cl: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
                cl.push(y);
                self.flat.clauses.push(cl);
                y
            }
            Bx::Or(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|x| self.lower_bx(x)).collect();
                let y = Lit::pos(self.fresh_var());
                // each lit → y
                for &l in &lits {
                    self.flat.clauses.push(vec![l.negate(), y]);
                }
                // y → some lit
                let mut cl = lits;
                cl.push(y.negate());
                self.flat.clauses.push(cl);
                y
            }
            Bx::Implies(a, b) => {
                let or = Bx::Or(vec![Bx::not((**a).clone()), (**b).clone()]);
                self.lower_bx(&or)
            }
            Bx::Iff(a, b) => {
                let la = self.lower_bx(a);
                let lb = self.lower_bx(b);
                let y = Lit::pos(self.fresh_var());
                // y → (la ↔ lb); ¬y → (la ↔ ¬lb)
                self.flat.clauses.push(vec![y.negate(), la.negate(), lb]);
                self.flat.clauses.push(vec![y.negate(), la, lb.negate()]);
                self.flat.clauses.push(vec![y, la, lb]);
                self.flat.clauses.push(vec![y, la.negate(), lb.negate()]);
                y
            }
            Bx::Cmp(op, a, b) => {
                let la = self.lower_ix(a);
                let lb = self.lower_ix(b);
                match op {
                    CmpOp::Le => {
                        let d = la.sub(&lb);
                        self.atom_le(&d, 0)
                    }
                    CmpOp::Lt => {
                        let d = la.sub(&lb);
                        self.atom_le(&d, -1)
                    }
                    CmpOp::Ge => {
                        let d = lb.sub(&la);
                        self.atom_le(&d, 0)
                    }
                    CmpOp::Gt => {
                        let d = lb.sub(&la);
                        self.atom_le(&d, -1)
                    }
                    CmpOp::Eq | CmpOp::Ne => {
                        // `expand` rewrites these before lowering; handle
                        // defensively anyway.
                        let e = expand(Bx::Cmp(*op, a.clone(), b.clone()));
                        self.lower_bx(&e)
                    }
                }
            }
            Bx::AtMostOne(xs) => {
                let e = expand(Bx::AtMostOne(xs.clone()));
                self.lower_bx(&e)
            }
        }
    }
}

// Allow constructing IntId for auxiliary variables inside this crate.
impl crate::model::IntId {
    pub(crate) fn aux(idx: u32) -> Self {
        crate::model::IntId(idx)
    }
}

// Keep the helper used (the constructor above is exercised through
// `fresh_int` call sites which build IntId directly).
#[allow(dead_code)]
fn _use_aux() {
    let _ = IntId::aux(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Bx, Ix};
    use crate::model::Model;

    #[test]
    fn flatten_simple_bool() {
        let mut m = Model::new();
        let a = m.bool_var("a");
        let b = m.bool_var("b");
        m.require(Bx::or(vec![Bx::var(a), Bx::var(b)]));
        let f = flatten(&m);
        assert_eq!(f.num_model_bools, 2);
        assert!(f.num_sat_vars >= 3); // a, b, TRUE, or-node
        assert!(!f.clauses.is_empty());
    }

    #[test]
    fn flatten_dedups_atoms() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 100);
        m.require(Ix::var(x).le(Ix::lit(5)));
        m.require(Ix::var(x).le(Ix::lit(5)));
        let f = flatten(&m);
        assert_eq!(f.atoms.len(), 1);
    }

    #[test]
    fn flatten_folds_trivial_atoms() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 10);
        m.require(Ix::var(x).le(Ix::lit(100))); // always true given bounds
        m.require(Ix::var(x).ge(Ix::lit(0))); // always true
        let f = flatten(&m);
        assert_eq!(f.atoms.len(), 0);
    }

    #[test]
    fn flatten_objective() {
        let mut m = Model::new();
        let a = m.bool_var("a");
        let x = m.int_var("x", 0, 9);
        m.require(Bx::var(a));
        let obj = Ix::var(x).add(Ix::bool01(a).scale(10));
        let f = flatten_with_objective(&m, Some(&obj));
        let o = f.objective.as_ref().unwrap();
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn lit_encoding_roundtrip() {
        let l = Lit::pos(7);
        assert_eq!(l.var(), 7);
        assert!(!l.is_neg());
        let n = l.negate();
        assert!(n.is_neg());
        assert_eq!(n.var(), 7);
        assert_eq!(n.negate(), l);
    }

    #[test]
    fn expand_at_most_one() {
        let mut m = Model::new();
        let vs: Vec<_> = (0..3).map(|i| m.bool_var(format!("v{i}"))).collect();
        let e = expand(Bx::AtMostOne(vs.iter().map(|&v| Bx::var(v)).collect()));
        // 3 choose 2 = 3 pairwise clauses
        match e {
            Bx::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }
}
