//! The unified [`Solver`] API: one dispatch point over the sequential
//! search, the portfolio race, and connected-component decomposition, plus
//! the fingerprint-keyed [`ClauseStore`] that carries learned clauses and
//! variable activity between solves of the same formula (warm start).
//!
//! ## Engines
//!
//! * [`Sequential`] — one deterministic CDCL(T) search;
//! * [`Portfolio`] — race diversified searchers (see [`crate::portfolio`]);
//! * [`Decomposed`] — split the flat formula into connected components over
//!   variable sharing, solve the components independently (in parallel),
//!   and stitch the sub-assignments back together. Components are exact —
//!   two components share no variable — so the split is a pure win: the
//!   conjunction is satisfiable iff every component is, and any component
//!   refutation refutes the whole. When the formula is one component (or an
//!   objective / branch-and-bound bound couples everything), `Decomposed`
//!   falls back to the monolithic engine.
//!
//! ## Warm start
//!
//! Every engine consults the optional [`ClauseStore`] in its
//! [`SolveCtx`]: before searching it looks up a [`WarmStart`] bundle under
//! the formula's [`FlatModel::fingerprint`] (with the active bound
//! constraints mixed in), and after searching it stores the export back.
//! Keying by exact fingerprint is what makes replay sound — a learned
//! clause is implied by the formula it was learned from, so it may only be
//! replayed into a structurally identical formula; stale bundles can never
//! match.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::flatten::{flatten, flatten_with_objective, FlatModel, FlatVar, LinAtom};
use crate::model::{Model, Solution};
use crate::portfolio::{default_workers, solve_flat_portfolio_warm};
use crate::search::{solve_flat_warm, RawAssignment, SearchStats, SolverConfig, WarmStart};
use crate::Outcome;

/// An always-active linear bound `Σ terms ≤ k` — the branch-and-bound
/// rounds' tightening constraints.
pub type BoundConstraint = (Vec<(i64, FlatVar)>, i64);

/// What one component solve produced: verdict, witness, and search stats.
type SolveResult = (Outcome, Option<RawAssignment>, SearchStats);

/// Fingerprint-keyed store of [`WarmStart`] bundles shared across solves
/// (typically across `recompile_for_faults` rounds, or across identical
/// per-pod subproblems).
///
/// Lookup and store are keyed by [`FlatModel::fingerprint`]; a bundle can
/// therefore only ever seed a search over the exact formula it was exported
/// from, which keeps replay sound. Hit/miss counters expose reuse to the
/// compile driver's stats.
#[derive(Debug, Default)]
pub struct ClauseStore {
    entries: Mutex<HashMap<u64, WarmStart>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Crude memory bound: a store that outgrows this many distinct formulas
/// is cleared rather than evicted piecemeal (re-learning is cheap relative
/// to unbounded growth across long fault sequences).
const CLAUSE_STORE_CAP: usize = 512;

impl ClauseStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, WarmStart>> {
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Fetch the bundle stored under `key`, counting a hit or miss.
    pub fn lookup(&self, key: u64) -> Option<WarmStart> {
        let got = self.lock().get(&key).cloned();
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Store `warm` under `key`, replacing any previous bundle for the same
    /// formula (the newest export carries the freshest clause database).
    pub fn store(&self, key: u64, warm: WarmStart) {
        if warm.is_empty() {
            return;
        }
        let mut map = self.lock();
        if map.len() >= CLAUSE_STORE_CAP && !map.contains_key(&key) {
            map.clear();
        }
        map.insert(key, warm);
    }

    /// Lookups that found a bundle.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct formulas currently warm.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no bundle is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything an engine needs besides the formula: the base search
/// configuration (deadline, decision budget, cancellation flag, phase
/// hints, restart/decay tuning) and the optional warm-start store.
#[derive(Debug, Clone, Default)]
pub struct SolveCtx {
    /// Base configuration handed to every underlying search.
    pub config: SolverConfig,
    /// Warm-start store consulted (and refreshed) around every solve.
    pub warm: Option<Arc<ClauseStore>>,
}

impl SolveCtx {
    /// A context wrapping just a configuration, with no warm-start store.
    pub fn from_config(config: SolverConfig) -> Self {
        SolveCtx { config, warm: None }
    }
}

/// A solver engine: the single dispatch point `lyra-synth` calls instead of
/// matching on a strategy enum inline.
///
/// All engines agree on verdicts — SAT/UNSAT and optimal objective values
/// are properties of the formula, not the schedule — and differ only in how
/// the search is run (one searcher, a race, or per-component).
pub trait Solver: Send + Sync {
    /// Engine name, for logs and summaries.
    fn name(&self) -> &'static str;

    /// Solve a flattened formula under `extra` always-active bounds.
    fn solve_flat(
        &self,
        flat: &FlatModel,
        extra: &[BoundConstraint],
        ctx: &SolveCtx,
    ) -> (Outcome, Option<RawAssignment>, SearchStats);

    /// Flatten and solve a model (decision problem).
    fn solve(&self, model: &Model, ctx: &SolveCtx) -> (Outcome, SearchStats) {
        let flat = flatten(model);
        let (outcome, _, stats) = self.solve_flat(&flat, &[], ctx);
        if let Outcome::Sat(ref s) = outcome {
            debug_assert!(s.satisfies(model), "engine returned a non-model");
        }
        (outcome, stats)
    }

    /// Minimize `objective` subject to the model, by branch-and-bound where
    /// each bound-tightening round goes through [`Solver::solve_flat`] (so
    /// every round benefits from the engine's scheduling and, per-round
    /// fingerprint, from warm starts).
    fn minimize(
        &self,
        model: &Model,
        objective: &crate::expr::Ix,
        ctx: &SolveCtx,
    ) -> (Option<(Solution, i64)>, SearchStats) {
        let flat = flatten_with_objective(model, Some(objective));
        let obj_terms = flat.objective.clone().expect("objective lowered");
        let mut extra: Vec<BoundConstraint> = Vec::new();
        let mut best: Option<(Solution, i64)> = None;
        let mut total = SearchStats::default();
        loop {
            let (outcome, raw, stats) = self.solve_flat(&flat, &extra, ctx);
            total.absorb(stats);
            match outcome {
                Outcome::Sat(_) => {
                    let raw = raw.expect("raw assignment accompanies Sat");
                    let value = raw.eval_lin(&obj_terms) + flat.objective_constant;
                    best = Some((raw.extract(&flat), value));
                    // Require strictly better: Σ ≤ value - constant - 1.
                    extra.push((obj_terms.clone(), value - flat.objective_constant - 1));
                }
                _ => return (best, total),
            }
        }
    }
}

/// Warm lookup key for a formula under the active bounds.
fn warm_key(flat: &FlatModel, extra: &[BoundConstraint], ctx: &SolveCtx) -> Option<u64> {
    ctx.warm.as_ref().map(|_| flat.fingerprint(extra))
}

/// One deterministic CDCL(T) search.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sequential;

impl Solver for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn solve_flat(
        &self,
        flat: &FlatModel,
        extra: &[BoundConstraint],
        ctx: &SolveCtx,
    ) -> (Outcome, Option<RawAssignment>, SearchStats) {
        let key = warm_key(flat, extra, ctx);
        let seed = match (&ctx.warm, key) {
            (Some(store), Some(k)) => store.lookup(k),
            _ => None,
        };
        let (outcome, raw, stats, export) =
            solve_flat_warm(flat, &ctx.config, extra, seed.as_ref());
        if let (Some(store), Some(k)) = (&ctx.warm, key) {
            store.store(k, export);
        }
        (outcome, raw, stats)
    }
}

/// Race diversified searchers; first verdict wins (see [`crate::portfolio`]).
#[derive(Debug, Clone, Copy)]
pub struct Portfolio {
    /// Worker count; 0 = the machine's available parallelism, capped at 8.
    pub workers: usize,
}

impl Solver for Portfolio {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn solve_flat(
        &self,
        flat: &FlatModel,
        extra: &[BoundConstraint],
        ctx: &SolveCtx,
    ) -> (Outcome, Option<RawAssignment>, SearchStats) {
        let n = if self.workers == 0 {
            default_workers()
        } else {
            self.workers
        };
        let key = warm_key(flat, extra, ctx);
        let seed = match (&ctx.warm, key) {
            (Some(store), Some(k)) => store.lookup(k),
            _ => None,
        };
        let (outcome, raw, stats, export) =
            solve_flat_portfolio_warm(flat, &ctx.config, extra, n, seed.as_ref());
        if let (Some(store), Some(k), Some(w)) = (&ctx.warm, key, export) {
            store.store(k, w);
        }
        (outcome, raw, stats)
    }
}

/// Split the formula into connected components over variable sharing and
/// solve them independently; fall back to the monolithic engine when the
/// formula does not decompose (or an objective/bound couples everything).
#[derive(Debug, Clone, Copy)]
pub struct Decomposed {
    /// Worker budget: bounds both the component-solving thread pool and the
    /// fallback engine (0 = auto; ≤ 1 falls back to [`Sequential`]).
    pub workers: usize,
}

impl Decomposed {
    fn fallback(&self) -> Box<dyn Solver> {
        if self.workers == 1 {
            Box::new(Sequential)
        } else {
            Box::new(Portfolio {
                workers: self.workers,
            })
        }
    }
}

/// Union-find with path halving over the unified variable id space:
/// SAT variable `v` ↦ `v`, integer variable `i` ↦ `num_sat_vars + i`.
struct UnionFind(Vec<u32>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n as u32).collect())
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.0[x as usize] != x {
            self.0[x as usize] = self.0[self.0[x as usize] as usize];
            x = self.0[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra.max(rb) as usize] = ra.min(rb);
        }
    }
}

fn unified_id(flat: &FlatModel, v: FlatVar) -> u32 {
    match v {
        FlatVar::Bool(b) => b,
        FlatVar::Int(i) => flat.num_sat_vars as u32 + i,
    }
}

/// One connected component of the formula, remapped to a dense local
/// variable space.
struct SubProblem {
    flat: FlatModel,
    /// Global SAT variable per local SAT index.
    bools: Vec<u32>,
    /// Global integer variable per local integer index.
    ints: Vec<u32>,
}

/// Partition `flat` into connected components over variable sharing.
/// Returns `None` when the formula is a single component (no win).
fn split_components(flat: &FlatModel) -> Option<Vec<SubProblem>> {
    let n_sat = flat.num_sat_vars;
    let n_int = flat.int_bounds.len();
    let mut uf = UnionFind::new(n_sat + n_int);
    for cl in &flat.clauses {
        for w in cl.windows(2) {
            uf.union(w[0].var(), w[1].var());
        }
    }
    for atom in &flat.atoms {
        for &(_, v) in &atom.terms {
            uf.union(atom.var, unified_id(flat, v));
        }
    }
    // Group constrained variables by component root, in deterministic
    // (ascending-root) order.
    let mut roots: Vec<u32> = Vec::new();
    let mut comp_of_root: HashMap<u32, usize> = HashMap::new();
    let mut comp_index = |root: u32, roots: &mut Vec<u32>| -> usize {
        *comp_of_root.entry(root).or_insert_with(|| {
            roots.push(root);
            roots.len() - 1
        })
    };
    let mut clause_comp: Vec<Option<usize>> = Vec::with_capacity(flat.clauses.len());
    for cl in &flat.clauses {
        clause_comp.push(cl.first().map(|l| comp_index(uf.find(l.var()), &mut roots)));
    }
    let atom_comp: Vec<usize> = flat
        .atoms
        .iter()
        .map(|a| comp_index(uf.find(a.var), &mut roots))
        .collect();
    if roots.len() <= 1 {
        return None;
    }
    // Collect each component's variables (ascending, so layouts are
    // deterministic) and build the remapped sub-formulas.
    let mut subs: Vec<SubProblem> = roots
        .iter()
        .map(|_| SubProblem {
            flat: FlatModel::default(),
            bools: Vec::new(),
            ints: Vec::new(),
        })
        .collect();
    let mut sat_local: Vec<u32> = vec![u32::MAX; n_sat];
    let mut int_local: Vec<u32> = vec![u32::MAX; n_int];
    for v in 0..n_sat as u32 {
        if let Some(&ci) = comp_of_root.get(&uf.find(v)) {
            sat_local[v as usize] = subs[ci].bools.len() as u32;
            subs[ci].bools.push(v);
        }
    }
    for i in 0..n_int as u32 {
        if let Some(&ci) = comp_of_root.get(&uf.find(n_sat as u32 + i)) {
            int_local[i as usize] = subs[ci].ints.len() as u32;
            subs[ci].flat.int_bounds.push(flat.int_bounds[i as usize]);
            subs[ci].ints.push(i);
        }
    }
    for sub in &mut subs {
        sub.flat.num_sat_vars = sub.bools.len();
        // Raw merge never projects through `extract`, but keep the model
        // prefix fields coherent for debugging.
        sub.flat.num_model_bools = sub.bools.len();
        sub.flat.num_model_ints = sub.ints.len();
    }
    let map_lit = |l: crate::flatten::Lit| {
        let local = sat_local[l.var() as usize];
        if l.is_neg() {
            crate::flatten::Lit::neg(local)
        } else {
            crate::flatten::Lit::pos(local)
        }
    };
    let map_var = |v: FlatVar| match v {
        FlatVar::Bool(b) => FlatVar::Bool(sat_local[b as usize]),
        FlatVar::Int(i) => FlatVar::Int(int_local[i as usize]),
    };
    for (cl, comp) in flat.clauses.iter().zip(&clause_comp) {
        if let Some(ci) = comp {
            subs[*ci]
                .flat
                .clauses
                .push(cl.iter().map(|&l| map_lit(l)).collect());
        }
    }
    for (atom, &ci) in flat.atoms.iter().zip(&atom_comp) {
        let sub = &mut subs[ci].flat;
        let idx = sub.atoms.len();
        let var = sat_local[atom.var as usize];
        sub.atoms.push(LinAtom {
            var,
            terms: atom.terms.iter().map(|&(c, v)| (c, map_var(v))).collect(),
            k: atom.k,
        });
        sub.atom_of_var.insert(var, idx);
    }
    Some(subs)
}

impl Solver for Decomposed {
    fn name(&self) -> &'static str {
        "decomposed"
    }

    fn solve_flat(
        &self,
        flat: &FlatModel,
        extra: &[BoundConstraint],
        ctx: &SolveCtx,
    ) -> (Outcome, Option<RawAssignment>, SearchStats) {
        // Objectives and branch-and-bound bounds couple otherwise-independent
        // variables; the monolithic engine handles those rounds.
        if flat.objective.is_some() || !extra.is_empty() {
            return self.fallback().solve_flat(flat, extra, ctx);
        }
        if flat.clauses.iter().any(|c| c.is_empty()) {
            return (Outcome::Unsat, None, SearchStats::default());
        }
        let Some(subs) = split_components(flat) else {
            return self.fallback().solve_flat(flat, extra, ctx);
        };
        // Solve components in parallel, each with the sequential engine
        // (warm-started per sub-formula fingerprint: identical components —
        // e.g. symmetric pods — reuse each other's learned clauses across
        // solves). The shared cancel flag / deadline in `ctx.config` keeps
        // cross-component winddown prompt.
        let results: Vec<Mutex<Option<SolveResult>>> =
            subs.iter().map(|_| Mutex::new(None)).collect();
        // Hints arrive in *global* variable indices; each component solves
        // in its own dense local space, so project the hints through the
        // component's variable map (both lists are ascending — binary
        // search). Without this, stability hints silently land on the
        // wrong variables whenever decomposition kicks in.
        let sub_ctxs: Vec<SolveCtx> = subs
            .iter()
            .map(|sub| {
                let mut config = ctx.config.clone();
                config.phase_hints = ctx
                    .config
                    .phase_hints
                    .iter()
                    .filter_map(|&(g, ph)| sub.bools.binary_search(&g).ok().map(|l| (l as u32, ph)))
                    .collect();
                config.int_hints = ctx
                    .config
                    .int_hints
                    .iter()
                    .filter_map(|&(g, t)| sub.ints.binary_search(&g).ok().map(|l| (l as u32, t)))
                    .collect();
                SolveCtx {
                    config,
                    warm: ctx.warm.clone(),
                }
            })
            .collect();
        let next = AtomicUsize::new(0);
        let pool = if self.workers == 0 {
            default_workers()
        } else {
            self.workers
        }
        .min(subs.len())
        .max(1);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                let (subs, results, next, sub_ctxs) = (&subs, &results, &next, &sub_ctxs);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= subs.len() {
                        return;
                    }
                    let solved = Sequential.solve_flat(&subs[i].flat, &[], &sub_ctxs[i]);
                    *results[i]
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(solved);
                });
            }
        });
        // Stitch: UNSAT anywhere refutes the conjunction; Unknown anywhere
        // (budget/deadline/cancel) leaves the verdict open; otherwise merge
        // the sub-assignments over lower-bound defaults (unconstrained
        // variables belong to no component).
        let mut total = SearchStats::default();
        let mut sat = vec![false; flat.num_sat_vars];
        let mut ints: Vec<i64> = flat.int_bounds.iter().map(|b| b.0).collect();
        let mut unknown = false;
        for (sub, slot) in subs.iter().zip(&results) {
            let solved = slot
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .take();
            let Some((outcome, raw, stats)) = solved else {
                unknown = true;
                continue;
            };
            total.absorb(stats);
            match outcome {
                Outcome::Unsat => return (Outcome::Unsat, None, total),
                Outcome::Unknown => unknown = true,
                Outcome::Sat(_) => {
                    let raw = raw.expect("raw assignment accompanies Sat");
                    for (local, &global) in sub.bools.iter().enumerate() {
                        sat[global as usize] = raw.sat[local];
                    }
                    for (local, &global) in sub.ints.iter().enumerate() {
                        ints[global as usize] = raw.ints[local];
                    }
                }
            }
        }
        if unknown {
            return (Outcome::Unknown, None, total);
        }
        let merged = RawAssignment { sat, ints };
        let sol = merged.extract(flat);
        (Outcome::Sat(sol), Some(merged), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Bx, Ix};

    /// Two structurally independent blocks in one model: a chain of
    /// implications and an integer budget.
    fn two_block_model(unsat_second: bool) -> Model {
        let mut m = Model::new();
        let vs: Vec<_> = (0..5).map(|i| m.bool_var(format!("a{i}"))).collect();
        for w in vs.windows(2) {
            m.require(Bx::implies(Bx::var(w[0]), Bx::var(w[1])));
        }
        m.require(Bx::var(vs[0]));
        let x = m.int_var("x", 0, 10);
        let y = m.int_var("y", 0, 10);
        m.require(
            Ix::var(x)
                .add(Ix::var(y))
                .ge(Ix::lit(if unsat_second { 25 } else { 15 })),
        );
        m
    }

    #[test]
    fn decomposed_agrees_sat() {
        let m = two_block_model(false);
        let ctx = SolveCtx::default();
        let (o, _) = Decomposed { workers: 2 }.solve(&m, &ctx);
        let sol = o.solution().expect("both blocks satisfiable");
        assert!(sol.satisfies(&m));
    }

    #[test]
    fn decomposed_agrees_unsat() {
        let m = two_block_model(true);
        let ctx = SolveCtx::default();
        let (seq, _) = Sequential.solve(&m, &ctx);
        let (dec, _) = Decomposed { workers: 2 }.solve(&m, &ctx);
        assert_eq!(seq, Outcome::Unsat);
        assert_eq!(dec, Outcome::Unsat);
    }

    #[test]
    fn split_finds_components() {
        let m = two_block_model(false);
        let flat = flatten(&m);
        let subs = split_components(&flat).expect("two independent blocks");
        assert!(subs.len() >= 2, "got {} components", subs.len());
        // Every constrained variable lands in exactly one component.
        let mapped: usize = subs.iter().map(|s| s.bools.len()).sum();
        assert!(mapped <= flat.num_sat_vars);
    }

    #[test]
    fn single_component_falls_back() {
        let mut m = Model::new();
        let a = m.bool_var("a");
        let b = m.bool_var("b");
        m.require(Bx::or(vec![Bx::var(a), Bx::var(b)]));
        let flat = flatten(&m);
        // The TRUE-constant variable forms its own component, but the
        // or-clause couples a, b, and the Tseitin node.
        let subs = split_components(&flat);
        if let Some(subs) = &subs {
            assert!(subs.len() >= 2);
        }
        let (o, _) = Decomposed { workers: 1 }.solve(&m, &SolveCtx::default());
        assert!(o.solution().expect("trivially SAT").satisfies(&m));
    }

    #[test]
    fn engines_agree_on_random_models() {
        // Seeded differential over mixed bool/int models with several
        // independent groups; a root-level suite does the same end-to-end
        // through the compiler.
        let mut seed = 0x5eed_dec0_u64;
        let mut rng = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for case in 0..60 {
            let mut m = Model::new();
            let groups = 2 + (rng() % 3) as usize;
            for g in 0..groups {
                let bs: Vec<_> = (0..3).map(|i| m.bool_var(format!("g{g}b{i}"))).collect();
                let x = m.int_var(format!("g{g}x"), 0, 8);
                m.require(Bx::or(bs.iter().map(|&b| Bx::var(b)).collect()));
                if rng() % 2 == 0 {
                    m.require(Bx::implies(
                        Bx::var(bs[0]),
                        Ix::var(x).ge(Ix::lit((rng() % 12) as i64)),
                    ));
                }
                if rng() % 3 == 0 {
                    m.require(Bx::var(bs[0]));
                }
                if rng() % 4 == 0 {
                    m.require(Ix::var(x).le(Ix::lit((rng() % 6) as i64)));
                }
            }
            let ctx = SolveCtx::default();
            let (seq, _) = Sequential.solve(&m, &ctx);
            let (dec, _) = Decomposed { workers: 2 }.solve(&m, &ctx);
            match (&seq, &dec) {
                (Outcome::Sat(_), Outcome::Sat(s)) => {
                    assert!(s.satisfies(&m), "case {case}: stitched non-model")
                }
                (Outcome::Unsat, Outcome::Unsat) => {}
                other => panic!("case {case}: engines disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn clause_store_counts_hits_and_misses() {
        let m = two_block_model(false);
        let flat = flatten(&m);
        let store = Arc::new(ClauseStore::new());
        let ctx = SolveCtx {
            config: SolverConfig::default(),
            warm: Some(store.clone()),
        };
        let (first, _, _) = Sequential.solve_flat(&flat, &[], &ctx);
        assert!(first.is_sat());
        assert_eq!(store.hit_count(), 0);
        let misses_after_first = store.miss_count();
        assert!(misses_after_first >= 1);
        let (second, _, _) = Sequential.solve_flat(&flat, &[], &ctx);
        assert!(second.is_sat());
        // A trivial solve may export an empty bundle (nothing learned), in
        // which case the second lookup is a miss again; either way the
        // counters moved and the verdict is unchanged.
        assert!(store.hit_count() + store.miss_count() > misses_after_first);
    }

    #[test]
    fn clause_store_warms_resolves() {
        // A conflict-heavy UNSAT formula: the second solve through the same
        // store must hit and stay UNSAT.
        let mut m = Model::new();
        let vars: Vec<Vec<_>> = (0..6)
            .map(|p| (0..5).map(|h| m.bool_var(format!("p{p}h{h}"))).collect())
            .collect();
        for p in &vars {
            m.require(Bx::or(p.iter().map(|&v| Bx::var(v)).collect()));
        }
        for h in 0..5 {
            m.require(Bx::at_most_one(
                vars.iter().map(|row| Bx::var(row[h])).collect(),
            ));
        }
        let flat = flatten(&m);
        let store = Arc::new(ClauseStore::new());
        let ctx = SolveCtx {
            config: SolverConfig::default(),
            warm: Some(store.clone()),
        };
        let (first, _, _) = Sequential.solve_flat(&flat, &[], &ctx);
        assert_eq!(first, Outcome::Unsat);
        let (second, _, _) = Sequential.solve_flat(&flat, &[], &ctx);
        assert_eq!(second, Outcome::Unsat);
        assert_eq!(store.hit_count(), 1, "second solve must reuse the bundle");
    }

    #[test]
    fn fingerprint_distinguishes_bounds() {
        let m = two_block_model(false);
        let flat = flatten(&m);
        let bound: BoundConstraint = (vec![(1, FlatVar::Int(0))], 3);
        assert_ne!(
            flat.fingerprint(&[]),
            flat.fingerprint(std::slice::from_ref(&bound)),
            "branch-and-bound rounds must key separately"
        );
        let flat2 = flatten(&two_block_model(true));
        assert_ne!(flat.fingerprint(&[]), flat2.fingerprint(&[]));
    }

    #[test]
    fn minimize_via_trait_matches_direct() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 100);
        let y = m.int_var("y", 0, 100);
        m.require(Ix::var(x).add(Ix::var(y)).ge(Ix::lit(23)));
        let obj = Ix::var(x).add(Ix::var(y));
        let ctx = SolveCtx::default();
        for engine in [
            &Sequential as &dyn Solver,
            &Portfolio { workers: 3 },
            &Decomposed { workers: 2 },
        ] {
            let (best, _) = engine.minimize(&m, &obj, &ctx);
            assert_eq!(best.expect("feasible").1, 23, "engine {}", engine.name());
        }
    }
}
