//! Portfolio solving: race diversified CDCL searchers, first verdict wins.
//!
//! Modern SAT practice (ManySAT, Hamadi et al., JSAT 2009) runs several
//! differently-tuned copies of the same solver on one formula and takes
//! whichever finishes first — diversification (seeds, restart schedules,
//! activity decay, phase polarity) makes the copies explore the search
//! space in genuinely different orders, so the *minimum* of their runtimes
//! is often far below the median. This module implements that race on
//! `std::thread::scope` with a shared [`AtomicBool`] cancellation flag that
//! every worker polls once per propagation pass (see
//! [`SolverConfig::cancel`]).
//!
//! Accounting follows the compile driver's needs: the returned
//! [`SearchStats`] are the **winning worker's counters only**, plus the
//! `workers_spawned` / `workers_cancelled` pair — raced losers never
//! double-count into phase timings. When no worker reaches a verdict
//! (budget exhaustion), every worker's effort is summed, since all of it
//! was genuinely spent.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::flatten::{flatten, flatten_with_objective, FlatModel, FlatVar};
use crate::model::{Model, Solution};
use crate::search::{solve_flat_warm, RawAssignment, SearchStats, SolverConfig, WarmStart};
use crate::Outcome;

/// Lock a mutex, recovering from poisoning. A poisoned mutex here only
/// means some worker panicked mid-race; the guarded data (winner slot,
/// leftover stats) is always written atomically from the reader's point of
/// view — a worker either completed its insertion or never started it — so
/// the stored value stays coherent and the race result remains usable.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Consume a mutex, recovering from poisoning (see [`lock_recovering`]).
fn into_inner_recovering<T>(m: Mutex<T>) -> T {
    m.into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Portfolio workers to spawn by default: the machine's available
/// parallelism, capped at 8 (beyond that, diversification repeats and the
/// marginal worker mostly burns cache bandwidth).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The diversification table: worker `i`'s configuration, derived from a
/// base configuration. Worker 0 runs the base configuration unchanged (the
/// sequential twin), so a 1-worker portfolio degenerates to a sequential
/// solve. Workers 1–3 vary the restart schedule, activity decay, and
/// default polarity; workers ≥ 4 additionally draw pseudo-random initial
/// phases from distinct seeds.
pub fn diversify(base: &SolverConfig, i: usize) -> SolverConfig {
    let mut cfg = base.clone();
    match i {
        0 => {}
        1 => {
            // Aggressive restarts, opposite polarity.
            cfg.default_phase = !base.default_phase;
            cfg.restart_interval = 64;
        }
        2 => {
            // Slow decay (long memory), lazy restarts.
            cfg.activity_decay = 0.90;
            cfg.restart_interval = 256;
        }
        3 => {
            // Fast decay (short memory), rapid restarts.
            cfg.activity_decay = 0.99;
            cfg.restart_interval = 32;
        }
        _ => {
            // Random initial phases from a per-worker seed; stagger the
            // restart schedule so seeds don't share a rhythm.
            cfg.seed = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            cfg.default_phase = i % 2 == 1;
            cfg.restart_interval = base.restart_interval.max(32) << (i % 3);
        }
    }
    cfg
}

/// Race `workers` diversified searchers on a flattened model. The first
/// worker reaching SAT or UNSAT wins and cancels the rest; the result
/// carries the winner's counters plus the spawned/cancelled pair. When all
/// workers exhaust their budget the outcome is [`Outcome::Unknown`] with
/// every worker's effort summed.
pub fn solve_flat_portfolio(
    flat: &FlatModel,
    base: &SolverConfig,
    extra: &[(Vec<(i64, FlatVar)>, i64)],
    workers: usize,
) -> (Outcome, Option<RawAssignment>, SearchStats) {
    let (outcome, raw, stats, _) = solve_flat_portfolio_warm(flat, base, extra, workers, None);
    (outcome, raw, stats)
}

/// [`solve_flat_portfolio`] with warm-start seeding: every worker is seeded
/// with the same bundle (diversification still varies their schedules), and
/// the **winning worker's** export is returned so callers can persist the
/// freshest learned-clause database. `None` export when no worker reached a
/// verdict.
pub fn solve_flat_portfolio_warm(
    flat: &FlatModel,
    base: &SolverConfig,
    extra: &[(Vec<(i64, FlatVar)>, i64)],
    workers: usize,
    warm: Option<&WarmStart>,
) -> (
    Outcome,
    Option<RawAssignment>,
    SearchStats,
    Option<WarmStart>,
) {
    let n = workers.max(1);
    if n == 1 {
        let (outcome, raw, mut stats, export) = solve_flat_warm(flat, base, extra, warm);
        stats.workers_spawned += 1;
        return (outcome, raw, stats, Some(export));
    }
    let cancel = Arc::new(AtomicBool::new(false));
    // Winner slot plus the effort of workers that reached no verdict.
    type Verdict = (Outcome, Option<RawAssignment>, SearchStats, WarmStart);
    let winner: Mutex<Option<Verdict>> = Mutex::new(None);
    let leftovers: Mutex<SearchStats> = Mutex::new(SearchStats::default());
    std::thread::scope(|scope| {
        for i in 0..n {
            let mut cfg = diversify(base, i);
            cfg.cancel = Some(cancel.clone());
            let (winner, leftovers, cancel) = (&winner, &leftovers, &cancel);
            scope.spawn(move || {
                // A panicking worker must not take the race down with it:
                // `std::thread::scope` re-raises worker panics at the join
                // point, and a panic while holding either mutex would
                // poison it for every surviving worker. Catching here turns
                // a crashed worker into one that simply never reports —
                // its siblings keep racing and one of them decides.
                let solved = catch_unwind(AssertUnwindSafe(|| {
                    solve_flat_warm(flat, &cfg, extra, warm)
                }));
                let Ok((outcome, raw, stats, export)) = solved else {
                    return;
                };
                match outcome {
                    Outcome::Sat(_) | Outcome::Unsat => {
                        let mut w = lock_recovering(winner);
                        if w.is_none() {
                            *w = Some((outcome, raw, stats, export));
                            cancel.store(true, Ordering::Relaxed);
                        }
                        // A verdict that arrives after the race is decided
                        // is discarded like a cancelled worker.
                    }
                    Outcome::Unknown => {
                        lock_recovering(leftovers).absorb(stats);
                    }
                }
            });
        }
    });
    let won = into_inner_recovering(winner);
    match won {
        Some((outcome, raw, mut stats, export)) => {
            stats.workers_spawned += n as u64;
            stats.workers_cancelled += (n - 1) as u64;
            (outcome, raw, stats, Some(export))
        }
        None => {
            // Everyone exhausted the budget: all effort was real.
            let mut stats = into_inner_recovering(leftovers);
            stats.workers_spawned += n as u64;
            (Outcome::Unknown, None, stats, None)
        }
    }
}

/// Portfolio counterpart of [`crate::solve`]: flatten and race.
pub fn solve_portfolio(
    model: &Model,
    cfg: &SolverConfig,
    workers: usize,
) -> (Outcome, SearchStats) {
    let flat = flatten(model);
    let (outcome, _, stats) = solve_flat_portfolio(&flat, cfg, &[], workers);
    if let Outcome::Sat(ref s) = outcome {
        debug_assert!(s.satisfies(model), "portfolio returned a non-model");
    }
    (outcome, stats)
}

/// Branch-and-bound minimization where every round — the initial model and
/// each bound-tightening solve — is a portfolio race. Semantically
/// identical to [`crate::search::minimize_with`]: the returned objective
/// value is optimal; only which optimal *model* carries it may differ.
pub fn minimize_portfolio(
    model: &Model,
    objective: &crate::expr::Ix,
    cfg: &SolverConfig,
    workers: usize,
) -> (Option<(Solution, i64)>, SearchStats) {
    let flat = flatten_with_objective(model, Some(objective));
    let obj_terms = flat.objective.clone().expect("objective lowered");
    let mut extra: Vec<(Vec<(i64, FlatVar)>, i64)> = Vec::new();
    let mut best: Option<(Solution, i64)> = None;
    let mut total = SearchStats::default();
    loop {
        let (outcome, raw, stats) = solve_flat_portfolio(&flat, cfg, &extra, workers);
        total.absorb(stats);
        match outcome {
            Outcome::Sat(_) => {
                let raw = raw.expect("raw assignment accompanies Sat");
                let value = raw.eval_lin(&obj_terms) + flat.objective_constant;
                let sol = raw.extract(&flat);
                best = Some((sol, value));
                // Require strictly better: Σ obj_terms ≤ value - constant - 1.
                extra.push((obj_terms.clone(), value - flat.objective_constant - 1));
            }
            _ => return (best, total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Bx, Ix};
    use crate::model::Model;

    fn pigeonhole(pigeons: usize, holes: usize) -> Model {
        let mut m = Model::new();
        let vars: Vec<Vec<_>> = (0..pigeons)
            .map(|p| {
                (0..holes)
                    .map(|h| m.bool_var(format!("p{p}h{h}")))
                    .collect()
            })
            .collect();
        for p in &vars {
            m.require(Bx::or(p.iter().map(|&v| Bx::var(v)).collect()));
        }
        for h in 0..holes {
            m.require(Bx::at_most_one(
                vars.iter().map(|row| Bx::var(row[h])).collect(),
            ));
        }
        m
    }

    #[test]
    fn portfolio_sat() {
        let mut m = Model::new();
        let a = m.bool_var("a");
        let b = m.bool_var("b");
        m.require(Bx::or(vec![Bx::var(a), Bx::var(b)]));
        m.require(Bx::not(Bx::var(a)));
        let (outcome, stats) = solve_portfolio(&m, &SolverConfig::default(), 4);
        let sol = outcome.solution().unwrap();
        assert!(!sol.bool(a));
        assert!(sol.bool(b));
        assert_eq!(stats.workers_spawned, 4);
        assert_eq!(stats.workers_cancelled, 3);
    }

    #[test]
    fn portfolio_unsat() {
        let m = pigeonhole(6, 5);
        let (outcome, stats) = solve_portfolio(&m, &SolverConfig::default(), 3);
        assert_eq!(outcome, Outcome::Unsat);
        assert_eq!(stats.workers_spawned, 3);
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 10);
        m.require(Ix::var(x).ge(Ix::lit(3)));
        let (outcome, stats) = solve_portfolio(&m, &SolverConfig::default(), 1);
        assert!(outcome.is_sat());
        assert_eq!(stats.workers_spawned, 1);
        assert_eq!(stats.workers_cancelled, 0);
    }

    #[test]
    fn minimize_portfolio_matches_sequential_value() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 100);
        let y = m.int_var("y", 0, 100);
        m.require(Ix::var(x).add(Ix::var(y)).ge(Ix::lit(23)));
        let obj = Ix::var(x).add(Ix::var(y));
        let cfg = SolverConfig::default();
        let (seq, _) = crate::search::minimize_with(&m, &obj, &cfg);
        let (par, stats) = minimize_portfolio(&m, &obj, &cfg, 4);
        assert_eq!(seq.unwrap().1, par.unwrap().1);
        assert!(stats.workers_spawned >= 4, "one race per bound round");
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Mutex::new(41);
        // Poison the mutex by panicking while holding its guard.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison");
        }));
        assert!(m.is_poisoned());
        *lock_recovering(&m) += 1;
        assert_eq!(into_inner_recovering(m), 42);
    }

    #[test]
    fn portfolio_with_expired_deadline_returns_unknown_promptly() {
        use std::time::{Duration, Instant};
        let m = pigeonhole(12, 11); // far harder than the time allowed
        let flat = flatten(&m);
        let cfg = SolverConfig {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Default::default()
        };
        let t = Instant::now();
        let (outcome, _, stats) = solve_flat_portfolio(&flat, &cfg, &[], 4);
        assert_eq!(outcome, Outcome::Unknown);
        assert_eq!(stats.workers_spawned, 4);
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "expired deadline must stop all workers promptly: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn diversify_worker0_is_base() {
        let base = SolverConfig::default();
        let d0 = diversify(&base, 0);
        assert_eq!(d0.restart_interval, base.restart_interval);
        assert_eq!(d0.seed, 0);
        // Workers differ from each other in at least one dimension.
        let d1 = diversify(&base, 1);
        let d5 = diversify(&base, 5);
        assert_ne!(d1.restart_interval, base.restart_interval);
        assert_ne!(d5.seed, 0);
    }
}
