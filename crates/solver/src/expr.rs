//! Expression trees for the solver: boolean expressions ([`Bx`]), integer
//! expressions ([`Ix`]), and linear forms ([`LinExpr`]).
//!
//! Expressions are plain owned trees. They are cheap to build relative to the
//! cost of solving, and keeping them as ordinary `enum`s makes the flattening
//! pass in the native solver straightforward to audit.

use crate::model::{BoolId, IntId};

/// A variable reference usable inside a linear expression.
///
/// Boolean variables are interpreted as 0/1 integers, which is exactly the
/// coercion the paper uses in its encodings (e.g. `Σ If(f_s(I), 1, 0) = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarRef {
    /// An integer variable.
    Int(IntId),
    /// A boolean variable coerced to 0/1.
    Bool(BoolId),
}

/// A linear expression `constant + Σ coeff·var`.
///
/// `LinExpr` is the normal form that every [`Ix`] eventually lowers to; the
/// flattening pass introduces auxiliary integer variables for the non-linear
/// conveniences (`ite`, ceiling division).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Constant offset.
    pub constant: i64,
    /// Coefficient/variable pairs. Kept sorted and deduplicated by
    /// [`LinExpr::normalize`].
    pub terms: Vec<(i64, VarRef)>,
}

impl LinExpr {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> Self {
        LinExpr {
            constant: k,
            terms: Vec::new(),
        }
    }

    /// The expression `1·v`.
    pub fn var(v: VarRef) -> Self {
        LinExpr {
            constant: 0,
            terms: vec![(1, v)],
        }
    }

    /// Merge duplicate variables and drop zero coefficients.
    pub fn normalize(mut self) -> Self {
        self.terms.sort_by_key(|&(_, v)| v);
        let mut out: Vec<(i64, VarRef)> = Vec::with_capacity(self.terms.len());
        for (c, v) in self.terms {
            match out.last_mut() {
                Some((lc, lv)) if *lv == v => *lc += c,
                _ => out.push((c, v)),
            }
        }
        out.retain(|&(c, _)| c != 0);
        self.terms = out;
        self
    }

    /// `self + other` (DSL-style, by reference — not `std::ops::Add`).
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, other: &LinExpr) -> Self {
        self.constant += other.constant;
        self.terms.extend_from_slice(&other.terms);
        self.normalize()
    }

    /// `self - other` (DSL-style, by reference — not `std::ops::Sub`).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(mut self, other: &LinExpr) -> Self {
        self.constant -= other.constant;
        self.terms.extend(other.terms.iter().map(|&(c, v)| (-c, v)));
        self.normalize()
    }

    /// `k · self`.
    pub fn scale(mut self, k: i64) -> Self {
        self.constant *= k;
        for (c, _) in &mut self.terms {
            *c *= k;
        }
        self.normalize()
    }

    /// True if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A boolean expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bx {
    /// Constant `true`/`false`.
    Const(bool),
    /// A boolean variable.
    Var(BoolId),
    /// Negation.
    Not(Box<Bx>),
    /// N-ary conjunction. `And(vec![])` is `true`.
    And(Vec<Bx>),
    /// N-ary disjunction. `Or(vec![])` is `false`.
    Or(Vec<Bx>),
    /// Implication `a → b`.
    Implies(Box<Bx>, Box<Bx>),
    /// Equivalence `a ↔ b`.
    Iff(Box<Bx>, Box<Bx>),
    /// Linear comparison `lhs ⋈ rhs` over integer expressions.
    Cmp(CmpOp, Box<Ix>, Box<Ix>),
    /// At most one of the operands is true (pairwise encoding).
    AtMostOne(Vec<Bx>),
}

/// Comparison operators on integer expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `≤`
    Le,
    /// `<`
    Lt,
    /// `≥`
    Ge,
    /// `>`
    Gt,
}

impl Bx {
    /// A boolean variable.
    pub fn var(v: BoolId) -> Bx {
        Bx::Var(v)
    }

    /// `true` / `false`.
    pub fn lit(b: bool) -> Bx {
        Bx::Const(b)
    }

    /// Negation (with a couple of cheap simplifications).
    ///
    /// Named after the SMT connective on purpose (an associated function,
    /// not `std::ops::Not` — there is no `self` receiver).
    #[allow(clippy::should_implement_trait)]
    pub fn not(b: Bx) -> Bx {
        match b {
            Bx::Const(v) => Bx::Const(!v),
            Bx::Not(inner) => *inner,
            other => Bx::Not(Box::new(other)),
        }
    }

    /// N-ary conjunction.
    pub fn and(mut xs: Vec<Bx>) -> Bx {
        xs.retain(|x| !matches!(x, Bx::Const(true)));
        if xs.iter().any(|x| matches!(x, Bx::Const(false))) {
            return Bx::Const(false);
        }
        match xs.len() {
            0 => Bx::Const(true),
            1 => xs.pop().unwrap(),
            _ => Bx::And(xs),
        }
    }

    /// N-ary disjunction.
    pub fn or(mut xs: Vec<Bx>) -> Bx {
        xs.retain(|x| !matches!(x, Bx::Const(false)));
        if xs.iter().any(|x| matches!(x, Bx::Const(true))) {
            return Bx::Const(true);
        }
        match xs.len() {
            0 => Bx::Const(false),
            1 => xs.pop().unwrap(),
            _ => Bx::Or(xs),
        }
    }

    /// Implication `a → b`.
    pub fn implies(a: Bx, b: Bx) -> Bx {
        match (&a, &b) {
            (Bx::Const(false), _) | (_, Bx::Const(true)) => Bx::Const(true),
            (Bx::Const(true), _) => b,
            (_, Bx::Const(false)) => Bx::not(a),
            _ => Bx::Implies(Box::new(a), Box::new(b)),
        }
    }

    /// Equivalence `a ↔ b`.
    pub fn iff(a: Bx, b: Bx) -> Bx {
        Bx::Iff(Box::new(a), Box::new(b))
    }

    /// At most one of `xs` is true.
    pub fn at_most_one(xs: Vec<Bx>) -> Bx {
        Bx::AtMostOne(xs)
    }

    /// Exactly one of `xs` is true.
    pub fn exactly_one(xs: Vec<Bx>) -> Bx {
        Bx::and(vec![Bx::or(xs.clone()), Bx::AtMostOne(xs)])
    }
}

/// An integer expression tree.
///
/// Beyond linear arithmetic, `Ix` offers two conveniences that the Lyra
/// encodings need constantly:
///
/// * [`Ix::ite`] — `if b then e₁ else e₂` (e.g. `If(f_s(I), 1, 0)`),
/// * [`Ix::ceil_div`] — `⌈e / k⌉` for a *constant* k (memory-block math,
///   eqs. (2), (11), (15) of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ix {
    /// A linear expression.
    Lin(LinExpr),
    /// `if cond then a else b`.
    Ite(Box<Bx>, Box<Ix>, Box<Ix>),
    /// `⌈a / k⌉` with constant `k ≥ 1`.
    CeilDiv(Box<Ix>, i64),
    /// Sum of integer expressions.
    Sum(Vec<Ix>),
    /// `k · a` for constant `k`.
    Scaled(Box<Ix>, i64),
}

impl Ix {
    /// The constant `k`.
    pub fn lit(k: i64) -> Ix {
        Ix::Lin(LinExpr::constant(k))
    }

    /// An integer variable.
    pub fn var(v: IntId) -> Ix {
        Ix::Lin(LinExpr::var(VarRef::Int(v)))
    }

    /// A boolean variable coerced to 0/1.
    pub fn bool01(v: BoolId) -> Ix {
        Ix::Lin(LinExpr::var(VarRef::Bool(v)))
    }

    /// `if cond then a else b`.
    pub fn ite(cond: Bx, a: Ix, b: Ix) -> Ix {
        match cond {
            Bx::Const(true) => a,
            Bx::Const(false) => b,
            c => Ix::Ite(Box::new(c), Box::new(a), Box::new(b)),
        }
    }

    /// `⌈self / k⌉`, `k ≥ 1`. Panics on `k < 1`.
    pub fn ceil_div(self, k: i64) -> Ix {
        assert!(k >= 1, "ceil_div divisor must be >= 1, got {k}");
        if k == 1 {
            return self;
        }
        match self {
            Ix::Lin(l) if l.is_constant() => Ix::lit(div_ceil_i64(l.constant, k)),
            other => Ix::CeilDiv(Box::new(other), k),
        }
    }

    /// Sum of expressions.
    pub fn sum(xs: Vec<Ix>) -> Ix {
        match xs.len() {
            0 => Ix::lit(0),
            1 => xs.into_iter().next().unwrap(),
            _ => Ix::Sum(xs),
        }
    }

    /// `self + other` (DSL-style; the paper's encodings read as formulas).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Ix) -> Ix {
        Ix::sum(vec![self, other])
    }

    /// `k · self` for constant `k`.
    pub fn scale(self, k: i64) -> Ix {
        match self {
            Ix::Lin(l) => Ix::Lin(l.scale(k)),
            Ix::Sum(xs) => Ix::Sum(xs.into_iter().map(|x| x.scale(k)).collect()),
            Ix::Ite(c, a, b) => Ix::Ite(c, Box::new(a.scale(k)), Box::new(b.scale(k))),
            other => Ix::Scaled(Box::new(other), k),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Ix) -> Bx {
        Bx::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self ≠ other`.
    pub fn ne(self, other: Ix) -> Bx {
        Bx::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self ≤ other`.
    pub fn le(self, other: Ix) -> Bx {
        Bx::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Ix) -> Bx {
        Bx::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self ≥ other`.
    pub fn ge(self, other: Ix) -> Bx {
        Bx::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Ix) -> Bx {
        Bx::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }
}

/// Ceiling division on `i64` for non-negative numerators.
pub fn div_ceil_i64(a: i64, b: i64) -> i64 {
    debug_assert!(b >= 1);
    if a >= 0 {
        (a + b - 1) / b
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn linexpr_normalizes_duplicates() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 10);
        let e = LinExpr {
            constant: 3,
            terms: vec![
                (2, VarRef::Int(x)),
                (5, VarRef::Int(x)),
                (0, VarRef::Int(x)),
            ],
        }
        .normalize();
        assert_eq!(e.terms, vec![(7, VarRef::Int(x))]);
        assert_eq!(e.constant, 3);
    }

    #[test]
    fn linexpr_sub_cancels() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 10);
        let a = LinExpr::var(VarRef::Int(x));
        let b = LinExpr::var(VarRef::Int(x));
        let d = a.sub(&b);
        assert!(d.is_constant());
        assert_eq!(d.constant, 0);
    }

    #[test]
    fn bx_simplifications() {
        assert_eq!(Bx::and(vec![]), Bx::Const(true));
        assert_eq!(Bx::or(vec![]), Bx::Const(false));
        assert_eq!(
            Bx::and(vec![Bx::Const(false), Bx::Const(true)]),
            Bx::Const(false)
        );
        assert_eq!(Bx::or(vec![Bx::Const(true)]), Bx::Const(true));
        assert_eq!(Bx::not(Bx::Const(true)), Bx::Const(false));
        assert_eq!(Bx::not(Bx::not(Bx::Const(false))), Bx::Const(false));
        assert_eq!(
            Bx::implies(Bx::Const(false), Bx::Const(false)),
            Bx::Const(true)
        );
    }

    #[test]
    fn ix_constant_folding() {
        assert_eq!(Ix::lit(10).ceil_div(3), Ix::lit(4));
        assert_eq!(Ix::lit(9).ceil_div(3), Ix::lit(3));
        assert_eq!(Ix::lit(5).ceil_div(1), Ix::lit(5));
    }

    #[test]
    #[should_panic]
    fn ceil_div_rejects_zero() {
        let _ = Ix::lit(4).ceil_div(0);
    }

    #[test]
    fn div_ceil_matches_manual() {
        assert_eq!(div_ceil_i64(0, 4), 0);
        assert_eq!(div_ceil_i64(1, 4), 1);
        assert_eq!(div_ceil_i64(4, 4), 1);
        assert_eq!(div_ceil_i64(5, 4), 2);
    }
}
