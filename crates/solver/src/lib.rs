#![warn(missing_docs)]
//! # lyra-solver — a native constraint solver for the Lyra compiler
//!
//! The Lyra paper (SIGCOMM 2020) encodes program placement and chip resource
//! constraints as an SMT formula and solves it with Z3. This crate provides a
//! from-scratch, dependency-free solver for the *fragment of SMT Lyra
//! actually needs*: boolean structure (and/or/not/implies/iff/ite) over
//! boolean variables and **linear comparisons over bounded integers**, plus
//! integer `ite`, ceiling division by constants, and linear objectives.
//!
//! The solver is deliberately simple and robust (in the spirit of smoltcp):
//!
//! * expressions are plain trees ([`Bx`], [`Ix`]) built with ordinary
//!   constructors — no macros, no type-level tricks;
//! * [`flatten`] lowers a [`Model`] to CNF clauses (Tseitin transformation)
//!   plus normalized linear atoms (`Σ cᵢ·vᵢ ≤ k`);
//! * [`solve`] runs a CDCL-style search: two-watched-literal unit
//!   propagation, 1-UIP conflict analysis with non-chronological
//!   backjumping, activity-ordered decisions with phase saving, geometric
//!   restarts, bounds-consistency propagation on active linear atoms, and
//!   interval splitting for any integers left unfixed;
//! * [`minimize`] wraps `solve` in a branch-and-bound loop.
//!
//! Every entry point reports [`SearchStats`] (decisions, propagations,
//! conflicts, learned clauses, restarts) so the compile driver can expose
//! solver effort per compilation.
//!
//! ## Example
//!
//! ```
//! use lyra_solver::{Model, Bx, Ix};
//!
//! let mut m = Model::new();
//! let deploy_a = m.bool_var("deploy_a");
//! let deploy_b = m.bool_var("deploy_b");
//! let entries = m.int_var("entries", 0, 4096);
//!
//! // The table must be deployed somewhere.
//! m.require(Bx::or(vec![Bx::var(deploy_a), Bx::var(deploy_b)]));
//! // If deployed on A, at least 1024 entries must fit there.
//! m.require(Bx::implies(
//!     Bx::var(deploy_a),
//!     Ix::var(entries).ge(Ix::lit(1024)),
//! ));
//!
//! let sol = lyra_solver::solve(&m).solution().expect("satisfiable");
//! assert!(sol.bool(deploy_a) || sol.bool(deploy_b));
//! ```

pub mod decompose;
pub mod expr;
pub mod flatten;
pub mod model;
pub mod portfolio;
pub mod search;

pub use decompose::{
    BoundConstraint, ClauseStore, Decomposed, Portfolio, Sequential, SolveCtx, Solver,
};
pub use expr::{Bx, Ix, LinExpr};
pub use flatten::{flatten, FlatModel, FlatVar};
pub use model::{BoolId, IntId, Model, Solution};
pub use portfolio::{
    minimize_portfolio, solve_flat_portfolio, solve_flat_portfolio_warm, solve_portfolio,
};
pub use search::{
    minimize, solve, solve_flat, solve_flat_warm, RawAssignment, SearchStats, SolverConfig,
    WarmStart,
};

/// Outcome of a solver invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A satisfying assignment was found.
    Sat(Solution),
    /// The formula is unsatisfiable.
    Unsat,
    /// The search budget (decision limit) was exhausted.
    Unknown,
}

impl Outcome {
    /// Returns the solution if the outcome is [`Outcome::Sat`].
    pub fn solution(self) -> Option<Solution> {
        match self {
            Outcome::Sat(s) => Some(s),
            _ => None,
        }
    }

    /// True if the outcome is [`Outcome::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }
}
