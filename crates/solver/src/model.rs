//! The constraint [`Model`]: variable declarations, required constraints, and
//! solved [`Solution`]s.

use crate::expr::Bx;

/// Identifier of a boolean variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoolId(pub(crate) u32);

/// Identifier of an integer variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntId(pub(crate) u32);

impl BoolId {
    /// Raw index of this variable (stable within its model).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl IntId {
    /// Raw index of this variable (stable within its model).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declaration record for a boolean variable.
#[derive(Debug, Clone)]
pub struct BoolDecl {
    /// Human-readable name (used in debugging output and diagnostics).
    pub name: String,
}

/// Declaration record for a bounded integer variable.
#[derive(Debug, Clone)]
pub struct IntDecl {
    /// Human-readable name.
    pub name: String,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// A constraint model: variables plus a conjunction of required boolean
/// expressions.
///
/// `Model` is backend-agnostic — the native solver flattens and searches it,
/// and an external SMT backend could translate the identical structure.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) bools: Vec<BoolDecl>,
    pub(crate) ints: Vec<IntDecl>,
    pub(crate) constraints: Vec<Bx>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a fresh boolean variable.
    pub fn bool_var(&mut self, name: impl Into<String>) -> BoolId {
        let id = BoolId(self.bools.len() as u32);
        self.bools.push(BoolDecl { name: name.into() });
        id
    }

    /// Declare a fresh integer variable with inclusive bounds `[lo, hi]`.
    ///
    /// Panics if `lo > hi`.
    pub fn int_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> IntId {
        let name = name.into();
        assert!(lo <= hi, "int var {name}: empty domain [{lo}, {hi}]");
        let id = IntId(self.ints.len() as u32);
        self.ints.push(IntDecl { name, lo, hi });
        id
    }

    /// Add a constraint that every solution must satisfy.
    pub fn require(&mut self, c: Bx) {
        self.constraints.push(c);
    }

    /// Number of declared boolean variables.
    pub fn num_bools(&self) -> usize {
        self.bools.len()
    }

    /// Number of declared integer variables.
    pub fn num_ints(&self) -> usize {
        self.ints.len()
    }

    /// Number of required constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Declaration of a boolean variable.
    pub fn bool_decl(&self, id: BoolId) -> &BoolDecl {
        &self.bools[id.index()]
    }

    /// Declaration of an integer variable.
    pub fn int_decl(&self, id: IntId) -> &IntDecl {
        &self.ints[id.index()]
    }

    /// Iterate over all constraints.
    pub fn constraints(&self) -> &[Bx] {
        &self.constraints
    }

    /// Iterate over boolean declarations with their ids.
    pub fn bool_decls(&self) -> impl Iterator<Item = (BoolId, &BoolDecl)> {
        self.bools
            .iter()
            .enumerate()
            .map(|(i, d)| (BoolId(i as u32), d))
    }

    /// Iterate over integer declarations with their ids.
    pub fn int_decls(&self) -> impl Iterator<Item = (IntId, &IntDecl)> {
        self.ints
            .iter()
            .enumerate()
            .map(|(i, d)| (IntId(i as u32), d))
    }
}

/// A satisfying assignment produced by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    pub(crate) bools: Vec<bool>,
    pub(crate) ints: Vec<i64>,
}

impl Solution {
    /// Construct a solution from raw assignments (used by backends).
    pub fn from_parts(bools: Vec<bool>, ints: Vec<i64>) -> Self {
        Solution { bools, ints }
    }

    /// Value of a boolean variable.
    pub fn bool(&self, id: BoolId) -> bool {
        self.bools[id.index()]
    }

    /// Value of an integer variable.
    pub fn int(&self, id: IntId) -> i64 {
        self.ints[id.index()]
    }

    /// Evaluate a boolean expression under this solution.
    pub fn eval_bx(&self, bx: &Bx) -> bool {
        use crate::expr::CmpOp;
        match bx {
            Bx::Const(b) => *b,
            Bx::Var(v) => self.bool(*v),
            Bx::Not(b) => !self.eval_bx(b),
            Bx::And(xs) => xs.iter().all(|x| self.eval_bx(x)),
            Bx::Or(xs) => xs.iter().any(|x| self.eval_bx(x)),
            Bx::Implies(a, b) => !self.eval_bx(a) || self.eval_bx(b),
            Bx::Iff(a, b) => self.eval_bx(a) == self.eval_bx(b),
            Bx::AtMostOne(xs) => xs.iter().filter(|x| self.eval_bx(x)).count() <= 1,
            Bx::Cmp(op, a, b) => {
                let (a, b) = (self.eval_ix(a), self.eval_ix(b));
                match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Le => a <= b,
                    CmpOp::Lt => a < b,
                    CmpOp::Ge => a >= b,
                    CmpOp::Gt => a > b,
                }
            }
        }
    }

    /// Evaluate an integer expression under this solution.
    pub fn eval_ix(&self, ix: &crate::expr::Ix) -> i64 {
        use crate::expr::{div_ceil_i64, Ix, VarRef};
        match ix {
            Ix::Lin(l) => {
                l.constant
                    + l.terms
                        .iter()
                        .map(|&(c, v)| {
                            c * match v {
                                VarRef::Int(i) => self.int(i),
                                VarRef::Bool(b) => self.bool(b) as i64,
                            }
                        })
                        .sum::<i64>()
            }
            Ix::Ite(c, a, b) => {
                if self.eval_bx(c) {
                    self.eval_ix(a)
                } else {
                    self.eval_ix(b)
                }
            }
            Ix::CeilDiv(a, k) => div_ceil_i64(self.eval_ix(a), *k),
            Ix::Sum(xs) => xs.iter().map(|x| self.eval_ix(x)).sum(),
            Ix::Scaled(a, k) => k * self.eval_ix(a),
        }
    }

    /// Check that this solution satisfies every constraint of `model`.
    ///
    /// Used by tests and as a final sanity check by the search loop.
    pub fn satisfies(&self, model: &Model) -> bool {
        model.constraints.iter().all(|c| self.eval_bx(c))
            && model
                .ints
                .iter()
                .enumerate()
                .all(|(i, d)| (d.lo..=d.hi).contains(&self.ints[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Ix;

    #[test]
    fn declares_and_indexes() {
        let mut m = Model::new();
        let a = m.bool_var("a");
        let x = m.int_var("x", -5, 5);
        assert_eq!(m.num_bools(), 1);
        assert_eq!(m.num_ints(), 1);
        assert_eq!(m.bool_decl(a).name, "a");
        assert_eq!(m.int_decl(x).lo, -5);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_domain() {
        let mut m = Model::new();
        let _ = m.int_var("x", 3, 2);
    }

    #[test]
    fn solution_eval() {
        let mut m = Model::new();
        let a = m.bool_var("a");
        let x = m.int_var("x", 0, 100);
        let sol = Solution::from_parts(vec![true], vec![7]);
        assert!(sol.bool(a));
        assert_eq!(sol.int(x), 7);
        // (a ? x : 0) + 3 == 10
        let e = Ix::ite(Bx::var(a), Ix::var(x), Ix::lit(0)).add(Ix::lit(3));
        assert_eq!(sol.eval_ix(&e), 10);
        assert!(sol.eval_bx(&e.eq(Ix::lit(10))));
    }

    #[test]
    fn satisfies_checks_bounds() {
        let mut m = Model::new();
        let _x = m.int_var("x", 0, 5);
        let bad = Solution::from_parts(vec![], vec![9]);
        assert!(!bad.satisfies(&m));
        let ok = Solution::from_parts(vec![], vec![4]);
        assert!(ok.satisfies(&m));
    }
}
