//! CDCL(T)-style search over a [`FlatModel`].
//!
//! The boolean core is conflict-driven clause learning: two-watched-literal
//! unit propagation, 1-UIP conflict analysis with non-chronological
//! backjumping, activity-ordered decisions with phase saving, and geometric
//! restarts. The theory side is bounds-consistency propagation over the
//! linear atoms the current boolean assignment activates; theory conflicts
//! and theory-propagated literals are handled conservatively (they block
//! resolution, falling back to a decision-negation clause, which keeps
//! learning sound without tracking full theory explanations).
//!
//! Integers left unfixed once every boolean is assigned are resolved by
//! interval splitting, chronologically; exhausting the splits counts as a
//! theory conflict for the boolean layer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::flatten::{flatten, flatten_with_objective, FlatModel, FlatVar, Lit};
use crate::model::{Model, Solution};
use crate::Outcome;

/// Tunables for the native search.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Abort with [`Outcome::Unknown`] after this many decisions.
    pub max_decisions: u64,
    /// Default phase for boolean decisions when no phase has been saved
    /// (`false` = try "not deployed" first, which suits Lyra's placement
    /// variables).
    pub default_phase: bool,
    /// Conflicts before the first restart (grows geometrically; 0 disables
    /// restarts).
    pub restart_interval: u64,
    /// Activity decay factor applied at each conflict.
    pub activity_decay: f64,
    /// Initial phase hints per SAT variable (from a previous solution) —
    /// the solver tries these values first, which keeps successive
    /// placements stable under small program changes.
    pub phase_hints: Vec<(u32, bool)>,
    /// Value hints per integer variable (flat index), from a previous
    /// solution. Where the bounds still admit it, the integer phase
    /// branches straight to `[hint, hi]` before bisecting, so solution
    /// extraction (which reads the lower bound) lands on the hinted value
    /// when it is feasible. This is the integer half of incremental
    /// re-solving: entry-shard sizes stay where a previous placement put
    /// them instead of collapsing to whatever the bisection finds first,
    /// which is what keeps table-entry churn proportional to the fault
    /// rather than the fleet.
    pub int_hints: Vec<(u32, i64)>,
    /// Seed for pseudo-random initial phases (xorshift64*). `0` keeps the
    /// deterministic `default_phase` initialization; portfolio workers use
    /// distinct non-zero seeds to diversify their starting polarities.
    /// Phase hints still override seeded phases.
    pub seed: u64,
    /// Live learned clauses tolerated before a database reduction halves
    /// them (Glucose-style LBD policy; glue clauses with LBD ≤ 2 and reason
    /// clauses of the current trail are never deleted). `0` disables
    /// reduction entirely.
    pub learned_limit: usize,
    /// Cooperative cancellation flag shared between racing searches. The
    /// propagation loop polls it once per pass; when set, the search stops
    /// and reports [`Outcome::Unknown`].
    pub cancel: Option<Arc<AtomicBool>>,
    /// Wall-clock deadline. Checked before the search starts and polled
    /// (decimated — every [`DEADLINE_POLL_MASK`]+1 propagation passes, to
    /// keep `Instant::now` off the hot path) during propagation; on expiry
    /// the search winds down with [`Outcome::Unknown`] and, when a shared
    /// [`SolverConfig::cancel`] flag is present, stores `true` into it so
    /// sibling portfolio workers observe the same deadline.
    pub deadline: Option<std::time::Instant>,
}

/// The deadline is polled when `passes & DEADLINE_POLL_MASK == 0` — once
/// every 64 propagation passes. Propagation passes are short (micro- to
/// low-milliseconds), so expiry is still observed within single-digit
/// milliseconds while `Instant::now` stays off the fast path.
const DEADLINE_POLL_MASK: u64 = 63;

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_decisions: 5_000_000,
            default_phase: false,
            restart_interval: 128,
            activity_decay: 0.95,
            phase_hints: Vec::new(),
            int_hints: Vec::new(),
            seed: 0,
            learned_limit: 2_000,
            cancel: None,
            deadline: None,
        }
    }
}

/// Counters describing a finished search.
///
/// Returned by every solver entry point and aggregated across
/// branch-and-bound iterations by [`minimize_with`]; the compile driver
/// surfaces them on `CompileOutput` so long solves are observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Boolean and integer decisions made.
    pub decisions: u64,
    /// Literals assigned by propagation.
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned-clause database reductions performed.
    pub reductions: u64,
    /// Learned clauses deleted by database reductions.
    pub clauses_deleted: u64,
    /// Portfolio workers spawned on behalf of this solve (0 for a plain
    /// sequential search; set by [`crate::portfolio`]).
    pub workers_spawned: u64,
    /// Portfolio workers whose results were discarded — either cancelled
    /// mid-search or finished after another worker already won the race.
    pub workers_cancelled: u64,
}

impl SearchStats {
    /// Accumulate another run's counters into this one (used when a solve
    /// is a sequence of searches, e.g. branch-and-bound minimization).
    ///
    /// Portfolio races absorb only the *winning* worker's counters (plus
    /// the `workers_spawned` / `workers_cancelled` pair), so phase timings
    /// never double-count raced searches.
    pub fn absorb(&mut self, other: SearchStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.learned += other.learned;
        self.restarts += other.restarts;
        self.reductions += other.reductions;
        self.clauses_deleted += other.clauses_deleted;
        self.workers_spawned += other.workers_spawned;
        self.workers_cancelled += other.workers_cancelled;
    }
}

/// Solve a model with default configuration.
pub fn solve(model: &Model) -> Outcome {
    let flat = flatten(model);
    let (outcome, _, _) = solve_flat(&flat, &SolverConfig::default(), &[]);
    finish(model, outcome)
}

/// Minimize `objective` subject to the model's constraints, by iterated
/// solving with a tightening bound (branch-and-bound).
///
/// Returns the best solution found together with its objective value.
pub fn minimize(model: &Model, objective: &crate::expr::Ix) -> Option<(Solution, i64)> {
    minimize_with(model, objective, &SolverConfig::default()).0
}

/// [`minimize`] with an explicit configuration.
///
/// Also returns the [`SearchStats`] summed over every branch-and-bound
/// iteration, so callers can report total solver effort.
pub fn minimize_with(
    model: &Model,
    objective: &crate::expr::Ix,
    cfg: &SolverConfig,
) -> (Option<(Solution, i64)>, SearchStats) {
    let flat = flatten_with_objective(model, Some(objective));
    let obj_terms = flat.objective.clone().expect("objective lowered");
    let mut extra: Vec<(Vec<(i64, FlatVar)>, i64)> = Vec::new();
    let mut best: Option<(Solution, i64)> = None;
    let mut total = SearchStats::default();
    loop {
        let (outcome, raw, stats) = solve_flat(&flat, cfg, &extra);
        total.absorb(stats);
        match outcome {
            Outcome::Sat(_) => {
                let raw = raw.expect("raw assignment accompanies Sat");
                let value = raw.eval_lin(&obj_terms) + flat.objective_constant;
                let sol = raw.extract(&flat);
                best = Some((sol, value));
                // Require strictly better: Σ obj_terms ≤ value - constant - 1.
                extra.push((obj_terms.clone(), value - flat.objective_constant - 1));
            }
            _ => return (best, total),
        }
    }
}

fn finish(model: &Model, outcome: Outcome) -> Outcome {
    if let Outcome::Sat(ref s) = outcome {
        debug_assert!(s.satisfies(model), "solver returned a non-model");
    }
    outcome
}

/// Raw (flat) assignment: every SAT variable and every integer variable.
#[derive(Debug, Clone)]
pub struct RawAssignment {
    /// SAT variable values.
    pub sat: Vec<bool>,
    /// Integer variable values (model + auxiliary).
    pub ints: Vec<i64>,
}

impl RawAssignment {
    /// Evaluate a linear combination under this assignment.
    pub fn eval_lin(&self, terms: &[(i64, FlatVar)]) -> i64 {
        terms
            .iter()
            .map(|&(c, v)| {
                c * match v {
                    FlatVar::Bool(b) => self.sat[b as usize] as i64,
                    FlatVar::Int(i) => self.ints[i as usize],
                }
            })
            .sum()
    }

    /// Project onto the source model's variables.
    pub fn extract(&self, flat: &FlatModel) -> Solution {
        Solution::from_parts(
            self.sat[..flat.num_model_bools].to_vec(),
            self.ints[..flat.num_model_ints].to_vec(),
        )
    }
}

/// Solve a flattened model, with extra always-active linear constraints
/// (used by branch-and-bound). Returns the outcome projected onto model
/// variables, the raw assignment when satisfiable, and the search counters.
pub fn solve_flat(
    flat: &FlatModel,
    cfg: &SolverConfig,
    extra: &[(Vec<(i64, FlatVar)>, i64)],
) -> (Outcome, Option<RawAssignment>, SearchStats) {
    let mut s = Search::new(flat, cfg, extra, None);
    let (outcome, raw) = s.run();
    (outcome, raw, s.stats)
}

/// A warm-start bundle exported from a finished search: the learned clauses
/// still alive at export time (with their creation LBD), the per-variable
/// VSIDS activity, and the saved phases.
///
/// Seeding a new search over the **same formula** with this bundle installs
/// the clauses as if they had just been learned again, which is sound
/// because every learned clause is implied by the formula (plus the `extra`
/// bounds) it was learned from. Callers must guarantee the formulas match —
/// [`crate::decompose::ClauseStore`] does so by keying bundles with
/// [`FlatModel::fingerprint`], `extra` included.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Surviving learned clauses, each with the LBD recorded at creation.
    pub clauses: Vec<(Vec<Lit>, u32)>,
    /// VSIDS-lite activity per SAT variable.
    pub activity: Vec<f64>,
    /// Saved decision phase per SAT variable.
    pub phases: Vec<bool>,
}

impl WarmStart {
    /// True when the bundle carries nothing a fresh search would use.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty() && self.activity.is_empty() && self.phases.is_empty()
    }
}

/// [`solve_flat`] seeded with an optional [`WarmStart`] bundle; always
/// returns the finished search's own bundle so callers can persist it for
/// the next solve of the same formula.
pub fn solve_flat_warm(
    flat: &FlatModel,
    cfg: &SolverConfig,
    extra: &[(Vec<(i64, FlatVar)>, i64)],
    warm: Option<&WarmStart>,
) -> (Outcome, Option<RawAssignment>, SearchStats, WarmStart) {
    let mut s = Search::new(flat, cfg, extra, warm);
    let (outcome, raw) = s.run();
    let export = s.export_warm();
    (outcome, raw, s.stats, export)
}

/// Why a SAT variable holds its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// A decision.
    Decision,
    /// Unit-propagated by clause index.
    Clause(usize),
    /// Forced by linear (theory) propagation — no clause explanation.
    Theory,
}

#[derive(Debug, Clone, Copy)]
enum TrailItem {
    Sat(u32),
    IntLo(u32, i64),
    IntHi(u32, i64),
    Activated,
}

/// An integer split decision (the post-boolean phase). The split point
/// `mid` partitions the interval into `[lo, mid]` and `[mid+1, hi]`;
/// `upper_first` says which half the first branch took (true for hinted
/// variables branching straight to their hint), `flipped` whether the
/// other half has been tried after a conflict.
#[derive(Debug, Clone, Copy)]
struct IntSplit {
    var: u32,
    mid: i64,
    upper_first: bool,
    flipped: bool,
    trail_mark: usize,
}

enum Conflict {
    /// A clause became empty.
    Clause(usize),
    /// A linear constraint is unsatisfiable under current bounds.
    Theory,
}

struct Search<'a> {
    flat: &'a FlatModel,
    cfg: &'a SolverConfig,
    stats: SearchStats,
    /// -1 unassigned, 0 false, 1 true.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    lo: Vec<i64>,
    hi: Vec<i64>,
    /// Watched literals: literal code → clause indices watching it.
    watches: Vec<Vec<usize>>,
    /// Original + learned clauses; first two positions are watched.
    clauses: Vec<Vec<Lit>>,
    num_original_clauses: usize,
    trail: Vec<TrailItem>,
    /// Trail mark at the start of each decision level (level 0 excluded).
    level_marks: Vec<usize>,
    /// Active linear constraints as (terms, k) meaning Σ ≤ k.
    active: Vec<(Vec<(i64, FlatVar)>, i64)>,
    queue: std::collections::VecDeque<(Lit, Reason)>,
    /// Integer split stack (post-boolean phase).
    int_splits: Vec<IntSplit>,
    /// Value hint per integer variable (dense over flat int indices).
    int_hint: Vec<Option<i64>>,
    /// VSIDS-lite activity per variable.
    activity: Vec<f64>,
    activity_inc: f64,
    saved_phase: Vec<bool>,
    conflicts_since_restart: u64,
    restart_limit: u64,
    /// LBD (literal block distance) per clause; 0 for original clauses.
    lbd: Vec<u32>,
    /// MiniSat-style activity per clause (bumped when a clause participates
    /// in conflict analysis); only meaningful for learned clauses.
    clause_act: Vec<f64>,
    clause_act_inc: f64,
    /// Learned clauses currently alive (not tombstoned by a reduction).
    learned_live: usize,
    /// Live-learned-clause count that triggers the next reduction.
    reduce_limit: usize,
    /// Set when the shared cancellation flag was observed.
    cancelled: bool,
    /// Propagation passes completed; drives decimated deadline polling.
    passes: u64,
}

impl<'a> Search<'a> {
    fn new(
        flat: &'a FlatModel,
        cfg: &'a SolverConfig,
        extra: &[(Vec<(i64, FlatVar)>, i64)],
        warm: Option<&WarmStart>,
    ) -> Self {
        let nvars = flat.num_sat_vars;
        let num_clauses = flat.clauses.len();
        let mut s = Search {
            flat,
            cfg,
            stats: SearchStats::default(),
            assign: vec![-1; nvars],
            level: vec![0; nvars],
            reason: vec![Reason::Decision; nvars],
            lo: flat.int_bounds.iter().map(|b| b.0).collect(),
            hi: flat.int_bounds.iter().map(|b| b.1).collect(),
            watches: vec![Vec::new(); nvars * 2],
            clauses: flat.clauses.clone(),
            num_original_clauses: flat.clauses.len(),
            trail: Vec::new(),
            level_marks: Vec::new(),
            active: extra.to_vec(),
            queue: std::collections::VecDeque::new(),
            int_splits: Vec::new(),
            int_hint: {
                let mut hints = vec![None; flat.int_bounds.len()];
                for &(v, t) in &cfg.int_hints {
                    if (v as usize) < hints.len() {
                        hints[v as usize] = Some(t);
                    }
                }
                hints
            },
            activity: vec![0.0; nvars],
            activity_inc: 1.0,
            saved_phase: vec![cfg.default_phase; nvars],
            conflicts_since_restart: 0,
            restart_limit: cfg.restart_interval,
            lbd: vec![0; num_clauses],
            clause_act: vec![0.0; num_clauses],
            clause_act_inc: 1.0,
            learned_live: 0,
            reduce_limit: cfg.learned_limit,
            cancelled: false,
            passes: 0,
        };
        if cfg.seed != 0 {
            // Diversified initial polarities (xorshift64*); warm phases and
            // hints below still take precedence.
            let mut x = cfg.seed;
            for p in s.saved_phase.iter_mut() {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *p = x.wrapping_mul(0x2545_f491_4f6c_dd1d) & 1 == 1;
            }
        }
        if let Some(w) = warm {
            // Warm-start seeding. Phases and activity apply only when the
            // bundle's dimensions match this formula exactly (they always
            // do under fingerprint-keyed lookup; anything else is stale and
            // silently dropped). Clauses are installed as learned clauses —
            // watched, LBD-scored, and eligible for the usual database
            // reduction — before `init_watches` wires the watch lists.
            if w.phases.len() == nvars {
                s.saved_phase.copy_from_slice(&w.phases);
            }
            if w.activity.len() == nvars {
                s.activity.copy_from_slice(&w.activity);
            }
            for (cl, lbd) in &w.clauses {
                if cl.len() >= 2 && cl.iter().all(|l| (l.var() as usize) < nvars) {
                    s.lbd.push(*lbd);
                    s.clause_act.push(0.0);
                    s.learned_live += 1;
                    s.clauses.push(cl.clone());
                }
            }
        }
        for &(v, phase) in &cfg.phase_hints {
            if (v as usize) < s.saved_phase.len() {
                s.saved_phase[v as usize] = phase;
            }
        }
        s.init_watches();
        s
    }

    /// Export the warm-start bundle of this search: surviving learned
    /// clauses (seeded ones included — they sit past
    /// `num_original_clauses` like any learned clause), activity, and
    /// saved phases.
    fn export_warm(&self) -> WarmStart {
        let clauses = (self.num_original_clauses..self.clauses.len())
            .filter(|&ci| !self.clauses[ci].is_empty())
            .map(|ci| (self.clauses[ci].clone(), self.lbd[ci]))
            .collect();
        WarmStart {
            clauses,
            activity: self.activity.clone(),
            phases: self.saved_phase.clone(),
        }
    }

    fn init_watches(&mut self) {
        for ci in 0..self.clauses.len() {
            let cl = &self.clauses[ci];
            if cl.len() >= 2 {
                self.watches[cl[0].0 as usize].push(ci);
                self.watches[cl[1].0 as usize].push(ci);
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.level_marks.len() as u32
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        match self.assign[lit.var() as usize] {
            -1 => None,
            v => Some((v == 1) != lit.is_neg()),
        }
    }

    fn bump(&mut self, var: u32) {
        self.activity[var as usize] += self.activity_inc;
        if self.activity[var as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    fn bump_clause(&mut self, ci: usize) {
        self.clause_act[ci] += self.clause_act_inc;
        if self.clause_act[ci] > 1e100 {
            for a in &mut self.clause_act {
                *a *= 1e-100;
            }
            self.clause_act_inc *= 1e-100;
        }
    }

    /// Literal block distance: distinct decision levels among the clause's
    /// literals (level-0 facts excluded). Glue clauses (LBD ≤ 2) connect at
    /// most two decision levels and are kept forever.
    fn lbd_of(&self, clause: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = clause
            .iter()
            .map(|l| self.level[l.var() as usize])
            .filter(|&lv| lv > 0)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Halve the learned-clause database, keeping glue clauses (LBD ≤ 2),
    /// reason clauses of the current trail or pending queue, and the
    /// better (low-LBD / high-activity) half of the rest. Deleted clauses
    /// are tombstoned (emptied and detached from their watch lists), so
    /// surviving clause indices — and with them every `Reason::Clause`
    /// reference and watch entry — stay valid.
    fn reduce_learned(&mut self) {
        self.stats.reductions += 1;
        // Locked: clauses currently acting as a reason for an assigned
        // variable or a queued implication must never be deleted.
        let mut locked = vec![false; self.clauses.len()];
        for item in &self.trail {
            if let TrailItem::Sat(v) = item {
                if let Reason::Clause(ci) = self.reason[*v as usize] {
                    locked[ci] = true;
                }
            }
        }
        for (_, reason) in &self.queue {
            if let Reason::Clause(ci) = reason {
                locked[*ci] = true;
            }
        }
        let mut cand: Vec<usize> = (self.num_original_clauses..self.clauses.len())
            .filter(|&ci| !self.clauses[ci].is_empty() && self.lbd[ci] > 2 && !locked[ci])
            .collect();
        // Worst first: high LBD, then low activity.
        cand.sort_by(|&a, &b| {
            self.lbd[b].cmp(&self.lbd[a]).then(
                self.clause_act[a]
                    .partial_cmp(&self.clause_act[b])
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        for &ci in cand.iter().take(cand.len() / 2) {
            self.delete_clause(ci);
        }
        // Let the database grow before the next reduction.
        self.reduce_limit += self.reduce_limit / 2;
        #[cfg(debug_assertions)]
        self.assert_reasons_alive();
    }

    /// Soundness invariant after a reduction: every clause still acting as
    /// a reason — for an assigned variable or a queued implication — must
    /// survive, or conflict analysis would resolve through a tombstone.
    #[cfg(debug_assertions)]
    fn assert_reasons_alive(&self) {
        for item in &self.trail {
            if let TrailItem::Sat(v) = item {
                if let Reason::Clause(ci) = self.reason[*v as usize] {
                    assert!(
                        !self.clauses[ci].is_empty(),
                        "reduction deleted reason clause {ci} of assigned var {v}"
                    );
                }
            }
        }
        for (_, reason) in &self.queue {
            if let Reason::Clause(ci) = reason {
                assert!(
                    !self.clauses[*ci].is_empty(),
                    "reduction deleted reason clause {ci} of a queued implication"
                );
            }
        }
    }

    fn delete_clause(&mut self, ci: usize) {
        let cl = std::mem::take(&mut self.clauses[ci]);
        debug_assert!(cl.len() >= 2, "only stored (len ≥ 2) clauses die");
        for &w in &cl[..2] {
            self.watches[w.0 as usize].retain(|&c| c != ci);
        }
        self.learned_live -= 1;
        self.stats.clauses_deleted += 1;
    }

    /// Has the wall-clock deadline passed? On expiry, also broadcasts into
    /// the shared cancel flag so racing siblings stop within one pass.
    fn deadline_expired(&mut self) -> bool {
        let Some(deadline) = self.cfg.deadline else {
            return false;
        };
        if std::time::Instant::now() < deadline {
            return false;
        }
        if let Some(flag) = &self.cfg.cancel {
            flag.store(true, Ordering::Relaxed);
        }
        self.cancelled = true;
        true
    }

    fn run(&mut self) -> (Outcome, Option<RawAssignment>) {
        if self.deadline_expired() {
            return (Outcome::Unknown, None);
        }
        // Top-level units and empty clauses.
        for ci in 0..self.num_original_clauses {
            let cl = &self.clauses[ci];
            if cl.is_empty() {
                return (Outcome::Unsat, None);
            }
            if cl.len() == 1 {
                let lit = cl[0];
                self.queue.push_back((lit, Reason::Clause(ci)));
            }
        }
        if let Some(conflict) = self.propagate() {
            let _ = conflict;
            return (Outcome::Unsat, None); // conflict at level 0
        }
        loop {
            if self.cancelled || self.stats.decisions > self.cfg.max_decisions {
                return (Outcome::Unknown, None);
            }
            if let Some(v) = self.pick_bool() {
                self.stats.decisions += 1;
                let phase = self.saved_phase[v as usize];
                let lit = if phase { Lit::pos(v) } else { Lit::neg(v) };
                self.level_marks.push(self.trail.len());
                self.queue.push_back((lit, Reason::Decision));
                if let Some(conflict) = self.propagate() {
                    if !self.handle_conflict(conflict) {
                        return (Outcome::Unsat, None);
                    }
                }
            } else if let Some(var) = self.pick_int() {
                self.stats.decisions += 1;
                self.push_int_split(var);
                if let Some(_c) = self.propagate() {
                    if !self.resolve_int_conflict() {
                        return (Outcome::Unsat, None);
                    }
                }
            } else {
                let raw = self.snapshot();
                let sol = raw.extract(self.flat);
                return (Outcome::Sat(sol), Some(raw));
            }
        }
    }

    // ---- decisions -------------------------------------------------------

    fn pick_bool(&self) -> Option<u32> {
        let mut best: Option<(u32, f64)> = None;
        for v in 0..self.assign.len() {
            if self.assign[v] == -1 {
                let a = self.activity[v];
                if best.map(|(_, ba)| a > ba).unwrap_or(true) {
                    best = Some((v as u32, a));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    fn pick_int(&self) -> Option<u32> {
        let mut best: Option<(u32, i64)> = None;
        for i in 0..self.lo.len() {
            let w = self.hi[i] - self.lo[i];
            if w > 0 && best.map(|(_, bw)| w > bw).unwrap_or(true) {
                best = Some((i as u32, w));
            }
        }
        best?;
        // Prefer a hinted variable whose extraction value (the lower
        // bound) has not reached its still-feasible hint: deciding it now
        // branches straight to the hint, before bisection spreads the
        // remaining slack over unhinted variables. This runs *before* the
        // all-lo short-circuit — lo-values satisfying every constraint is
        // how the unhinted search finishes, but a pending hint means the
        // previous placement sat higher in the domain, and stopping early
        // would collapse the shard back to the lower bound.
        for i in 0..self.lo.len() {
            if self.hi[i] > self.lo[i] {
                if let Some(t) = self.int_hint[i] {
                    if t > self.lo[i] && t <= self.hi[i] {
                        return Some(i as u32);
                    }
                }
            }
        }
        if self.all_lo_satisfies() {
            return None;
        }
        best.map(|(i, _)| i)
    }

    fn all_lo_satisfies(&self) -> bool {
        self.active.iter().all(|(terms, k)| {
            let sum: i64 = terms
                .iter()
                .map(|&(c, v)| {
                    c * match v {
                        FlatVar::Bool(b) => (self.assign[b as usize] == 1) as i64,
                        FlatVar::Int(i) => self.lo[i as usize],
                    }
                })
                .sum();
            sum <= *k
        })
    }

    fn push_int_split(&mut self, var: u32) {
        let (l, h) = (self.lo[var as usize], self.hi[var as usize]);
        // A hinted variable branches straight to `[hint, hi]`: raising the
        // lower bound to the hint means extraction lands exactly on it when
        // the rest of the formula tolerates it, and the fallback half
        // `[lo, hint-1]` keeps completeness.
        let hint = self.int_hint[var as usize].filter(|&t| t > l && t <= h);
        let (mid, upper_first) = match hint {
            Some(t) => (t - 1, true),
            None => (l + (h - l) / 2, false),
        };
        self.int_splits.push(IntSplit {
            var,
            mid,
            upper_first,
            flipped: false,
            trail_mark: self.trail.len(),
        });
        if upper_first {
            self.set_lo(var, mid + 1);
        } else {
            self.set_hi(var, mid);
        }
    }

    /// Chronological handling within the integer phase. Returns false when
    /// the whole search is UNSAT.
    fn resolve_int_conflict(&mut self) -> bool {
        loop {
            match self.int_splits.pop() {
                Some(split) if !split.flipped => {
                    self.undo_to(split.trail_mark);
                    self.int_splits.push(IntSplit {
                        flipped: true,
                        ..split
                    });
                    // Try the half the first branch skipped.
                    if split.upper_first {
                        self.set_hi(split.var, split.mid);
                    } else {
                        self.set_lo(split.var, split.mid + 1);
                    }
                    if self.hi[split.var as usize] >= self.lo[split.var as usize]
                        && self.propagate().is_none()
                    {
                        return true;
                    }
                    // fall through: keep unwinding
                }
                Some(split) => {
                    self.undo_to(split.trail_mark);
                }
                None => {
                    // Every integer option under this boolean assignment is
                    // dead: theory conflict for the boolean layer.
                    return self.handle_conflict(Conflict::Theory);
                }
            }
        }
    }

    // ---- conflict analysis ------------------------------------------------

    /// Handle a boolean-layer conflict: learn, backjump, assert. Returns
    /// false when the formula is UNSAT.
    fn handle_conflict(&mut self, conflict: Conflict) -> bool {
        self.stats.conflicts += 1;
        self.conflicts_since_restart += 1;
        self.activity_inc /= self.cfg.activity_decay;
        self.clause_act_inc /= 0.999;
        if let Conflict::Clause(ci) = conflict {
            self.bump_clause(ci);
        }
        // Integer splits are invalidated by any boolean backjump.
        while let Some(split) = self.int_splits.pop() {
            self.undo_to(split.trail_mark);
        }
        if self.decision_level() == 0 {
            return false;
        }
        let learned = match conflict {
            Conflict::Clause(ci) => self.analyze(ci),
            Conflict::Theory => self.decision_negation_clause(),
        };
        let Some(mut learned) = learned else {
            return false; // empty learned clause
        };
        // Order: learned[0] = asserting literal (current level); learned[1]
        // = highest remaining level, which is the backjump level.
        let backjump_level = if learned.len() == 1 {
            0
        } else {
            // Move the literal with the highest level (below current) to
            // position 1.
            let mut best = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var() as usize] > self.level[learned[best].var() as usize]
                {
                    best = i;
                }
            }
            learned.swap(1, best);
            self.level[learned[1].var() as usize]
        };
        // LBD = distinct decision levels among the clause's literals,
        // computed at creation while the conflict-time levels are valid
        // (Audemard & Simon, IJCAI 2009).
        let lbd = self.lbd_of(&learned);
        // Backjump.
        self.backjump(backjump_level);
        // Install the learned clause.
        let asserting = learned[0];
        self.stats.learned += 1;
        if learned.len() == 1 {
            self.queue.push_back((asserting, Reason::Decision));
        } else {
            let ci = self.clauses.len();
            self.watches[learned[0].0 as usize].push(ci);
            self.watches[learned[1].0 as usize].push(ci);
            self.lbd.push(lbd);
            self.clause_act.push(self.clause_act_inc);
            self.learned_live += 1;
            self.clauses.push(learned);
            self.queue.push_back((asserting, Reason::Clause(ci)));
        }
        // Reduce the learned-clause database when it outgrew its budget.
        if self.cfg.learned_limit > 0 && self.learned_live >= self.reduce_limit {
            self.reduce_learned();
        }
        // Restart?
        if self.cfg.restart_interval > 0 && self.conflicts_since_restart >= self.restart_limit {
            self.stats.restarts += 1;
            self.conflicts_since_restart = 0;
            self.restart_limit = self.restart_limit.saturating_mul(3) / 2;
            self.backjump(0);
            // The queued asserting literal survives the restart; at level 0
            // it becomes a permanent implication.
        }
        match self.propagate() {
            None => true,
            Some(c) => self.handle_conflict(c),
        }
    }

    /// 1-UIP conflict analysis. `None` means the conflict is at level 0.
    fn analyze(&mut self, conflict_clause: usize) -> Option<Vec<Lit>> {
        let current = self.decision_level();
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.assign.len()];
        let mut current_count = 0usize;
        let mut to_process: Vec<Lit> = self.clauses[conflict_clause].clone();

        // Absorb a clause's literals into the running resolvent.
        let absorb = |lits: &[Lit],
                      skip: Option<u32>,
                      seen: &mut Vec<bool>,
                      learned: &mut Vec<Lit>,
                      current_count: &mut usize,
                      this: &mut Self| {
            for &l in lits {
                let v = l.var();
                if Some(v) == skip || seen[v as usize] {
                    continue;
                }
                seen[v as usize] = true;
                this.bump(v);
                let lv = this.level[v as usize];
                if lv == 0 {
                    continue; // level-0 facts drop out
                }
                if lv == current {
                    *current_count += 1;
                } else {
                    learned.push(l);
                }
            }
        };

        absorb(
            &to_process.clone(),
            None,
            &mut seen,
            &mut learned,
            &mut current_count,
            self,
        );
        to_process.clear();

        // Walk the trail backwards, resolving current-level literals.
        let mut trail_idx = self.trail.len();
        let asserting: Option<Lit> = loop {
            if current_count == 0 {
                // Degenerate: conflict involves no current-level literal we
                // can pivot on (all were theory facts) — fall back.
                return self.decision_negation_clause();
            }
            // Find the most recently assigned seen variable at the current
            // level.
            let mut found: Option<u32> = None;
            while trail_idx > 0 {
                trail_idx -= 1;
                if let TrailItem::Sat(v) = self.trail[trail_idx] {
                    if seen[v as usize] && self.level[v as usize] == current {
                        found = Some(v);
                        break;
                    }
                }
            }
            let Some(v) = found else {
                return self.decision_negation_clause();
            };
            current_count -= 1;
            if current_count == 0 {
                // v is the UIP.
                let lit = if self.assign[v as usize] == 1 {
                    Lit::neg(v)
                } else {
                    Lit::pos(v)
                };
                break Some(lit);
            }
            match self.reason[v as usize] {
                Reason::Clause(ci) => {
                    self.bump_clause(ci);
                    let lits = self.clauses[ci].clone();
                    absorb(
                        &lits,
                        Some(v),
                        &mut seen,
                        &mut learned,
                        &mut current_count,
                        self,
                    );
                }
                Reason::Decision | Reason::Theory => {
                    // Cannot resolve through this literal: no clause
                    // explanation. Fall back to the sound decision clause.
                    return self.decision_negation_clause();
                }
            }
        };
        let asserting = asserting?;
        let mut clause = Vec::with_capacity(learned.len() + 1);
        clause.push(asserting);
        clause.extend(learned);
        Some(clause)
    }

    /// The sound fallback: ¬(conjunction of all current boolean decisions).
    /// `None` when there are no decisions (UNSAT).
    fn decision_negation_clause(&mut self) -> Option<Vec<Lit>> {
        let mut decision_vars: Vec<u32> = Vec::new();
        for item in &self.trail {
            if let TrailItem::Sat(v) = item {
                if self.reason[*v as usize] == Reason::Decision && self.level[*v as usize] > 0 {
                    decision_vars.push(*v);
                }
            }
        }
        if decision_vars.is_empty() {
            return None;
        }
        // Asserting literal = negation of the last (deepest) decision.
        let mut clause: Vec<Lit> = Vec::with_capacity(decision_vars.len());
        let last = *decision_vars.last().unwrap();
        let neg = |v: u32, this: &Self| {
            if this.assign[v as usize] == 1 {
                Lit::neg(v)
            } else {
                Lit::pos(v)
            }
        };
        clause.push(neg(last, self));
        for &v in decision_vars.iter().rev().skip(1) {
            clause.push(neg(v, self));
            self.bump(v);
        }
        Some(clause)
    }

    fn backjump(&mut self, target_level: u32) {
        while self.decision_level() > target_level {
            let mark = self.level_marks.pop().expect("level mark");
            self.undo_to(mark);
        }
        self.queue.clear();
    }

    // ---- propagation -------------------------------------------------------

    fn set_lo(&mut self, var: u32, v: i64) {
        if v > self.lo[var as usize] {
            self.trail
                .push(TrailItem::IntLo(var, self.lo[var as usize]));
            self.lo[var as usize] = v;
        }
    }

    fn set_hi(&mut self, var: u32, v: i64) {
        if v < self.hi[var as usize] {
            self.trail
                .push(TrailItem::IntHi(var, self.hi[var as usize]));
            self.hi[var as usize] = v;
        }
    }

    /// Propagate the queue to fixpoint. `Some(conflict)` on failure.
    ///
    /// Polls the shared cancellation flag once per pass, so a raced worker
    /// observes a cancel within one propagation pass and winds down by
    /// pretending the pass succeeded; the decision loop then exits with
    /// [`Outcome::Unknown`].
    fn propagate(&mut self) -> Option<Conflict> {
        loop {
            if let Some(flag) = &self.cfg.cancel {
                if flag.load(Ordering::Relaxed) {
                    self.cancelled = true;
                    self.queue.clear();
                    return None;
                }
            }
            if self.passes & DEADLINE_POLL_MASK == 0 && self.deadline_expired() {
                self.queue.clear();
                return None;
            }
            self.passes += 1;
            while let Some((lit, reason)) = self.queue.pop_front() {
                match self.value(lit) {
                    Some(true) => continue,
                    Some(false) => {
                        // The queued implication contradicts the current
                        // assignment. Attribute it to its clause when known.
                        self.queue.clear();
                        return Some(match reason {
                            Reason::Clause(ci) => Conflict::Clause(ci),
                            _ => Conflict::Theory,
                        });
                    }
                    None => {}
                }
                self.stats.propagations += 1;
                let var = lit.var();
                self.assign[var as usize] = if lit.is_neg() { 0 } else { 1 };
                self.level[var as usize] = self.decision_level();
                self.reason[var as usize] = reason;
                self.saved_phase[var as usize] = !lit.is_neg();
                self.trail.push(TrailItem::Sat(var));
                // Activate the atom if this variable guards one.
                if let Some(&ai) = self.flat.atom_of_var.get(&var) {
                    let atom = &self.flat.atoms[ai];
                    let (terms, k) = if lit.is_neg() {
                        (
                            atom.terms.iter().map(|&(c, v)| (-c, v)).collect::<Vec<_>>(),
                            -atom.k - 1,
                        )
                    } else {
                        (atom.terms.clone(), atom.k)
                    };
                    self.active.push((terms, k));
                    self.trail.push(TrailItem::Activated);
                }
                // Visit clauses watching the falsified literal.
                let falsified = lit.negate();
                let mut ws = std::mem::take(&mut self.watches[falsified.0 as usize]);
                let mut i = 0;
                let mut conflict: Option<Conflict> = None;
                while i < ws.len() {
                    match self.update_clause_watch(ws[i], falsified, &mut ws, &mut i) {
                        Ok(()) => {}
                        Err(ci) => {
                            conflict = Some(Conflict::Clause(ci));
                            break;
                        }
                    }
                }
                self.watches[falsified.0 as usize] = ws;
                if let Some(c) = conflict {
                    self.queue.clear();
                    return Some(c);
                }
            }
            // Linear propagation fixpoint; may enqueue boolean literals.
            match self.propagate_linear() {
                Err(()) => return Some(Conflict::Theory),
                Ok(true) => continue,
                Ok(false) => return None,
            }
        }
    }

    /// Maintain the invariant for clause `ci` after `falsified` became
    /// false. `Err(ci)` on conflict.
    fn update_clause_watch(
        &mut self,
        ci: usize,
        falsified: Lit,
        ws: &mut Vec<usize>,
        i: &mut usize,
    ) -> Result<(), usize> {
        let mut cl = std::mem::take(&mut self.clauses[ci]);
        if cl[0] == falsified {
            cl.swap(0, 1);
        }
        debug_assert_eq!(cl[1], falsified);
        let w0 = cl[0];
        if self.value(w0) == Some(true) {
            self.clauses[ci] = cl;
            *i += 1;
            return Ok(());
        }
        for j in 2..cl.len() {
            if self.value(cl[j]) != Some(false) {
                cl.swap(1, j);
                let new_watch = cl[1];
                self.clauses[ci] = cl;
                self.watches[new_watch.0 as usize].push(ci);
                ws.swap_remove(*i);
                return Ok(());
            }
        }
        self.clauses[ci] = cl;
        match self.value(w0) {
            None => {
                self.queue.push_back((w0, Reason::Clause(ci)));
                *i += 1;
                Ok(())
            }
            Some(false) => Err(ci),
            Some(true) => unreachable!("handled above"),
        }
    }

    /// Bounds-consistency fixpoint over active linear constraints.
    /// `Ok(true)` if boolean literals were enqueued, `Err(())` on conflict.
    fn propagate_linear(&mut self) -> Result<bool, ()> {
        let mut enqueued = false;
        let mut changed = true;
        while changed {
            changed = false;
            for ci in 0..self.active.len() {
                let (terms, k) = {
                    let (t, k) = &self.active[ci];
                    (t.clone(), *k)
                };
                let mut min_sum = 0i64;
                for &(c, v) in &terms {
                    min_sum += self.min_contrib(c, v);
                }
                if min_sum > k {
                    return Err(());
                }
                for &(c, v) in &terms {
                    let others = min_sum - self.min_contrib(c, v);
                    let slack = k - others; // need c·v ≤ slack
                    match v {
                        FlatVar::Int(idx) => {
                            if c > 0 {
                                let ub = slack.div_euclid(c);
                                if ub < self.hi[idx as usize] {
                                    self.set_hi(idx, ub);
                                    if self.hi[idx as usize] < self.lo[idx as usize] {
                                        return Err(());
                                    }
                                    changed = true;
                                }
                            } else if c < 0 {
                                let lb = neg_div_ceil(slack, c);
                                if lb > self.lo[idx as usize] {
                                    self.set_lo(idx, lb);
                                    if self.hi[idx as usize] < self.lo[idx as usize] {
                                        return Err(());
                                    }
                                    changed = true;
                                }
                            }
                        }
                        FlatVar::Bool(b) => {
                            let assigned = self.assign[b as usize];
                            if assigned != -1 {
                                continue;
                            }
                            if c > 0 && slack < c {
                                self.queue.push_back((Lit::neg(b), Reason::Theory));
                                enqueued = true;
                            } else if c < 0 && slack < 0 {
                                self.queue.push_back((Lit::pos(b), Reason::Theory));
                                enqueued = true;
                            }
                        }
                    }
                }
                if enqueued {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn min_contrib(&self, c: i64, v: FlatVar) -> i64 {
        match v {
            FlatVar::Bool(b) => match self.assign[b as usize] {
                1 => c,
                0 => 0,
                _ => c.min(0),
            },
            FlatVar::Int(i) => {
                if c >= 0 {
                    c * self.lo[i as usize]
                } else {
                    c * self.hi[i as usize]
                }
            }
        }
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().unwrap() {
                TrailItem::Sat(v) => self.assign[v as usize] = -1,
                TrailItem::IntLo(v, old) => self.lo[v as usize] = old,
                TrailItem::IntHi(v, old) => self.hi[v as usize] = old,
                TrailItem::Activated => {
                    self.active.pop();
                }
            }
        }
        self.queue.clear();
    }

    fn snapshot(&self) -> RawAssignment {
        RawAssignment {
            sat: self.assign.iter().map(|&v| v == 1).collect(),
            ints: self.lo.clone(),
        }
    }
}

/// `ceil(a / c)` where `c < 0` (used when dividing an inequality by a
/// negative coefficient, which flips its direction).
fn neg_div_ceil(a: i64, c: i64) -> i64 {
    debug_assert!(c < 0);
    // Rust's `/` truncates toward zero, which equals the ceiling when the
    // quotient is negative (a > 0 here) and the floor when it is positive
    // (a < 0), in which case we adjust up.
    let q = a / c;
    if a % c != 0 && a < 0 {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Bx, Ix};
    use crate::model::Model;

    #[test]
    fn neg_div_ceil_cases() {
        assert_eq!(neg_div_ceil(7, -2), -3); // 7/-2 = -3.5 → -3
        assert_eq!(neg_div_ceil(-7, -2), 4); // -7/-2 = 3.5 → 4
        assert_eq!(neg_div_ceil(6, -2), -3);
        assert_eq!(neg_div_ceil(-6, -2), 3);
        assert_eq!(neg_div_ceil(0, -5), 0);
    }

    #[test]
    fn sat_pure_bool() {
        let mut m = Model::new();
        let a = m.bool_var("a");
        let b = m.bool_var("b");
        m.require(Bx::or(vec![Bx::var(a), Bx::var(b)]));
        m.require(Bx::not(Bx::var(a)));
        let sol = solve(&m).solution().unwrap();
        assert!(!sol.bool(a));
        assert!(sol.bool(b));
    }

    #[test]
    fn unsat_pure_bool() {
        let mut m = Model::new();
        let a = m.bool_var("a");
        m.require(Bx::var(a));
        m.require(Bx::not(Bx::var(a)));
        assert_eq!(solve(&m), Outcome::Unsat);
    }

    #[test]
    fn sat_int_bounds() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 10);
        let y = m.int_var("y", 0, 10);
        m.require(Ix::var(x).add(Ix::var(y)).ge(Ix::lit(15)));
        m.require(Ix::var(x).le(Ix::lit(7)));
        let sol = solve(&m).solution().unwrap();
        assert!(sol.int(x) + sol.int(y) >= 15);
        assert!(sol.int(x) <= 7);
    }

    #[test]
    fn unsat_int() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 5);
        let y = m.int_var("y", 0, 5);
        m.require(Ix::var(x).add(Ix::var(y)).ge(Ix::lit(11)));
        assert_eq!(solve(&m), Outcome::Unsat);
    }

    #[test]
    fn conditional_constraint() {
        let mut m = Model::new();
        let d = m.bool_var("deploy");
        let x = m.int_var("x", 0, 100);
        m.require(Bx::implies(Bx::var(d), Ix::var(x).ge(Ix::lit(50))));
        m.require(Ix::var(x).le(Ix::lit(10)));
        m.require(Bx::or(vec![Bx::var(d)])); // force d
        assert_eq!(solve(&m), Outcome::Unsat);
    }

    #[test]
    fn exactly_one_picks_one() {
        let mut m = Model::new();
        let vs: Vec<_> = (0..5).map(|i| m.bool_var(format!("v{i}"))).collect();
        m.require(Bx::exactly_one(vs.iter().map(|&v| Bx::var(v)).collect()));
        let sol = solve(&m).solution().unwrap();
        assert_eq!(vs.iter().filter(|&&v| sol.bool(v)).count(), 1);
    }

    #[test]
    fn ite_and_ceil_div() {
        let mut m = Model::new();
        let d = m.bool_var("d");
        let e = m.int_var("entries", 0, 4096);
        let blocks = Ix::var(e).ceil_div(1024);
        m.require(Bx::implies(Bx::var(d), blocks.clone().ge(Ix::lit(3))));
        m.require(Bx::var(d));
        m.require(Ix::var(e).le(Ix::lit(3000)));
        let sol = solve(&m).solution().unwrap();
        assert!(
            sol.int(e) > 2048,
            "need ceil(e/1024) >= 3, got e = {}",
            sol.int(e)
        );
        assert!(sol.int(e) <= 3000);
    }

    #[test]
    fn minimize_simple() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 100);
        m.require(Ix::var(x).ge(Ix::lit(37)));
        let (sol, v) = minimize(&m, &Ix::var(x)).unwrap();
        assert_eq!(v, 37);
        assert_eq!(sol.int(x), 37);
    }

    #[test]
    fn minimize_deployment_count() {
        let mut m = Model::new();
        let f: Vec<_> = (0..3).map(|i| m.bool_var(format!("f{i}"))).collect();
        m.require(Bx::exactly_one(vec![Bx::var(f[0]), Bx::var(f[1])]));
        m.require(Bx::exactly_one(vec![Bx::var(f[1]), Bx::var(f[2])]));
        let obj = Ix::sum(f.iter().map(|&v| Ix::bool01(v)).collect());
        let (sol, v) = minimize(&m, &obj).unwrap();
        assert_eq!(v, 1);
        assert!(sol.bool(f[1]));
    }

    #[test]
    fn ite_evaluation_in_solution() {
        let mut m = Model::new();
        let d = m.bool_var("d");
        let x = m.int_var("x", 0, 10);
        m.require(Bx::var(d));
        m.require(Ix::var(x).eq(Ix::ite(Bx::var(d), Ix::lit(7), Ix::lit(2))));
        let sol = solve(&m).solution().unwrap();
        assert_eq!(sol.int(x), 7);
    }

    #[test]
    fn respects_decision_limit() {
        let mut m = Model::new();
        let vars: Vec<Vec<_>> = (0..6)
            .map(|p| (0..5).map(|h| m.bool_var(format!("p{p}h{h}"))).collect())
            .collect();
        for p in &vars {
            m.require(Bx::or(p.iter().map(|&v| Bx::var(v)).collect()));
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..5 {
            m.require(Bx::at_most_one(
                (0..6).map(|p| Bx::var(vars[p][h])).collect(),
            ));
        }
        let flat = flatten(&m);
        let cfg = SolverConfig {
            max_decisions: 10,
            ..Default::default()
        };
        let (outcome, _, stats) = solve_flat(&flat, &cfg, &[]);
        assert!(stats.decisions > 0);
        assert!(matches!(outcome, Outcome::Unknown | Outcome::Unsat));
    }

    #[test]
    fn pigeonhole_unsat_with_learning() {
        // 6 pigeons, 5 holes — UNSAT; learning makes it fast.
        let mut m = Model::new();
        let vars: Vec<Vec<_>> = (0..6)
            .map(|p| (0..5).map(|h| m.bool_var(format!("p{p}h{h}"))).collect())
            .collect();
        for p in &vars {
            m.require(Bx::or(p.iter().map(|&v| Bx::var(v)).collect()));
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..5 {
            m.require(Bx::at_most_one(
                (0..6).map(|p| Bx::var(vars[p][h])).collect(),
            ));
        }
        assert_eq!(solve(&m), Outcome::Unsat);
    }

    #[test]
    fn learning_stats_populated() {
        // An instance that forces at least one conflict.
        let mut m = Model::new();
        let vs: Vec<_> = (0..8).map(|i| m.bool_var(format!("v{i}"))).collect();
        for i in 0..7 {
            m.require(Bx::or(vec![Bx::not(Bx::var(vs[i])), Bx::var(vs[i + 1])]));
        }
        m.require(Bx::or(vec![Bx::var(vs[0]), Bx::var(vs[7])]));
        m.require(Bx::or(vec![
            Bx::not(Bx::var(vs[7])),
            Bx::not(Bx::var(vs[3])),
        ]));
        let flat = flatten(&m);
        let cfg = SolverConfig::default();
        let mut s = Search::new(&flat, &cfg, &[], None);
        let (outcome, _) = s.run();
        assert!(outcome.is_sat() || outcome == Outcome::Unsat);
    }

    #[test]
    fn warm_start_replays_learned_clauses() {
        // Solve a conflict-heavy UNSAT instance cold, then re-solve the
        // identical formula seeded with the exported bundle: the verdict
        // must match, and the seeded clauses must cut the second search's
        // own learning effort.
        let m = pigeonhole(6, 5);
        let flat = flatten(&m);
        let cfg = SolverConfig::default();
        let (cold, _, cold_stats, export) = solve_flat_warm(&flat, &cfg, &[], None);
        assert_eq!(cold, Outcome::Unsat);
        assert!(!export.clauses.is_empty(), "UNSAT proof learns clauses");
        let (seeded, _, warm_stats, _) = solve_flat_warm(&flat, &cfg, &[], Some(&export));
        assert_eq!(seeded, Outcome::Unsat);
        assert!(
            warm_stats.conflicts <= cold_stats.conflicts,
            "warm start must not make the search harder: cold {} vs warm {}",
            cold_stats.conflicts,
            warm_stats.conflicts
        );
    }

    #[test]
    fn warm_start_preserves_sat_verdict() {
        let mut m = Model::new();
        let vs: Vec<_> = (0..6).map(|i| m.bool_var(format!("v{i}"))).collect();
        for w in vs.windows(2) {
            m.require(Bx::or(vec![Bx::not(Bx::var(w[0])), Bx::var(w[1])]));
        }
        m.require(Bx::var(vs[0]));
        let x = m.int_var("x", 0, 50);
        m.require(Ix::var(x).ge(Ix::lit(12)));
        let flat = flatten(&m);
        let cfg = SolverConfig::default();
        let (cold, _, _, export) = solve_flat_warm(&flat, &cfg, &[], None);
        assert!(cold.is_sat());
        let (seeded, _, _, _) = solve_flat_warm(&flat, &cfg, &[], Some(&export));
        let sol = seeded.solution().expect("warm re-solve stays SAT");
        assert!(sol.satisfies(&m));
    }

    #[test]
    fn stale_warm_bundle_is_ignored_safely() {
        // Defensive handling of a dimensionally-stale bundle (semantic
        // staleness is prevented one level up by fingerprint-keyed lookup):
        // mismatched phase/activity vectors are dropped and clauses
        // referencing out-of-range variables are skipped.
        let stale = WarmStart {
            clauses: vec![(vec![Lit::pos(40), Lit::neg(41)], 2)],
            activity: vec![5.0; 99],
            phases: vec![true; 99],
        };
        let mut m = Model::new();
        let a = m.bool_var("a");
        m.require(Bx::var(a));
        let flat = flatten(&m);
        let (outcome, _, _, export) =
            solve_flat_warm(&flat, &SolverConfig::default(), &[], Some(&stale));
        assert!(outcome.solution().expect("still SAT").bool(a));
        assert!(export.clauses.is_empty(), "stale clauses were not adopted");
    }

    fn pigeonhole(pigeons: usize, holes: usize) -> Model {
        let mut m = Model::new();
        let vars: Vec<Vec<_>> = (0..pigeons)
            .map(|p| {
                (0..holes)
                    .map(|h| m.bool_var(format!("p{p}h{h}")))
                    .collect()
            })
            .collect();
        for p in &vars {
            m.require(Bx::or(p.iter().map(|&v| Bx::var(v)).collect()));
        }
        for h in 0..holes {
            m.require(Bx::at_most_one(
                vars.iter().map(|row| Bx::var(row[h])).collect(),
            ));
        }
        m
    }

    #[test]
    fn reduction_fires_and_preserves_reason_clauses() {
        // A tiny learned limit forces many database reductions on a
        // conflict-heavy UNSAT instance. `reduce_learned` asserts (in debug
        // builds, which tests are) that no reason clause of the current
        // trail or pending queue is ever deleted; here we additionally
        // check the verdict survives aggressive clause deletion.
        let m = pigeonhole(7, 6);
        let flat = flatten(&m);
        let cfg = SolverConfig {
            learned_limit: 8,
            ..Default::default()
        };
        let (outcome, _, stats) = solve_flat(&flat, &cfg, &[]);
        assert_eq!(outcome, Outcome::Unsat);
        assert!(stats.reductions > 0, "expected reductions: {stats:?}");
        assert!(stats.clauses_deleted > 0);
    }

    #[test]
    fn reduction_disabled_when_limit_zero() {
        let m = pigeonhole(6, 5);
        let flat = flatten(&m);
        let cfg = SolverConfig {
            learned_limit: 0,
            ..Default::default()
        };
        let (outcome, _, stats) = solve_flat(&flat, &cfg, &[]);
        assert_eq!(outcome, Outcome::Unsat);
        assert_eq!(stats.reductions, 0);
        assert_eq!(stats.clauses_deleted, 0);
    }

    #[test]
    fn preset_cancel_flag_stops_immediately() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // A hard instance that would take far longer than the test budget;
        // with the flag already set, the first propagation pass must bail.
        let m = pigeonhole(10, 9);
        let flat = flatten(&m);
        let cfg = SolverConfig {
            cancel: Some(Arc::new(AtomicBool::new(true))),
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let (outcome, _, _) = solve_flat(&flat, &cfg, &[]);
        assert_eq!(outcome, Outcome::Unknown);
        assert!(
            t.elapsed() < std::time::Duration::from_secs(5),
            "cancellation was not prompt: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn delayed_cancel_interrupts_search() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let m = pigeonhole(11, 10);
        let flat = flatten(&m);
        let flag = Arc::new(AtomicBool::new(false));
        let cfg = SolverConfig {
            cancel: Some(flag.clone()),
            ..Default::default()
        };
        std::thread::scope(|s| {
            let setter = s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                flag.store(true, Ordering::Relaxed);
            });
            let (outcome, _, _) = solve_flat(&flat, &cfg, &[]);
            // Either the solver finished first (fast machine) or it was
            // cancelled; a cancelled search reports Unknown.
            assert!(matches!(outcome, Outcome::Unknown | Outcome::Unsat));
            setter.join().unwrap();
        });
    }

    #[test]
    fn expired_deadline_stops_before_search() {
        use std::time::{Duration, Instant};
        let m = pigeonhole(10, 9);
        let flat = flatten(&m);
        let cfg = SolverConfig {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Default::default()
        };
        let t = Instant::now();
        let (outcome, _, stats) = solve_flat(&flat, &cfg, &[]);
        assert_eq!(outcome, Outcome::Unknown);
        assert_eq!(stats.decisions, 0, "no search past an expired deadline");
        assert!(t.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn deadline_interrupts_search_promptly() {
        use std::time::{Duration, Instant};
        // Hard enough to outlast a 20 ms deadline by orders of magnitude.
        let m = pigeonhole(12, 11);
        let flat = flatten(&m);
        let cfg = SolverConfig {
            deadline: Some(Instant::now() + Duration::from_millis(20)),
            ..Default::default()
        };
        let t = Instant::now();
        let (outcome, _, _) = solve_flat(&flat, &cfg, &[]);
        assert!(matches!(outcome, Outcome::Unknown | Outcome::Unsat));
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "deadline was not observed promptly: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn deadline_expiry_broadcasts_into_cancel_flag() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        use std::time::{Duration, Instant};
        let m = pigeonhole(10, 9);
        let flat = flatten(&m);
        let flag = Arc::new(AtomicBool::new(false));
        let cfg = SolverConfig {
            cancel: Some(flag.clone()),
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Default::default()
        };
        let (outcome, _, _) = solve_flat(&flat, &cfg, &[]);
        assert_eq!(outcome, Outcome::Unknown);
        assert!(
            flag.load(Ordering::Relaxed),
            "expiry must cancel portfolio siblings via the shared flag"
        );
    }
}
