//! Cross-backend property tests: the native solver and Z3 consume the
//! identical backend-agnostic model, so on random placement-shaped formulas
//! they must agree on satisfiability, and every solution either backend
//! produces must satisfy the model.

#![cfg(feature = "z3-backend")]

use lyra_solver::{Bx, Ix, Model};
use lyra_synth::backend::{solve, Backend};
use proptest::prelude::*;

/// Placement-flavored random constraints over a small variable pool:
/// implications between deployment booleans, exactly-one groups, capacity
/// sums, and conditional integer bounds — the shapes `encode.rs` emits.
#[derive(Debug, Clone)]
enum Con {
    Implies(usize, usize),
    ExactlyOne(Vec<usize>),
    CapacitySum { vars: Vec<usize>, weight: i64, cap: i64 },
    CondBound { guard: usize, int: usize, min: i64 },
    SplitSum { ints: Vec<usize>, total: i64 },
}

fn gen_con() -> impl Strategy<Value = Con> {
    prop_oneof![
        (0usize..8, 0usize..8).prop_map(|(a, b)| Con::Implies(a, b)),
        prop::collection::vec(0usize..8, 1..4).prop_map(Con::ExactlyOne),
        (prop::collection::vec(0usize..8, 1..5), 1i64..20, 0i64..60)
            .prop_map(|(vars, weight, cap)| Con::CapacitySum { vars, weight, cap }),
        (0usize..8, 0usize..4, 0i64..90)
            .prop_map(|(guard, int, min)| Con::CondBound { guard, int, min }),
        (prop::collection::vec(0usize..4, 1..4), 0i64..150)
            .prop_map(|(ints, total)| Con::SplitSum { ints, total }),
    ]
}

fn build(cons: &[Con]) -> Model {
    let mut m = Model::new();
    let bools: Vec<_> = (0..8).map(|i| m.bool_var(format!("f{i}"))).collect();
    let ints: Vec<_> = (0..4).map(|i| m.int_var(format!("e{i}"), 0, 100)).collect();
    for c in cons {
        match c {
            Con::Implies(a, b) => {
                m.require(Bx::implies(Bx::var(bools[*a]), Bx::var(bools[*b])));
            }
            Con::ExactlyOne(vs) => {
                let mut seen: Vec<usize> = vs.clone();
                seen.sort_unstable();
                seen.dedup();
                m.require(Bx::exactly_one(seen.iter().map(|&v| Bx::var(bools[v])).collect()));
            }
            Con::CapacitySum { vars, weight, cap } => {
                let sum = Ix::sum(
                    vars.iter().map(|&v| Ix::bool01(bools[v]).scale(*weight)).collect(),
                );
                m.require(sum.le(Ix::lit(*cap)));
            }
            Con::CondBound { guard, int, min } => {
                m.require(Bx::implies(
                    Bx::var(bools[*guard]),
                    Ix::var(ints[*int]).ge(Ix::lit(*min)),
                ));
            }
            Con::SplitSum { ints: idx, total } => {
                let mut seen: Vec<usize> = idx.clone();
                seen.sort_unstable();
                seen.dedup();
                let sum = Ix::sum(seen.iter().map(|&i| Ix::var(ints[i])).collect());
                m.require(sum.eq(Ix::lit((*total).min(100 * seen.len() as i64))));
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn native_and_z3_agree(cons in prop::collection::vec(gen_con(), 1..8)) {
        let m = build(&cons);
        let native = solve(&m, None, &Backend::Native);
        let z3 = solve(&m, None, &Backend::Z3);
        prop_assert_eq!(
            native.is_sat(),
            z3.is_sat(),
            "backends disagree: native={:?} z3={:?}",
            native.is_sat(),
            z3.is_sat()
        );
        if let lyra_solver::Outcome::Sat(s) = &native {
            prop_assert!(s.satisfies(&m), "native returned non-model");
        }
        if let lyra_solver::Outcome::Sat(s) = &z3 {
            prop_assert!(s.satisfies(&m), "z3 returned non-model");
        }
    }

    #[test]
    fn minimization_agrees(cons in prop::collection::vec(gen_con(), 1..6)) {
        let m = build(&cons);
        // Objective: number of deployed booleans.
        let obj = Ix::sum(
            m.bool_decls().map(|(id, _)| Ix::bool01(id)).collect(),
        );
        let native = solve(&m, Some(&obj), &Backend::Native);
        let z3 = solve(&m, Some(&obj), &Backend::Z3);
        match (native, z3) {
            (lyra_solver::Outcome::Sat(a), lyra_solver::Outcome::Sat(b)) => {
                prop_assert_eq!(
                    a.eval_ix(&obj),
                    b.eval_ix(&obj),
                    "optimal objective differs"
                );
            }
            (lyra_solver::Outcome::Unsat, lyra_solver::Outcome::Unsat) => {}
            (x, y) => prop_assert!(false, "outcome mismatch: {x:?} vs {y:?}"),
        }
    }
}
