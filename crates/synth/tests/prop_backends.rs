//! Property tests for the synthesis solver backend on placement-shaped
//! formulas: implications between deployment booleans, exactly-one groups,
//! capacity sums, conditional integer bounds, and split sums — the shapes
//! `encode.rs` emits. Verdicts are checked against brute-force enumeration
//! over deliberately small variable pools.
//!
//! Randomness comes from a seeded xorshift generator (the workspace builds
//! offline with no external crates), so every run explores the identical
//! case set and failures reproduce from the printed case index.

use lyra_solver::{Bx, Ix, Model, Outcome, Solution};
use lyra_synth::backend::{solve, Backend};

const NUM_BOOLS: usize = 6;
const NUM_INTS: usize = 3;
const INT_HI: i64 = 6;

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }
}

/// Placement-flavored random constraints over a small variable pool.
enum Con {
    Implies(usize, usize),
    ExactlyOne(Vec<usize>),
    CapacitySum {
        vars: Vec<usize>,
        weight: i64,
        cap: i64,
    },
    CondBound {
        guard: usize,
        int: usize,
        min: i64,
    },
    SplitSum {
        ints: Vec<usize>,
        total: i64,
    },
}

fn gen_con(rng: &mut Rng) -> Con {
    match rng.below(5) {
        0 => Con::Implies(
            rng.below(NUM_BOOLS as u64) as usize,
            rng.below(NUM_BOOLS as u64) as usize,
        ),
        1 => Con::ExactlyOne(
            (0..rng.range(1, 3))
                .map(|_| rng.below(NUM_BOOLS as u64) as usize)
                .collect(),
        ),
        2 => Con::CapacitySum {
            vars: (0..rng.range(1, 4))
                .map(|_| rng.below(NUM_BOOLS as u64) as usize)
                .collect(),
            weight: rng.range(1, 5),
            cap: rng.range(0, 12),
        },
        3 => Con::CondBound {
            guard: rng.below(NUM_BOOLS as u64) as usize,
            int: rng.below(NUM_INTS as u64) as usize,
            min: rng.range(0, INT_HI + 1),
        },
        _ => Con::SplitSum {
            ints: (0..rng.range(1, 3))
                .map(|_| rng.below(NUM_INTS as u64) as usize)
                .collect(),
            total: rng.range(0, 2 * INT_HI),
        },
    }
}

fn build(cons: &[Con]) -> Model {
    let mut m = Model::new();
    let bools: Vec<_> = (0..NUM_BOOLS)
        .map(|i| m.bool_var(format!("f{i}")))
        .collect();
    let ints: Vec<_> = (0..NUM_INTS)
        .map(|i| m.int_var(format!("e{i}"), 0, INT_HI))
        .collect();
    for c in cons {
        match c {
            Con::Implies(a, b) => {
                m.require(Bx::implies(Bx::var(bools[*a]), Bx::var(bools[*b])));
            }
            Con::ExactlyOne(vs) => {
                let mut seen: Vec<usize> = vs.clone();
                seen.sort_unstable();
                seen.dedup();
                m.require(Bx::exactly_one(
                    seen.iter().map(|&v| Bx::var(bools[v])).collect(),
                ));
            }
            Con::CapacitySum { vars, weight, cap } => {
                let sum = Ix::sum(
                    vars.iter()
                        .map(|&v| Ix::bool01(bools[v]).scale(*weight))
                        .collect(),
                );
                m.require(sum.le(Ix::lit(*cap)));
            }
            Con::CondBound { guard, int, min } => {
                m.require(Bx::implies(
                    Bx::var(bools[*guard]),
                    Ix::var(ints[*int]).ge(Ix::lit(*min)),
                ));
            }
            Con::SplitSum { ints: idx, total } => {
                let mut seen: Vec<usize> = idx.clone();
                seen.sort_unstable();
                seen.dedup();
                let sum = Ix::sum(seen.iter().map(|&i| Ix::var(ints[i])).collect());
                m.require(sum.eq(Ix::lit((*total).min(INT_HI * seen.len() as i64))));
            }
        }
    }
    m
}

/// Visit every assignment of the small pool; returns the best objective
/// value among satisfying assignments (`None` if UNSAT).
fn brute_force_best(m: &Model, obj: Option<&Ix>) -> Option<i64> {
    let mut best: Option<i64> = None;
    let mut sat = false;
    let domain = (INT_HI + 1) as usize;
    for mask in 0..(1usize << NUM_BOOLS) {
        let bools: Vec<bool> = (0..NUM_BOOLS).map(|i| mask >> i & 1 == 1).collect();
        for combo in 0..domain.pow(NUM_INTS as u32) {
            let mut c = combo;
            let mut ints = Vec::with_capacity(NUM_INTS);
            for _ in 0..NUM_INTS {
                ints.push((c % domain) as i64);
                c /= domain;
            }
            let sol = Solution::from_parts(bools.clone(), ints);
            if sol.satisfies(m) {
                sat = true;
                match obj {
                    Some(o) => {
                        let v = sol.eval_ix(o);
                        best = Some(best.map_or(v, |b: i64| b.min(v)));
                    }
                    None => return Some(0),
                }
            }
        }
    }
    if sat {
        best.or(Some(0))
    } else {
        None
    }
}

#[test]
fn native_agrees_with_brute_force_on_placement_shapes() {
    let mut rng = Rng::new(0x5eed_0003);
    for case in 0..96 {
        let cons: Vec<Con> = (0..rng.range(1, 7)).map(|_| gen_con(&mut rng)).collect();
        let m = build(&cons);
        let expected = brute_force_best(&m, None).is_some();
        let (outcome, _) = solve(&m, None, &Backend::Native);
        match outcome {
            Outcome::Sat(s) => {
                assert!(
                    expected,
                    "case {case}: solver said SAT but brute force disagrees"
                );
                assert!(
                    s.satisfies(&m),
                    "case {case}: returned solution violates model"
                );
            }
            Outcome::Unsat => {
                assert!(
                    !expected,
                    "case {case}: solver said UNSAT but model is satisfiable"
                )
            }
            Outcome::Unknown => {}
        }
    }
}

#[test]
fn minimization_matches_brute_force_optimum() {
    let mut rng = Rng::new(0x5eed_0004);
    for case in 0..64 {
        let cons: Vec<Con> = (0..rng.range(1, 6)).map(|_| gen_con(&mut rng)).collect();
        let m = build(&cons);
        // Objective: number of deployed booleans.
        let obj = Ix::sum(m.bool_decls().map(|(id, _)| Ix::bool01(id)).collect());
        let expected = brute_force_best(&m, Some(&obj));
        let (outcome, _) = solve(&m, Some(&obj), &Backend::Native);
        match (outcome, expected) {
            (Outcome::Sat(s), Some(best)) => {
                assert!(s.satisfies(&m), "case {case}: minimizer returned non-model");
                assert_eq!(
                    s.eval_ix(&obj),
                    best,
                    "case {case}: optimal objective differs"
                );
            }
            (Outcome::Unsat, None) => {}
            (x, y) => panic!("case {case}: outcome mismatch: {x:?} vs brute force {y:?}"),
        }
    }
}
