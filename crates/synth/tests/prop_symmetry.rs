//! Property tests for the symmetry-breaking encoding
//! (`EncodeOptions::symmetry_breaking`).
//!
//! Two properties over seeded random MULTI-SW placement problems on
//! fat-tree pods:
//!
//! 1. **Verdict preservation** — the lexicographic tie-breaking
//!    constraints must never change satisfiability: the base encoding and
//!    the symmetry-broken encoding agree SAT/UNSAT on every case.
//! 2. **Automorphism closure** — mapping a solution of the symmetry-broken
//!    encoding through a verified topology automorphism (transposing two
//!    interchangeable switches) yields an assignment that still satisfies
//!    the *base* encoding. This is exactly the soundness argument for lex
//!    tie-breaking: the constraints only prune within orbits, and every
//!    orbit member is reachable from the kept representative.
//!
//! Randomness comes from a seeded xorshift generator (the workspace builds
//! offline with no external crates), so every run explores the identical
//! case set and failures reproduce from the printed case index.

use lyra_solver::{Outcome, Solution};
use lyra_synth::backend::{solve_with_strategy, Backend, SolverStrategy};
use lyra_synth::{encode, EncodeOptions};
use lyra_topo::{fat_tree_pod, interchangeable_classes, resolve_scope, ResolvedScope, SwitchId};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// A load-balancer-shaped program with a tunable extern size — small sizes
/// place comfortably, absurd ones exceed every pod's aggregate SRAM.
fn program(entries: u64) -> String {
    format!(
        r#"
        pipeline[LB]{{loadbalancer}};
        algorithm loadbalancer {{
            extern dict<bit[32] h, bit[32] ip>[{entries}] conn_table;
            bit[32] hash;
            hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
            if (hash in conn_table) {{
                ipv4.dstAddr = conn_table[hash];
            }}
        }}
    "#
    )
}

/// One MULTI-SW scope spanning the whole pod, Aggs to ToRs.
fn pod_scopes(topo: &lyra_topo::Topology, k: usize) -> Vec<ResolvedScope> {
    let aggs: Vec<String> = (1..=k / 2).map(|i| format!("Agg{i}")).collect();
    let tors: Vec<String> = (1..=k / 2).map(|i| format!("ToR{i}")).collect();
    let text = format!(
        "loadbalancer: [ ToR*,Agg* | MULTI-SW | ({}->{}) ]",
        aggs.join(","),
        tors.join(",")
    );
    lyra_lang::parse_scopes(&text)
        .unwrap()
        .iter()
        .map(|s| resolve_scope(topo, s).unwrap())
        .collect()
}

fn solve_seq(model: &lyra_solver::Model) -> Outcome {
    let (out, _) = solve_with_strategy(
        model,
        None,
        &Backend::Native,
        &[],
        SolverStrategy::Sequential,
    );
    out
}

#[test]
fn symmetry_breaking_preserves_verdicts_and_respects_automorphisms() {
    let mut rng = Rng::new(0x5eed_5117);
    let base_opts = EncodeOptions::default();
    let sym_opts = EncodeOptions {
        symmetry_breaking: true,
        ..Default::default()
    };
    let (mut sat_cases, mut unsat_cases, mut mapped) = (0u32, 0u32, 0u32);
    for case in 0..48 {
        let k = if case % 6 == 5 { 8 } else { 4 };
        // Two in three cases fit the pod; the rest ask for an extern far
        // beyond aggregate SRAM, forcing an UNSAT agreement check.
        let entries = if rng.below(3) == 0 {
            rng.range(80_000_000, 120_000_000)
        } else {
            rng.range(64, 1024)
        };
        let src = program(entries);
        let ir = lyra_ir::frontend(&src).unwrap();
        let topo = fat_tree_pod(k, "tofino-32q", "trident4");
        let scopes = pod_scopes(&topo, k);

        let base = encode(&ir, &topo, &scopes, &base_opts).unwrap();
        let sym = encode(&ir, &topo, &scopes, &sym_opts).unwrap();
        assert!(
            sym.model.num_bools() > base.model.num_bools(),
            "case {case}: a symmetric pod must produce lex aux variables"
        );

        match (solve_seq(&base.model), solve_seq(&sym.model)) {
            (Outcome::Unsat, Outcome::Unsat) => unsat_cases += 1,
            (Outcome::Sat(_), Outcome::Sat(sym_sol)) => {
                sat_cases += 1;
                // The two encodings create identical variables in identical
                // order; symmetry breaking only *appends* lex constraints
                // and aux variables. So the sym solution restricted to the
                // base variable prefix is addressable through base's maps.
                let classes = interchangeable_classes(&topo, &scopes);
                let class = classes
                    .iter()
                    .find(|c| c.len() >= 2)
                    .unwrap_or_else(|| panic!("case {case}: pod must have a class"));
                let (a, b) = (class[0], class[1]);
                let swap = |s: SwitchId| {
                    if s == a {
                        b
                    } else if s == b {
                        a
                    } else {
                        s
                    }
                };
                let mut bools = vec![false; base.model.num_bools()];
                let mut ints: Vec<i64> = base.model.int_decls().map(|(_, d)| d.lo).collect();
                for ((alg, s, i), v) in &base.instr_var {
                    let src = base.instr_var[&(alg.clone(), swap(*s), *i)];
                    bools[v.index()] = sym_sol.bool(src);
                }
                for ((e, s), v) in &base.extern_var {
                    let src = base.extern_var[&(e.clone(), swap(*s))];
                    ints[v.index()] = sym_sol.int(src);
                }
                for (s, v) in &base.switch_used {
                    bools[v.index()] = sym_sol.bool(base.switch_used[&swap(*s)]);
                }
                for ((s, alg, t), v) in &base.table_valid {
                    let src = base.table_valid[&(swap(*s), alg.clone(), t.clone())];
                    bools[v.index()] = sym_sol.bool(src);
                }
                for ((s, alg, t), v) in &base.table_depth {
                    let src = base.table_depth[&(swap(*s), alg.clone(), t.clone())];
                    ints[v.index()] = sym_sol.int(src);
                }
                let permuted = Solution::from_parts(bools, ints);
                assert!(
                    permuted.satisfies(&base.model),
                    "case {case} (k={k}, entries={entries}): transposing \
                     interchangeable switches {a:?}<->{b:?} broke the base encoding"
                );
                mapped += 1;
            }
            (b, s) => panic!(
                "case {case} (k={k}, entries={entries}): verdict mismatch \
                 base={b:?} sym={s:?}"
            ),
        }
    }
    assert!(sat_cases >= 20, "only {sat_cases} SAT cases explored");
    assert!(unsat_cases >= 8, "only {unsat_cases} UNSAT cases explored");
    assert_eq!(
        mapped, sat_cases,
        "every SAT case must exercise the mapping"
    );
}
