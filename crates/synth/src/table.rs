//! Synthesized table representation shared by the P4 and NPL back-ends.
//!
//! A [`SynthTable`] is the *conditional implementation* unit of §5.2–5.3:
//! it exists in the final program only if at least one of the IR
//! instructions it implements is placed on its switch (the table validity
//! constraint `V_t = ⋁ f_s(i)`).

use lyra_ir::{InstrId, ValueId};
use lyra_lang::MatchKind;

/// How a synthesized table matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableKind {
    /// Exact-match on an extern table's key columns.
    ExternMatch {
        /// Backing extern name.
        extern_name: String,
    },
    /// Match on a predicate's source fields (gateway-style table).
    PredicateGate,
    /// No match — a default-action table carrying computation.
    DirectAction,
    /// NPL logical table with `lookups` key constructions folded into one
    /// table (Figure 2's `check_ip` with `_LOOKUP0`/`_LOOKUP1`).
    NplLogical {
        /// Number of lookups merged into this logical table.
        lookups: u32,
        /// Backing extern name, if table-backed.
        extern_name: Option<String>,
    },
    /// A stateful register table (NPL logical register / P4 register+atom).
    Register {
        /// Backing global name.
        global: String,
    },
}

/// One action of a synthesized table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthAction {
    /// Action name (unique within the program, prefixed by algorithm —
    /// §7.3: "all the generated variables and tables for algorithm firewall
    /// are assigned the same prefix-name firewall").
    pub name: String,
    /// IR instructions this action executes.
    pub instrs: Vec<InstrId>,
}

/// A conditionally synthesized table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthTable {
    /// Table name (algorithm-prefixed).
    pub name: String,
    /// Owning algorithm.
    pub algorithm: String,
    /// Match behavior.
    pub kind: TableKind,
    /// Total match key width in bits (`M_t`).
    pub match_width: u64,
    /// Number of entries (`E_t`) — for extern-backed tables this is the
    /// *full* extern size; the solver may split it across switches.
    pub entries: u64,
    /// Actions.
    pub actions: Vec<SynthAction>,
    /// Predicate block this table came from (its guarding predicate value).
    pub pred: Option<ValueId>,
    /// Match kind of the key columns (drives SRAM-vs-TCAM residency).
    pub match_kind: MatchKind,
    /// Every IR instruction whose deployment makes this table valid.
    pub instrs: Vec<InstrId>,
    /// Indices (into the same table group) of tables this one must follow.
    pub depends_on: Vec<usize>,
    /// True if this table reads or writes a stateful register.
    pub stateful: bool,
}

impl SynthTable {
    /// Total number of actions.
    pub fn action_count(&self) -> u64 {
        self.actions.len() as u64
    }

    /// The extern backing this table, if any.
    pub fn extern_name(&self) -> Option<&str> {
        match &self.kind {
            TableKind::ExternMatch { extern_name } => Some(extern_name),
            TableKind::NplLogical {
                extern_name: Some(e),
                ..
            } => Some(e),
            _ => None,
        }
    }
}

/// A per-switch *conditional implementation*: the potential table group
/// `L_s` plus the instruction set `R_s` it was derived from (§5.2's
/// Algorithm 1 outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableGroup {
    /// Tables, in dependency order.
    pub tables: Vec<SynthTable>,
    /// Number of stateful register arrays referenced.
    pub registers: u64,
    /// Longest dependency chain through `tables` (stage lower bound; NPL's
    /// "longest code path").
    pub critical_path: u64,
}

impl TableGroup {
    /// Fuse strongly-connected components of the table dependency graph
    /// into single tables. Mutually-dependent logic cannot occupy distinct
    /// pipeline stages, so it must co-reside in one match-action unit —
    /// the table-level analogue of the paper's stateful atoms (App. A.5).
    pub fn fuse_cycles(&mut self) {
        let n = self.tables.len();
        if n == 0 {
            return;
        }
        // Iterative Tarjan SCC.
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut next_comp = 0usize;
        // DFS frame: (node, neighbor position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ni)) = frames.last_mut() {
                if *ni == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let deps = &self.tables[v].depends_on;
                if *ni < deps.len() {
                    let w = deps[*ni];
                    *ni += 1;
                    if w < n {
                        if index[w] == usize::MAX {
                            frames.push((w, 0));
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                } else {
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                    let done = v;
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        low[parent] = low[parent].min(low[done]);
                    }
                }
            }
        }
        if next_comp == n {
            return; // every component is a singleton — no cycles
        }
        // Merge each component into a representative table.
        let mut rep_of_comp: Vec<Option<usize>> = vec![None; next_comp];
        let mut new_index = vec![usize::MAX; n];
        let mut merged: Vec<SynthTable> = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            match rep_of_comp[comp[i]] {
                None => {
                    let ni = merged.len();
                    rep_of_comp[comp[i]] = Some(ni);
                    new_index[i] = ni;
                    merged.push(t.clone());
                }
                Some(ni) => {
                    new_index[i] = ni;
                    let rep = &mut merged[ni];
                    rep.actions.extend(t.actions.iter().cloned());
                    rep.instrs.extend(t.instrs.iter().copied());
                    rep.depends_on.extend(t.depends_on.iter().copied());
                    rep.stateful |= t.stateful;
                    rep.entries = rep.entries.max(t.entries);
                    rep.match_width = rep.match_width.max(t.match_width);
                }
            }
        }
        for (ti, t) in merged.iter_mut().enumerate() {
            let mut deps: Vec<usize> = t
                .depends_on
                .iter()
                .map(|&d| new_index[d])
                .filter(|&d| d != ti)
                .collect();
            deps.sort_unstable();
            deps.dedup();
            t.depends_on = deps;
        }
        self.tables = merged;
        self.compute_critical_path();
    }

    /// Reorder `tables` so every table appears after all the tables it
    /// depends on, keeping the current relative order among unordered
    /// tables (stable Kahn). The emitters execute tables in `tables`
    /// order — a consumer placed before its producer (e.g. an NPL lookup
    /// whose key a later function computes) silently reads stale state.
    /// Call after `fuse_cycles`: any residual cycle's members are left in
    /// their current order at the tail.
    pub fn sort_topological(&mut self) {
        let n = self.tables.len();
        if n <= 1 {
            return;
        }
        let mut indeg: Vec<usize> = vec![0; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ti, t) in self.tables.iter().enumerate() {
            for &d in &t.depends_on {
                if d < n && d != ti {
                    indeg[ti] += 1;
                    dependents[d].push(ti);
                }
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // Smallest ready index first keeps the sort stable.
        while let Some(next) = (0..n).find(|&i| !placed[i] && indeg[i] == 0) {
            placed[next] = true;
            order.push(next);
            for &w in &dependents[next] {
                indeg[w] -= 1;
            }
        }
        // Residual cycle (callers fuse first, so normally empty).
        order.extend((0..n).filter(|&i| !placed[i]));
        if order.iter().enumerate().all(|(pos, &i)| pos == i) {
            return;
        }
        let mut new_index = vec![usize::MAX; n];
        for (pos, &old) in order.iter().enumerate() {
            new_index[old] = pos;
        }
        let mut reordered: Vec<SynthTable> =
            order.iter().map(|&old| self.tables[old].clone()).collect();
        for t in &mut reordered {
            for d in &mut t.depends_on {
                if *d < n {
                    *d = new_index[*d];
                }
            }
        }
        self.tables = reordered;
    }

    /// Recompute the dependency critical path (in tables). Edges may point
    /// in either index direction as long as the graph is acyclic (run
    /// [`TableGroup::fuse_cycles`] first).
    pub fn compute_critical_path(&mut self) {
        let n = self.tables.len();
        let mut depth = vec![0u64; n];
        fn dfs(tables: &[SynthTable], depth: &mut [u64], v: usize, guard: usize) -> u64 {
            if depth[v] != 0 {
                return depth[v];
            }
            if guard == 0 {
                return 1; // cycle fallback — callers fuse cycles first
            }
            let mut best = 1u64;
            for &d in &tables[v].depends_on {
                if d < tables.len() && d != v {
                    best = best.max(1 + dfs(tables, depth, d, guard - 1));
                }
            }
            depth[v] = best;
            best
        }
        let mut max = 0u64;
        for v in 0..n {
            max = max.max(dfs(&self.tables, &mut depth, v, n));
        }
        self.critical_path = max;
    }

    /// Total table count.
    pub fn table_count(&self) -> u64 {
        self.tables.len() as u64
    }

    /// Total action count.
    pub fn action_count(&self) -> u64 {
        self.tables.iter().map(|t| t.action_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_table(name: &str, deps: Vec<usize>) -> SynthTable {
        SynthTable {
            name: name.into(),
            algorithm: "a".into(),
            kind: TableKind::DirectAction,
            match_width: 0,
            entries: 1,
            actions: vec![SynthAction {
                name: format!("{name}_act"),
                instrs: vec![],
            }],
            pred: None,
            match_kind: MatchKind::Exact,
            instrs: vec![],
            depends_on: deps,
            stateful: false,
        }
    }

    #[test]
    fn critical_path_computation() {
        let mut g = TableGroup {
            tables: vec![
                mk_table("a", vec![]),
                mk_table("b", vec![0]),
                mk_table("c", vec![1]),
            ],
            registers: 0,
            critical_path: 0,
        };
        g.compute_critical_path();
        assert_eq!(g.critical_path, 3);
        assert_eq!(g.table_count(), 3);
        assert_eq!(g.action_count(), 3);
    }

    #[test]
    fn topological_sort_moves_producer_first() {
        // `a` depends on `c` (listed later): after sorting, `c` precedes
        // `a` and the dependency indices are remapped.
        let mut g = TableGroup {
            tables: vec![
                mk_table("a", vec![2]),
                mk_table("b", vec![0]),
                mk_table("c", vec![]),
            ],
            registers: 0,
            critical_path: 0,
        };
        g.sort_topological();
        let names: Vec<&str> = g.tables.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
        assert_eq!(g.tables[1].depends_on, vec![0]); // a -> c
        assert_eq!(g.tables[2].depends_on, vec![1]); // b -> a
        g.compute_critical_path();
        assert_eq!(g.critical_path, 3);
    }

    #[test]
    fn topological_sort_is_stable_when_ordered() {
        let mut g = TableGroup {
            tables: vec![
                mk_table("a", vec![]),
                mk_table("b", vec![]),
                mk_table("c", vec![0, 1]),
            ],
            registers: 0,
            critical_path: 0,
        };
        g.sort_topological();
        let names: Vec<&str> = g.tables.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn independent_tables_path_one() {
        let mut g = TableGroup {
            tables: vec![mk_table("a", vec![]), mk_table("b", vec![])],
            registers: 0,
            critical_path: 0,
        };
        g.compute_critical_path();
        assert_eq!(g.critical_path, 1);
    }
}
