//! SMT encoding (§5.4–§5.6 and Appendices A–B): one constraint model that
//! simultaneously decides the chip-specific implementation *and* placement
//! of every algorithm.
//!
//! Variables:
//!
//! * `f_s(I)` — boolean per (switch, instruction): instruction `I` deploys
//!   on switch `s` (§5.1's deployment boolean function);
//! * `E_{e,s}` — integer per (extern table, switch): entries of `e` placed
//!   on `s` (§5.6 / eq. 16 splitting);
//! * `depth_t` — integer per synthesized table per switch: pipeline stage
//!   depth, enforcing the stage budget along dependency chains.
//!
//! Constraint families (all conditional on deployment, which is what rules
//! out plain ILP per §5.5):
//!
//! * scope — instructions only deploy inside their algorithm's scope;
//! * flow paths — every instruction appears exactly once on every path
//!   (extern lookups instead co-locate with their entries, which may be
//!   split);
//! * instruction dependencies (eq. 3) — consumers sit at-or-after
//!   producers along every path;
//! * global variables (App. B.2) — all instructions touching one global
//!   register co-locate;
//! * extern variables (eq. 16) — per path, the per-switch entry counts sum
//!   to the table size, and lookups exist exactly where entries do;
//! * chip resources (App. A) — memory blocks with word-packing (eqs. 11–12
//!   via `ceil_div`), table/action/atom budgets, PHV bits, parser TCAM
//!   entries, and dependency-depth ≤ stages (eqs. 13–15).

use std::collections::BTreeMap;

use lyra_chips::{by_name, ChipModel, TargetLang};
use lyra_ir::{dependency_graph, DepGraph, InstrId, IrProgram};
use lyra_lang::DeployMode;
use lyra_solver::{Bx, Ix, Model};
use lyra_topo::{ResolvedScope, SwitchId, Topology};

use crate::npl::{synthesize_npl, NplExtras};
use crate::p4::{synthesize_p4, P4Options, ParserHoists};
use crate::table::TableGroup;

/// What the solver should optimize (§6 / Appendix C.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Objective {
    /// Any feasible placement.
    #[default]
    Feasible,
    /// Minimize the number of switches hosting generated code.
    MinSwitches,
    /// Maximize utilization of one named switch (by minimizing deployment
    /// elsewhere).
    MaxUseOf(String),
}

/// Options for the whole synthesis + encoding pipeline.
#[derive(Debug, Clone, Default)]
pub struct EncodeOptions {
    /// P4 synthesis options.
    pub p4: P4Options,
    /// Optimization objective.
    pub objective: Objective,
    /// Allow one recirculation pass: a packet may traverse the pipeline
    /// twice, doubling the usable stage depth (§8 — "Lyra uses the
    /// recirculation as an optimization method to pack a longer program
    /// into one switch"). Code generation emits the `recirculate` call when
    /// a plan actually needs the second pass.
    pub allow_recirculation: bool,
    /// Encode full per-stage table assignment (eqs. 13–15): start/end stage
    /// variables per table, per-stage entry counts, per-stage memory and
    /// table-count budgets. More faithful and more expensive than the
    /// default aggregate encoding — intended for single-switch or small
    /// deployments.
    pub stage_detail: bool,
    /// Emit lexicographic tie-breaking constraints over verified
    /// interchangeable-switch classes (`lyra_topo::symmetry`), so the
    /// solver never branches over placements that differ only by a
    /// relabeling of equivalent pod switches. Sound: every solution of the
    /// original model maps to exactly one lex-canonical representative via
    /// a topology automorphism, so satisfiability is unchanged.
    pub symmetry_breaking: bool,
}

/// Errors from encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// Problem description.
    pub message: String,
    /// Stable diagnostic code classifying the failure.
    pub code: lyra_diag::Code,
}

impl EncodeError {
    fn new(code: lyra_diag::Code, message: impl Into<String>) -> Self {
        EncodeError {
            message: message.into(),
            code,
        }
    }

    /// Render this error as a structured [`lyra_diag::Diagnostic`].
    pub fn to_diagnostic(&self) -> lyra_diag::Diagnostic {
        lyra_diag::Diagnostic::error(self.code, self.message.clone())
    }
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "encoding error: {}", self.message)
    }
}

impl std::error::Error for EncodeError {}

/// One algorithm synthesized for one switch: the conditional implementation.
#[derive(Debug, Clone)]
pub struct SynthUnit {
    /// Algorithm name.
    pub alg: String,
    /// Target switch.
    pub switch: SwitchId,
    /// Chip model of the switch.
    pub chip: ChipModel,
    /// Conditional table group (`L_s`).
    pub group: TableGroup,
    /// Parser-hoisted instructions (P4 only).
    pub hoists: ParserHoists,
    /// NPL bus info (NPL only).
    pub npl: Option<NplExtras>,
}

/// The encoded model plus every map needed to interpret a solution.
#[derive(Debug)]
pub struct Encoded {
    /// The constraint model.
    pub model: Model,
    /// Instruction deployment variables: (algorithm, switch, instr) → var.
    pub instr_var: BTreeMap<(String, SwitchId, InstrId), lyra_solver::BoolId>,
    /// Extern entry-count variables: (extern, switch) → var. Absent for
    /// PER-SW scopes where the count is the full size.
    pub extern_var: BTreeMap<(String, SwitchId), lyra_solver::IntId>,
    /// Fixed extern entry counts (PER-SW full copies).
    pub extern_fixed: BTreeMap<(String, SwitchId), u64>,
    /// Per-(algorithm, switch) synthesized units.
    pub units: Vec<SynthUnit>,
    /// Switch-used variables (for objectives).
    pub switch_used: BTreeMap<SwitchId, lyra_solver::BoolId>,
    /// Table-validity variables: (switch, algorithm, table) → `V` bool.
    /// Recorded so a solution on one switch can be replicated onto an
    /// interchangeable one (quotient solving).
    pub table_valid: BTreeMap<(SwitchId, String, String), lyra_solver::BoolId>,
    /// Table-depth variables: (switch, algorithm, table) → depth int.
    pub table_depth: BTreeMap<(SwitchId, String, String), lyra_solver::IntId>,
    /// The objective expression, if one was requested.
    pub objective: Option<Ix>,
    /// Dependency graphs per algorithm (kept for placement extraction).
    pub deps: BTreeMap<String, DepGraph>,
    /// Resolved scopes by algorithm.
    pub scopes: BTreeMap<String, ResolvedScope>,
}

/// Build the complete model for `ir` on `topo` under `scopes`.
pub fn encode(
    ir: &IrProgram,
    topo: &Topology,
    scopes: &[ResolvedScope],
    opts: &EncodeOptions,
) -> Result<Encoded, EncodeError> {
    let mut model = Model::new();
    let mut enc = Encoded {
        model: Model::new(),
        instr_var: BTreeMap::new(),
        extern_var: BTreeMap::new(),
        extern_fixed: BTreeMap::new(),
        units: Vec::new(),
        switch_used: BTreeMap::new(),
        table_valid: BTreeMap::new(),
        table_depth: BTreeMap::new(),
        objective: None,
        deps: BTreeMap::new(),
        scopes: scopes
            .iter()
            .map(|s| (s.algorithm.clone(), s.clone()))
            .collect(),
    };

    // --- Per-algorithm: variables, synthesis, placement constraints ------
    for scope in scopes {
        let alg = ir.algorithm(&scope.algorithm).ok_or_else(|| {
            EncodeError::new(
                lyra_diag::codes::SCOPE_UNKNOWN_ALGORITHM,
                format!("scope references unknown algorithm `{}`", scope.algorithm),
            )
        })?;
        let deps = dependency_graph(alg);
        let all_instrs: Vec<InstrId> = alg.instr_ids().collect();

        // Deployment variables per programmable switch in scope.
        let mut prog_switches: Vec<(SwitchId, ChipModel)> = Vec::new();
        for &s in &scope.switches {
            let asic = &topo.switch(s).asic;
            let chip = by_name(asic).ok_or_else(|| {
                EncodeError::new(
                    lyra_diag::codes::UNKNOWN_ASIC,
                    format!(
                        "unknown ASIC model `{asic}` on switch {}",
                        topo.switch(s).name
                    ),
                )
            })?;
            if chip.programmable {
                prog_switches.push((s, chip));
            }
        }
        if prog_switches.is_empty() {
            return Err(EncodeError::new(
                lyra_diag::codes::NO_PROGRAMMABLE,
                format!(
                    "scope of `{}` contains no programmable switch",
                    scope.algorithm
                ),
            ));
        }

        for &(s, _) in &prog_switches {
            for &i in &all_instrs {
                let name = format!(
                    "f[{}][{}][i{}]",
                    scope.algorithm,
                    topo.switch(s).name,
                    i.index()
                );
                let v = model.bool_var(name);
                enc.instr_var.insert((scope.algorithm.clone(), s, i), v);
            }
        }

        // Extern tables used by this algorithm.
        let used_externs: Vec<String> = {
            let mut set = std::collections::BTreeSet::new();
            for &i in &all_instrs {
                if let Some(t) = alg.instr(i).op.table() {
                    set.insert(t.to_string());
                }
            }
            set.into_iter().collect()
        };

        match scope.deploy {
            DeployMode::PerSwitch => {
                // Every instruction on every switch of the region.
                for &(s, _) in &prog_switches {
                    for &i in &all_instrs {
                        let v = enc.instr_var[&(scope.algorithm.clone(), s, i)];
                        model.require(Bx::var(v));
                    }
                    for e in &used_externs {
                        let size = ir.externs.get(e).map(|x| x.size).unwrap_or(1024);
                        enc.extern_fixed.insert((e.clone(), s), size);
                    }
                }
            }
            DeployMode::MultiSwitch => {
                // Extern entry variables.
                for e in &used_externs {
                    let size = ir.externs.get(e).map(|x| x.size).unwrap_or(1024);
                    for &(s, _) in &prog_switches {
                        let v = model.int_var(
                            format!("E[{}][{}]", e, topo.switch(s).name),
                            0,
                            size as i64,
                        );
                        enc.extern_var.insert((e.clone(), s), v);
                    }
                }
                encode_multi_switch_placement(
                    &mut model,
                    &enc,
                    ir,
                    scope,
                    alg,
                    &deps,
                    &all_instrs,
                    &prog_switches,
                )?;
            }
        }

        // Synthesize the conditional implementation per switch.
        for &(s, ref chip) in &prog_switches {
            let unit = match chip.lang {
                TargetLang::P414 | TargetLang::P416 => {
                    let (group, hoists) = synthesize_p4(ir, alg, &deps, &all_instrs, &opts.p4);
                    SynthUnit {
                        alg: scope.algorithm.clone(),
                        switch: s,
                        chip: chip.clone(),
                        group,
                        hoists,
                        npl: None,
                    }
                }
                TargetLang::Npl => {
                    let (group, extras) = synthesize_npl(ir, alg, &deps, &all_instrs);
                    SynthUnit {
                        alg: scope.algorithm.clone(),
                        switch: s,
                        chip: chip.clone(),
                        group,
                        hoists: ParserHoists::default(),
                        npl: Some(extras),
                    }
                }
            };
            enc.units.push(unit);
        }

        enc.deps.insert(scope.algorithm.clone(), deps);
    }

    // --- Per-switch resource constraints (across all algorithms) ----------
    encode_switch_resources(&mut model, &mut enc, ir, topo, opts)?;

    // --- Symmetry breaking -------------------------------------------------
    if opts.symmetry_breaking {
        encode_symmetry_breaking(&mut model, &enc, topo, scopes, opts);
    }

    // --- Objective ---------------------------------------------------------
    match &opts.objective {
        Objective::Feasible => {}
        Objective::MinSwitches => {
            let mut terms = Vec::new();
            for (&s, &used) in &enc.switch_used {
                let _ = s;
                terms.push(Ix::bool01(used));
            }
            enc.objective = Some(Ix::sum(terms));
        }
        Objective::MaxUseOf(name) => {
            let target = topo.find(name).ok_or_else(|| {
                EncodeError::new(
                    lyra_diag::codes::ENCODE,
                    format!("MaxUseOf names unknown switch `{name}`"),
                )
            })?;
            // Minimize deployments on every switch except the target
            // (Appendix C.2: "assigning a much bigger weight for that
            // specified switch and minimizing the final result").
            let mut terms = Vec::new();
            for ((_, s, _), &v) in &enc.instr_var {
                if *s != target {
                    terms.push(Ix::bool01(v));
                }
            }
            enc.objective = Some(Ix::sum(terms));
        }
    }

    enc.model = model;
    Ok(enc)
}

/// One aligned element of two interchangeable switches' variable vectors.
enum LexElem {
    /// A deployment-boolean pair.
    B(lyra_solver::BoolId, lyra_solver::BoolId),
    /// An extern entry-count pair.
    I(lyra_solver::IntId, lyra_solver::IntId),
}

impl LexElem {
    fn ge(&self) -> Bx {
        match *self {
            LexElem::B(a, b) => Bx::or(vec![Bx::var(a), Bx::not(Bx::var(b))]),
            LexElem::I(a, b) => Ix::var(a).ge(Ix::var(b)),
        }
    }

    fn eq(&self) -> Bx {
        match *self {
            LexElem::B(a, b) => Bx::iff(Bx::var(a), Bx::var(b)),
            LexElem::I(a, b) => Ix::var(a).eq(Ix::var(b)),
        }
    }
}

/// Lexicographic tie-breaking over interchangeable-switch classes.
///
/// For every verified class `{s₁ < s₂ < … < sₙ}` (pairwise transpositions
/// are automorphisms of the topology *and* every scope —
/// `lyra_topo::symmetry`), require `vec(s₁) ≥lex vec(s₂) ≥lex … ≥lex
/// vec(sₙ)` where `vec(s)` concatenates *all* of `s`'s decision variables
/// across every algorithm (deployment booleans in `(algorithm,
/// instruction)` order, then extern entry counts in extern order). One
/// chain over the whole concatenated vector is essential: breaking each
/// scope independently could demand incompatible orderings and eliminate
/// entire solution orbits.
///
/// Soundness: permuting an interchangeable class maps solutions to
/// solutions (the transpositions are automorphisms of every constraint
/// family), and every orbit contains a lex-sorted member, so adding the
/// chains preserves satisfiability while collapsing each orbit to its
/// canonical representative — the solver never branches over relabelings.
///
/// `MaxUseOf` names a specific switch in the objective, which breaks the
/// symmetry between that switch and its classmates; the target is removed
/// from its class before the chains are emitted. (`MinSwitches` is
/// class-symmetric and needs no exclusion.)
fn encode_symmetry_breaking(
    model: &mut Model,
    enc: &Encoded,
    topo: &Topology,
    scopes: &[ResolvedScope],
    opts: &EncodeOptions,
) {
    let skip: Option<SwitchId> = match &opts.objective {
        Objective::MaxUseOf(name) => topo.find(name),
        _ => None,
    };
    let vec_for = |s: SwitchId| -> (Vec<lyra_solver::BoolId>, Vec<lyra_solver::IntId>) {
        let bools = enc
            .instr_var
            .iter()
            .filter(|((_, sw, _), _)| *sw == s)
            .map(|(_, &v)| v)
            .collect();
        let ints = enc
            .extern_var
            .iter()
            .filter(|((_, sw), _)| *sw == s)
            .map(|(_, &v)| v)
            .collect();
        (bools, ints)
    };
    for class in lyra_topo::interchangeable_classes(topo, scopes) {
        let members: Vec<SwitchId> = class.into_iter().filter(|&s| Some(s) != skip).collect();
        for pair in members.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (ba, ia) = vec_for(a);
            let (bb, ib) = vec_for(b);
            if ba.len() != bb.len() || ia.len() != ib.len() {
                // Vectors misaligned (shouldn't happen for a verified
                // class) — emitting nothing is always sound.
                continue;
            }
            let elems: Vec<LexElem> = ba
                .into_iter()
                .zip(bb)
                .map(|(x, y)| LexElem::B(x, y))
                .chain(ia.into_iter().zip(ib).map(|(x, y)| LexElem::I(x, y)))
                .collect();
            let tag = format!("{}>={}", topo.switch(a).name, topo.switch(b).name);
            let mut prefix = Bx::lit(true);
            for (i, e) in elems.iter().enumerate() {
                model.require(Bx::implies(prefix.clone(), e.ge()));
                if i + 1 < elems.len() {
                    // prefix-equal chain: pᵢ₊₁ ↔ pᵢ ∧ (aᵢ = bᵢ).
                    let p = model.bool_var(format!("lex[{tag}][{i}]"));
                    model.require(Bx::iff(Bx::var(p), Bx::and(vec![prefix.clone(), e.eq()])));
                    prefix = Bx::var(p);
                }
            }
        }
    }
}

/// Per-stage assignment encoding (eqs. 13–15): for each table `t`,
/// variables `b_start(t)`, `b_end(t)` and `E_{t,j}` such that entries only
/// occupy stages in `[b_start, b_end]`, they sum to the table's size, valid
/// dependent tables start strictly after their producers end, and each
/// stage respects its memory-block and table-count budgets.
fn encode_stage_detail(
    model: &mut Model,
    chip: &ChipModel,
    sw_name: &str,
    unit: &SynthUnit,
    table_valid: &[lyra_solver::BoolId],
    stages: i64,
) {
    let nstages = stages.max(1);
    let mut per_stage_mem: Vec<Vec<Ix>> = vec![Vec::new(); nstages as usize];
    let mut per_stage_tabs: Vec<Vec<Ix>> = vec![Vec::new(); nstages as usize];
    let mut starts: Vec<lyra_solver::IntId> = Vec::new();
    let mut ends: Vec<lyra_solver::IntId> = Vec::new();
    for (ti, t) in unit.group.tables.iter().enumerate() {
        let b_start = model.int_var(format!("bstart[{}][{}]", sw_name, t.name), 1, nstages);
        let b_end = model.int_var(format!("bend[{}][{}]", sw_name, t.name), 1, nstages);
        model.require(Ix::var(b_start).le(Ix::var(b_end)));
        starts.push(b_start);
        ends.push(b_end);
        let entries = t.entries.max(1) as i64;
        let mut sum_terms: Vec<Ix> = Vec::new();
        for j in 1..=nstages {
            let e_tj = model.int_var(format!("E[{}][{}][s{}]", sw_name, t.name, j), 0, entries);
            // Entries exist only within [b_start, b_end] (eq. 13).
            model.require(Bx::implies(
                Ix::lit(j).lt(Ix::var(b_start)),
                Ix::var(e_tj).eq(Ix::lit(0)),
            ));
            model.require(Bx::implies(
                Ix::lit(j).gt(Ix::var(b_end)),
                Ix::var(e_tj).eq(Ix::lit(0)),
            ));
            sum_terms.push(Ix::var(e_tj));
            // Stage memory contribution (eq. 15): blocks for E_{t,j} rows
            // of M_t bits, gated by validity.
            let m = t.match_width.max(1) as i64;
            let (h, w) = if t.match_kind.uses_tcam() {
                (
                    chip.tcam.entries.max(1) as i64,
                    chip.tcam.width.max(1) as i64,
                )
            } else {
                (
                    chip.sram.entries.max(1) as i64,
                    chip.sram.width.max(1) as i64,
                )
            };
            let blocks = if chip.word_packing && !t.match_kind.uses_tcam() {
                Ix::var(e_tj).ceil_div(h).scale(m).ceil_div(w)
            } else {
                Ix::var(e_tj).ceil_div(h).scale((m + w - 1) / w)
            };
            per_stage_mem[(j - 1) as usize].push(Ix::ite(
                Bx::var(table_valid[ti]),
                blocks,
                Ix::lit(0),
            ));
            // Table occupies stage j iff b_start ≤ j ≤ b_end.
            let occupies = Bx::and(vec![
                Ix::var(b_start).le(Ix::lit(j)),
                Ix::lit(j).le(Ix::var(b_end)),
                Bx::var(table_valid[ti]),
            ]);
            per_stage_tabs[(j - 1) as usize].push(Ix::ite(occupies, Ix::lit(1), Ix::lit(0)));
        }
        // A valid table's entries must all be placed (eq. 13's ≥ E_t).
        model.require(Bx::implies(
            Bx::var(table_valid[ti]),
            Ix::sum(sum_terms).ge(Ix::lit(entries)),
        ));
    }
    // Dependent tables start strictly after their producers end (eq. 14).
    for (ti, t) in unit.group.tables.iter().enumerate() {
        for &d in &t.depends_on {
            if d >= starts.len() {
                continue;
            }
            let both = Bx::and(vec![Bx::var(table_valid[ti]), Bx::var(table_valid[d])]);
            model.require(Bx::implies(both, Ix::var(starts[ti]).gt(Ix::var(ends[d]))));
        }
    }
    // Per-stage budgets. With recirculation the stage index wraps modulo
    // the physical stage count; both passes share the physical budget, so
    // halve it per logical stage (a conservative approximation).
    let phys = chip.stages.max(1) as i64;
    let passes = (nstages + phys - 1) / phys;
    let mem_budget = (chip.sram.blocks.max(chip.tcam.blocks) as i64) / passes.max(1);
    let tab_budget = (chip.max_tables_per_stage as i64) / passes.max(1);
    for j in 0..nstages as usize {
        let mem = std::mem::take(&mut per_stage_mem[j]);
        if !mem.is_empty() {
            model.require(Ix::sum(mem).le(Ix::lit(mem_budget.max(1))));
        }
        let tabs = std::mem::take(&mut per_stage_tabs[j]);
        if !tabs.is_empty() {
            model.require(Ix::sum(tabs).le(Ix::lit(tab_budget.max(1))));
        }
    }
}

/// Flow-path, dependency, global and extern constraints for one MULTI-SW
/// algorithm.
#[allow(clippy::too_many_arguments)]
fn encode_multi_switch_placement(
    model: &mut Model,
    enc: &Encoded,
    ir: &IrProgram,
    scope: &ResolvedScope,
    alg: &lyra_ir::IrAlgorithm,
    deps: &DepGraph,
    all_instrs: &[InstrId],
    prog_switches: &[(SwitchId, ChipModel)],
) -> Result<(), EncodeError> {
    let prog_set: std::collections::BTreeSet<SwitchId> =
        prog_switches.iter().map(|&(s, _)| s).collect();
    let var = |i: InstrId, s: SwitchId| -> Option<lyra_solver::BoolId> {
        enc.instr_var.get(&(scope.algorithm.clone(), s, i)).copied()
    };
    let evar = |e: &str, s: SwitchId| -> Option<lyra_solver::IntId> {
        enc.extern_var.get(&(e.to_string(), s)).copied()
    };

    // Partition instructions: extern readers co-locate with entries; the
    // rest obey exactly-once-per-path.
    let reader_of = |i: InstrId| -> Option<String> { alg.instr(i).op.table().map(str::to_string) };

    for path in &scope.paths {
        // Only programmable switches can host anything; a path hop through
        // a fixed-function switch is transit-only.
        let hops: Vec<SwitchId> = path
            .iter()
            .copied()
            .filter(|s| prog_set.contains(s))
            .collect();
        if hops.is_empty() {
            return Err(EncodeError::new(
                lyra_diag::codes::NO_PROGRAMMABLE,
                format!(
                    "a flow path of `{}` crosses no programmable switch",
                    scope.algorithm
                ),
            ));
        }
        for &i in all_instrs {
            match reader_of(i) {
                None => {
                    // Exactly one deployment along the path.
                    let sum = Ix::sum(
                        hops.iter()
                            .filter_map(|&s| var(i, s))
                            .map(Ix::bool01)
                            .collect(),
                    );
                    model.require(sum.eq(Ix::lit(1)));
                }
                Some(e) => {
                    // Lookup exists exactly where entries do (eq. 16) —
                    // constrained below per switch; here: entries along the
                    // path sum to the full size.
                    let size = ir.externs.get(&e).map(|x| x.size).unwrap_or(1024);
                    let sum = Ix::sum(
                        hops.iter()
                            .filter_map(|&s| evar(&e, s))
                            .map(Ix::var)
                            .collect(),
                    );
                    model.require(sum.eq(Ix::lit(size as i64)));
                }
            }
        }

        // Instruction dependencies (eq. 3) along this path.
        for &b in all_instrs {
            for &a in deps.pred_list(b) {
                match (reader_of(a), reader_of(b)) {
                    (None, None) => {
                        // b at hop j → a at some hop j' ≤ j.
                        for (j, &sb) in hops.iter().enumerate() {
                            let Some(vb) = var(b, sb) else { continue };
                            let earlier: Vec<Bx> = hops[..=j]
                                .iter()
                                .filter_map(|&sa| var(a, sa))
                                .map(Bx::var)
                                .collect();
                            model.require(Bx::implies(Bx::var(vb), Bx::or(earlier)));
                        }
                    }
                    (Some(e), None) => {
                        // b consumes a lookup of e: b must sit at-or-after
                        // the last switch holding entries of e.
                        for (j, &sb) in hops.iter().enumerate() {
                            let Some(vb) = var(b, sb) else { continue };
                            for &later in &hops[j + 1..] {
                                if let Some(ev) = evar(&e, later) {
                                    model.require(Bx::implies(
                                        Bx::var(vb),
                                        Ix::var(ev).eq(Ix::lit(0)),
                                    ));
                                }
                            }
                        }
                    }
                    (None, Some(e)) => {
                        // The lookup of e depends on a (key computation):
                        // a must sit at-or-before the first entries of e.
                        for (j, &sa) in hops.iter().enumerate() {
                            let Some(va) = var(a, sa) else { continue };
                            for &earlier in &hops[..j] {
                                if let Some(ev) = evar(&e, earlier) {
                                    model.require(Bx::implies(
                                        Bx::var(va),
                                        Ix::var(ev).eq(Ix::lit(0)),
                                    ));
                                }
                            }
                        }
                    }
                    (Some(_), Some(_)) => {
                        // Lookup-to-lookup ordering is induced through the
                        // shared entry variables; nothing extra to add.
                    }
                }
            }
        }
    }

    // Lookup instruction ↔ entries co-location (eq. 16's co-existence),
    // per switch.
    for &(s, _) in prog_switches {
        for &i in all_instrs {
            if let Some(e) = reader_of(i) {
                if let (Some(fv), Some(ev)) = (var(i, s), evar(&e, s)) {
                    model.require(Bx::iff(Bx::var(fv), Ix::var(ev).ge(Ix::lit(1))));
                }
            }
        }
    }

    // Global variables co-locate (Appendix B.2): every pair of instructions
    // touching the same global register deploys identically.
    let mut global_users: BTreeMap<String, Vec<InstrId>> = BTreeMap::new();
    for &i in all_instrs {
        if let Some(g) = alg.instr(i).op.global() {
            global_users.entry(g.to_string()).or_default().push(i);
        }
    }
    for users in global_users.values() {
        for w in users.windows(2) {
            for &(s, _) in prog_switches {
                if let (Some(a), Some(b)) = (var(w[0], s), var(w[1], s)) {
                    model.require(Bx::iff(Bx::var(a), Bx::var(b)));
                }
            }
        }
    }

    Ok(())
}

/// Per-switch chip resource constraints aggregated over all algorithms.
fn encode_switch_resources(
    model: &mut Model,
    enc: &mut Encoded,
    ir: &IrProgram,
    topo: &Topology,
    opts: &EncodeOptions,
) -> Result<(), EncodeError> {
    // Group units by switch.
    let mut by_switch: BTreeMap<SwitchId, Vec<usize>> = BTreeMap::new();
    for (ui, u) in enc.units.iter().enumerate() {
        by_switch.entry(u.switch).or_default().push(ui);
    }

    for (&s, unit_ids) in &by_switch {
        let chip = enc.units[unit_ids[0]].chip.clone();
        let sw_name = topo.switch(s).name.clone();

        let mut any_deploy: Vec<Bx> = Vec::new();
        let mut mem_terms: Vec<Ix> = Vec::new();
        let mut tcam_terms: Vec<Ix> = Vec::new();
        let mut table_terms: Vec<Ix> = Vec::new();
        let mut action_terms: Vec<Ix> = Vec::new();
        let mut atom_terms: Vec<Ix> = Vec::new();
        let mut parser_terms: Vec<Ix> = Vec::new();
        // PHV usage is switch-wide: header fields are shared by every
        // algorithm on the switch (one PHV container per field), while
        // locals/metadata are algorithm-prefixed and isolated.
        let mut phv_touch: BTreeMap<String, (u32, Vec<Bx>)> = BTreeMap::new();

        for &ui in unit_ids {
            let unit = &enc.units[ui];
            let alg = ir
                .algorithm(&unit.alg)
                .expect("unit names a lowered algorithm");

            // Table validity and per-table resources.
            let mut table_valid: Vec<lyra_solver::BoolId> = Vec::new();
            for t in &unit.group.tables {
                let v = model.bool_var(format!("V[{}][{}]", sw_name, t.name));
                let members: Vec<Bx> = t
                    .instrs
                    .iter()
                    .filter_map(|&i| enc.instr_var.get(&(unit.alg.clone(), s, i)).copied())
                    .map(Bx::var)
                    .collect();
                model.require(Bx::iff(Bx::var(v), Bx::or(members)));
                enc.table_valid
                    .insert((s, unit.alg.clone(), t.name.clone()), v);
                table_valid.push(v);

                let valid = Bx::var(v);
                table_terms.push(Ix::ite(valid.clone(), Ix::lit(1), Ix::lit(0)));
                action_terms.push(Ix::ite(
                    valid.clone(),
                    Ix::lit(t.action_count() as i64),
                    Ix::lit(0),
                ));
                if t.stateful {
                    atom_terms.push(Ix::ite(valid.clone(), Ix::lit(1), Ix::lit(0)));
                }

                // Memory blocks (eqs. 2, 11, 15): variable-sized for split
                // externs, constant otherwise. Non-exact match kinds (lpm /
                // ternary / range) consume TCAM blocks instead of SRAM, with
                // range rules expanded on chips lacking native range match
                // (Appendix D).
                let tcam_resident = t.match_kind.uses_tcam()
                    && !matches!(t.kind, crate::table::TableKind::PredicateGate);
                let is_range = t.match_kind == lyra_lang::MatchKind::Range;
                let blocks: Ix = match t.extern_name() {
                    Some(e) => {
                        if let Some(&ev) = enc.extern_var.get(&(e.to_string(), s)) {
                            let m = t.match_width.max(1) as i64;
                            if tcam_resident {
                                let h = chip.tcam.entries.max(1) as i64;
                                let w = chip.tcam.width.max(1) as i64;
                                let exp = if is_range && !chip.supports_range_match {
                                    chip.range_expansion.max(1) as i64
                                } else {
                                    1
                                };
                                Ix::var(ev).scale(exp).ceil_div(h).scale((m + w - 1) / w)
                            } else {
                                let h = chip.sram.entries.max(1) as i64;
                                let w = chip.sram.width.max(1) as i64;
                                if chip.word_packing {
                                    // ceil(ceil(E/h)·M / w)
                                    Ix::var(ev).ceil_div(h).scale(m).ceil_div(w)
                                } else {
                                    // ceil(E/h)·ceil(M/w)
                                    Ix::var(ev).ceil_div(h).scale((m + w - 1) / w)
                                }
                            }
                        } else {
                            let entries = enc
                                .extern_fixed
                                .get(&(e.to_string(), s))
                                .copied()
                                .unwrap_or(t.entries);
                            if tcam_resident {
                                Ix::lit(chip.tcam_blocks(entries, t.match_width, is_range) as i64)
                            } else {
                                Ix::lit(chip.table_blocks(entries, t.match_width) as i64)
                            }
                        }
                    }
                    None => Ix::lit(chip.table_blocks(t.entries, t.match_width) as i64),
                };
                if tcam_resident {
                    tcam_terms.push(Ix::ite(valid, blocks, Ix::lit(0)));
                } else {
                    mem_terms.push(Ix::ite(valid, blocks, Ix::lit(0)));
                }
            }

            // Dependency depth ≤ stages (eqs. 13–14, collapsed to depth
            // variables: a valid table sits strictly after every valid
            // table it depends on). With recirculation enabled the packet
            // may take a second pass, doubling the usable depth.
            let pass_count = if opts.allow_recirculation { 2 } else { 1 };
            let stages = (chip.stages.max(1) as i64) * pass_count;
            let depth: Vec<lyra_solver::IntId> = unit
                .group
                .tables
                .iter()
                .map(|t| {
                    let d = model.int_var(format!("depth[{}][{}]", sw_name, t.name), 1, stages);
                    enc.table_depth
                        .insert((s, unit.alg.clone(), t.name.clone()), d);
                    d
                })
                .collect();
            for (ti, t) in unit.group.tables.iter().enumerate() {
                for &d in &t.depends_on {
                    let both = Bx::and(vec![Bx::var(table_valid[ti]), Bx::var(table_valid[d])]);
                    model.require(Bx::implies(
                        both,
                        Ix::var(depth[ti]).ge(Ix::var(depth[d]).add(Ix::lit(1))),
                    ));
                }
            }

            // Full per-stage assignment (eqs. 13–15) when requested: every
            // table gets start/end stage variables and per-stage entry
            // counts; memory and table-count budgets are enforced per stage
            // rather than in aggregate.
            if opts.stage_detail {
                encode_stage_detail(model, &chip, &sw_name, unit, &table_valid, stages);
            }

            // PHV usage: every storage base touched by a deployed
            // instruction occupies its width (eqs. 9–10 collapsed to the
            // aggregate bit budget; per-word-class packing is validated by
            // `lyra-chips::phv` at codegen time). Header fields are keyed
            // switch-wide, locals per algorithm.
            for i in alg.instr_ids() {
                let Some(&fv) = enc.instr_var.get(&(unit.alg.clone(), s, i)) else {
                    continue;
                };
                let instr = alg.instr(i);
                let mut values: Vec<lyra_ir::ValueId> = Vec::new();
                for o in instr.op.reads() {
                    if let lyra_ir::Operand::Value(v) = o {
                        values.push(v);
                    }
                }
                if let Some(d) = instr.dst {
                    values.push(d);
                }
                if let Some(p) = instr.pred {
                    values.push(p);
                }
                for v in values {
                    let info = alg.value(v);
                    let key = if info.base.contains('.') {
                        info.base.clone()
                    } else {
                        format!("{}:{}", unit.alg, info.base)
                    };
                    let entry = phv_touch.entry(key).or_insert((info.width, Vec::new()));
                    entry.0 = entry.0.max(info.width);
                    entry.1.push(Bx::var(fv));
                }
            }

            // Parser TCAM: one entry per header whose fields a deployed
            // instruction touches (plus parser-graph ancestors — eqs. 6–8).
            let mut header_touch: BTreeMap<String, Vec<Bx>> = BTreeMap::new();
            for i in alg.instr_ids() {
                let Some(&fv) = enc.instr_var.get(&(unit.alg.clone(), s, i)) else {
                    continue;
                };
                let instr = alg.instr(i);
                let mut values: Vec<lyra_ir::ValueId> = Vec::new();
                for o in instr.op.reads() {
                    if let lyra_ir::Operand::Value(v) = o {
                        values.push(v);
                    }
                }
                if let Some(d) = instr.dst {
                    values.push(d);
                }
                for v in values {
                    let info = alg.value(v);
                    if let Some((inst, _)) = info.base.split_once('.') {
                        for anc in crate::parser_deps::with_ancestors(ir, inst) {
                            header_touch.entry(anc).or_default().push(Bx::var(fv));
                        }
                    }
                }
            }
            for (h, touches) in header_touch {
                let entries = crate::parser_deps::parser_entries_for(ir, &h) as i64;
                parser_terms.push(Ix::ite(Bx::or(touches), Ix::lit(entries), Ix::lit(0)));
            }

            // Track switch usage for objectives.
            for i in alg.instr_ids() {
                if let Some(&fv) = enc.instr_var.get(&(unit.alg.clone(), s, i)) {
                    any_deploy.push(Bx::var(fv));
                }
            }
        }

        let phv_terms: Vec<Ix> = phv_touch
            .into_values()
            .map(|(width, touches)| Ix::ite(Bx::or(touches), Ix::lit(width as i64), Ix::lit(0)))
            .collect();

        // Budgets.
        let total_blocks = chip.total_sram_blocks() as i64;
        model.require(Ix::sum(mem_terms).le(Ix::lit(total_blocks)));
        if !tcam_terms.is_empty() {
            let total_tcam = chip.total_tcam_blocks() as i64;
            model.require(Ix::sum(tcam_terms).le(Ix::lit(total_tcam)));
        }
        let table_cap = (chip.stages as i64) * (chip.max_tables_per_stage as i64);
        model.require(Ix::sum(table_terms).le(Ix::lit(table_cap)));
        let action_cap = (chip.stages as i64) * (chip.max_actions_per_stage as i64);
        model.require(Ix::sum(action_terms).le(Ix::lit(action_cap)));
        let atom_cap = (chip.stages as i64) * (chip.atoms_per_stage as i64);
        if !atom_terms.is_empty() {
            model.require(Ix::sum(atom_terms).le(Ix::lit(atom_cap)));
        }
        let phv_bits: i64 = chip.phv.iter().map(|c| (c.width * c.count) as i64).sum();
        model.require(Ix::sum(phv_terms).le(Ix::lit(phv_bits)));
        if !parser_terms.is_empty() {
            model.require(Ix::sum(parser_terms).le(Ix::lit(chip.parser_tcam_entries as i64)));
        }

        // used_s ↔ any deployment on s.
        let used = model.bool_var(format!("used[{sw_name}]"));
        model.require(Bx::iff(Bx::var(used), Bx::or(any_deploy)));
        enc.switch_used.insert(s, used);
    }

    Ok(())
}
