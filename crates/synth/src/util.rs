//! Shared synthesis helpers: *predicate plumbing* analysis.
//!
//! Branch removal (§4.2) materializes conditions as explicit instructions —
//! comparisons, `!c` negations, `p && c` conjunctions. On a real ASIC these
//! are not match-action work: they become a table's *gateway condition* /
//! match key. Synthesis therefore filters them out of table construction
//! ("plumbing") while dependency analysis traces *through* them so table
//! ordering stays correct.

use std::collections::{BTreeMap, BTreeSet};

use lyra_ir::{DepGraph, InstrId, IrAlgorithm, IrOp, Operand, ValueId};
use lyra_lang::UnOp;

/// Instructions whose only purpose is computing predicates: comparisons,
/// logical connectives and negations whose results feed (transitively) only
/// into predicate positions.
pub fn compute_plumbing(alg: &IrAlgorithm, subset: &[InstrId]) -> BTreeSet<InstrId> {
    let subset_set: BTreeSet<InstrId> = subset.iter().copied().collect();
    // use map: value → (used as operand by, used as pred by)
    let mut operand_uses: BTreeMap<ValueId, Vec<InstrId>> = BTreeMap::new();
    let mut pred_uses: BTreeMap<ValueId, Vec<InstrId>> = BTreeMap::new();
    for &i in subset {
        let instr = alg.instr(i);
        for o in instr.op.reads() {
            if let Operand::Value(v) = o {
                operand_uses.entry(v).or_default().push(i);
            }
        }
        if let Some(p) = instr.pred {
            pred_uses.entry(p).or_default().push(i);
        }
    }
    let candidate = |i: InstrId| -> bool {
        let instr = alg.instr(i);
        match &instr.op {
            IrOp::Binary { op, .. } => op.is_comparison() || op.is_logical(),
            IrOp::Unary { op: UnOp::Not, .. } => true,
            _ => false,
        }
    };
    // Optimistic fixpoint: start with all candidates, evict any whose result
    // is consumed by a non-plumbing instruction as a data operand.
    let mut plumbing: BTreeSet<InstrId> =
        subset.iter().copied().filter(|&i| candidate(i)).collect();
    loop {
        let mut evict: Vec<InstrId> = Vec::new();
        for &i in &plumbing {
            let Some(d) = alg.instr(i).dst else {
                evict.push(i);
                continue;
            };
            let data_consumers = operand_uses.get(&d).map(Vec::as_slice).unwrap_or(&[]);
            let bad = data_consumers
                .iter()
                .any(|u| !plumbing.contains(u) && subset_set.contains(u));
            // A result never used at all (neither pred nor operand) keeps
            // its instruction — it may write an observable field.
            let unused = data_consumers.is_empty() && !pred_uses.contains_key(&d);
            if bad || unused {
                evict.push(i);
            }
        }
        if evict.is_empty() {
            break;
        }
        for e in evict {
            plumbing.remove(&e);
        }
    }
    plumbing
}

/// Direct dependencies of `i`, tracing *through* plumbing instructions to
/// the real (table-resident) producers.
pub fn real_deps(
    alg: &IrAlgorithm,
    deps: &DepGraph,
    plumbing: &BTreeSet<InstrId>,
    i: InstrId,
) -> Vec<InstrId> {
    let mut out = Vec::new();
    let mut stack: Vec<InstrId> = deps.pred_list(i).to_vec();
    let mut seen = BTreeSet::new();
    while let Some(p) = stack.pop() {
        if !seen.insert(p) {
            continue;
        }
        if plumbing.contains(&p) {
            stack.extend(deps.pred_list(p));
        } else if !out.contains(&p) {
            out.push(p);
        }
    }
    let _ = alg;
    out
}

/// If predicate value `v` is rooted (through plumbing / copies) in an
/// extern table read, the extern's name.
pub fn pred_extern_root(alg: &IrAlgorithm, v: ValueId) -> Option<String> {
    let mut stack = vec![v];
    let mut seen = BTreeSet::new();
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        let Some(def) = alg.value(cur).def else {
            continue;
        };
        match &alg.instr(def).op {
            IrOp::TableMember { table, .. } | IrOp::TableLookup { table, .. } => {
                return Some(table.clone())
            }
            op => {
                for o in op.reads() {
                    if let Operand::Value(src) = o {
                        stack.push(src);
                    }
                }
            }
        }
    }
    None
}

/// The non-plumbing instruction that semantically produces predicate `v`
/// (walking through negations, conjunctions and copies). `None` when the
/// predicate is rooted only in live-in metadata.
pub fn semantic_pred_writer(
    alg: &IrAlgorithm,
    plumbing: &BTreeSet<InstrId>,
    v: ValueId,
) -> Option<InstrId> {
    let mut stack = vec![v];
    let mut seen = BTreeSet::new();
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        let Some(def) = alg.value(cur).def else {
            continue;
        };
        if !plumbing.contains(&def) {
            return Some(def);
        }
        for o in alg.instr(def).op.reads() {
            if let Operand::Value(src) = o {
                stack.push(src);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::{dependency_graph, frontend};

    #[test]
    fn comparisons_feeding_predicates_are_plumbing() {
        let ir = frontend("pipeline[P]{a}; algorithm a { if (x == 5) { y = 1; } }").unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        // The comparison is plumbing; the assignment is not.
        assert_eq!(plumbing.len(), 1);
        let p = *plumbing.iter().next().unwrap();
        assert!(matches!(alg.instr(p).op, IrOp::Binary { .. }));
    }

    #[test]
    fn comparison_stored_to_field_is_not_plumbing() {
        // The comparison result is written to a header field — observable.
        let ir =
            frontend("pipeline[P]{a}; algorithm a { c = x == 5; md.flag = c; if (c) { y = 1; } }")
                .unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        // The cmp's value feeds a data assign (md.flag = c) → not plumbing.
        assert!(plumbing.is_empty(), "{plumbing:?}\n{}", alg.to_text());
    }

    #[test]
    fn real_deps_traces_through_plumbing() {
        let ir =
            frontend("pipeline[P]{a}; algorithm a { h = crc32_hash(x); if (h == 5) { y = 1; } }")
                .unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        // The gated assignment depends (through the comparison) on the hash.
        let assign = subset
            .iter()
            .copied()
            .find(|&i| {
                alg.instr(i)
                    .dst
                    .map(|d| alg.value(d).base == "y")
                    .unwrap_or(false)
            })
            .unwrap();
        let hash = subset
            .iter()
            .copied()
            .find(|&i| matches!(alg.instr(i).op, IrOp::Call { .. }))
            .unwrap();
        let rd = real_deps(alg, &deps, &plumbing, assign);
        assert!(rd.contains(&hash), "{rd:?}");
    }

    #[test]
    fn extern_root_detected() {
        let ir = frontend(
            r#"
            pipeline[P]{a};
            algorithm a {
                extern list<bit[32] k>[16] t;
                if (x in t) { y = 1; }
            }
            "#,
        )
        .unwrap();
        let alg = &ir.algorithms[0];
        let gated = alg
            .instr_ids()
            .find(|&i| alg.instr(i).pred.is_some())
            .unwrap();
        let pred = alg.instr(gated).pred.unwrap();
        assert_eq!(pred_extern_root(alg, pred).as_deref(), Some("t"));
    }

    #[test]
    fn negated_branch_shares_semantic_writer() {
        let ir = frontend(
            "pipeline[P]{a}; algorithm a { h = crc32_hash(x); if (h == 1) { y = 1; } else { y = 2; } }",
        )
        .unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        let preds: Vec<ValueId> = alg.instr_ids().filter_map(|i| alg.instr(i).pred).collect();
        assert!(preds.len() >= 2);
        let writers: BTreeSet<_> = preds
            .iter()
            .filter_map(|&p| semantic_pred_writer(alg, &plumbing, p))
            .collect();
        // Both branches root in the same hash-producing instruction.
        assert_eq!(writers.len(), 1);
    }
}
