//! Shared synthesis helpers: *predicate plumbing* analysis.
//!
//! Branch removal (§4.2) materializes conditions as explicit instructions —
//! comparisons, `!c` negations, `p && c` conjunctions. On a real ASIC these
//! are not match-action work: they become a table's *gateway condition* /
//! match key. Synthesis therefore filters them out of table construction
//! ("plumbing") while dependency analysis traces *through* them so table
//! ordering stays correct.

use std::collections::{BTreeMap, BTreeSet};

use lyra_ir::{DepGraph, InstrId, IrAlgorithm, IrOp, Operand, ValueId};
use lyra_lang::UnOp;

/// Instructions whose only purpose is computing predicates: comparisons,
/// logical connectives and negations whose results feed (transitively) only
/// into predicate positions.
pub fn compute_plumbing(alg: &IrAlgorithm, subset: &[InstrId]) -> BTreeSet<InstrId> {
    let subset_set: BTreeSet<InstrId> = subset.iter().copied().collect();
    // use map: value → (used as operand by, used as pred by)
    let mut operand_uses: BTreeMap<ValueId, Vec<InstrId>> = BTreeMap::new();
    let mut pred_uses: BTreeMap<ValueId, Vec<InstrId>> = BTreeMap::new();
    for &i in subset {
        let instr = alg.instr(i);
        for o in instr.op.reads() {
            if let Operand::Value(v) = o {
                operand_uses.entry(v).or_default().push(i);
            }
        }
        if let Some(p) = instr.pred {
            pred_uses.entry(p).or_default().push(i);
        }
    }
    let candidate = |i: InstrId| -> bool {
        let instr = alg.instr(i);
        match &instr.op {
            IrOp::Binary { op, .. } => op.is_comparison() || op.is_logical(),
            IrOp::Unary { op: UnOp::Not, .. } => true,
            _ => false,
        }
    };
    // Optimistic fixpoint: start with all candidates, evict any whose result
    // is consumed by a non-plumbing instruction as a data operand.
    let mut plumbing: BTreeSet<InstrId> =
        subset.iter().copied().filter(|&i| candidate(i)).collect();
    loop {
        let mut evict: Vec<InstrId> = Vec::new();
        for &i in &plumbing {
            let Some(d) = alg.instr(i).dst else {
                evict.push(i);
                continue;
            };
            let data_consumers = operand_uses.get(&d).map(Vec::as_slice).unwrap_or(&[]);
            let bad = data_consumers
                .iter()
                .any(|u| !plumbing.contains(u) && subset_set.contains(u));
            // A result never used at all (neither pred nor operand) keeps
            // its instruction — it may write an observable field.
            let unused = data_consumers.is_empty() && !pred_uses.contains_key(&d);
            if bad || unused {
                evict.push(i);
            }
        }
        if evict.is_empty() {
            break;
        }
        for e in evict {
            plumbing.remove(&e);
        }
    }
    // Stability pass: a plumbing instruction is *inlined* into the gateway
    // conditions of its (transitively) predicated consumers, which re-reads
    // its operands at gate time. That is only sound when no operand base is
    // overwritten between the producer and the last gate consuming it —
    // e.g. `c = x == 5; x = 2; if (c) { ... }` must gate on the stored `c`,
    // not re-evaluate `x == 5` against the new `x`. Evict unstable
    // candidates; they are materialized as real statements instead.
    let mut write_at: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for &i in subset {
        if let Some(d) = alg.instr(i).dst {
            write_at
                .entry(alg.value(d).base.as_str())
                .or_default()
                .push(i.index());
        }
    }
    loop {
        // Horizon H(i): the largest instruction index that (transitively)
        // gates on i's result. Consumers always follow producers, so one
        // pass in decreasing index order suffices.
        let mut horizon: BTreeMap<InstrId, usize> = BTreeMap::new();
        let mut ordered: Vec<InstrId> = plumbing.iter().copied().collect();
        ordered.sort_by_key(|b| std::cmp::Reverse(b.index()));
        for &i in &ordered {
            let Some(d) = alg.instr(i).dst else { continue };
            let mut h = pred_uses
                .get(&d)
                .map(|us| us.iter().map(|u| u.index()).max().unwrap_or(0))
                .unwrap_or(0);
            for u in operand_uses.get(&d).map(Vec::as_slice).unwrap_or(&[]) {
                if plumbing.contains(u) {
                    h = h.max(horizon.get(u).copied().unwrap_or(0));
                }
            }
            horizon.insert(i, h);
        }
        let mut evict: Vec<InstrId> = Vec::new();
        for &i in &plumbing {
            let h = horizon.get(&i).copied().unwrap_or(0);
            let unstable = alg.instr(i).op.reads().iter().any(|o| {
                let Operand::Value(v) = o else { return false };
                // Operands with plumbing defs are themselves inlined, not
                // read from storage — their own stability is checked
                // directly.
                if alg.value(*v).def.map(|d| plumbing.contains(&d)) == Some(true) {
                    return false;
                }
                write_at
                    .get(alg.value(*v).base.as_str())
                    .map(|ws| ws.iter().any(|&w| w > i.index() && w < h))
                    .unwrap_or(false)
            });
            if unstable {
                evict.push(i);
            }
        }
        if evict.is_empty() {
            break;
        }
        for e in evict {
            plumbing.remove(&e);
        }
    }
    plumbing
}

/// Direct dependencies of `i`, tracing *through* plumbing instructions to
/// the real (table-resident) producers.
pub fn real_deps(
    alg: &IrAlgorithm,
    deps: &DepGraph,
    plumbing: &BTreeSet<InstrId>,
    i: InstrId,
) -> Vec<InstrId> {
    let mut out = Vec::new();
    let mut stack: Vec<InstrId> = deps.pred_list(i).to_vec();
    let mut seen = BTreeSet::new();
    while let Some(p) = stack.pop() {
        if !seen.insert(p) {
            continue;
        }
        if plumbing.contains(&p) {
            stack.extend(deps.pred_list(p));
        } else if !out.contains(&p) {
            out.push(p);
        }
    }
    let _ = alg;
    out
}

/// Add write-after-read / write-after-write edges between tables touching
/// the same storage base. SSA versions of one base share one physical
/// field, and the emitters execute tables in group order, so a table
/// overwriting a base must be ordered after every table still reading the
/// previous version — including reads performed by an *inlined* gateway
/// condition, which are attributed to the tables gating on it at the
/// plumbing instruction's original position. Without these edges the
/// topological sort is free to hoist e.g. an extern lookup that rewrites
/// `v4` above a function still guarded by the old `v4`.
pub fn add_storage_hazards(
    alg: &IrAlgorithm,
    plumbing: &BTreeSet<InstrId>,
    tables: &mut [crate::table::SynthTable],
) {
    // Which tables each instruction belongs to: its own table for
    // materialized instructions, the gating consumers for plumbing.
    let mut owner: BTreeMap<InstrId, Vec<usize>> = BTreeMap::new();
    for (ti, t) in tables.iter().enumerate() {
        for &i in &t.instrs {
            owner.entry(i).or_default().push(ti);
        }
    }
    for (ti, t) in tables.iter().enumerate() {
        for &i in &t.instrs.clone() {
            let Some(p) = alg.instr(i).pred else { continue };
            let mut stack = vec![p];
            let mut seen = BTreeSet::new();
            while let Some(v) = stack.pop() {
                if !seen.insert(v) {
                    continue;
                }
                let Some(def) = alg.value(v).def else {
                    continue;
                };
                if plumbing.contains(&def) {
                    let owners = owner.entry(def).or_default();
                    if !owners.contains(&ti) {
                        owners.push(ti);
                    }
                    for o in alg.instr(def).op.reads() {
                        if let Operand::Value(src) = o {
                            stack.push(src);
                        }
                    }
                }
            }
        }
    }
    // One pass in IR order, mirroring the hazard walk of
    // `lyra_ir::dependency_graph` at table granularity.
    let mut readers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut last_writer: BTreeMap<String, usize> = BTreeMap::new();
    let add_edge = |tables: &mut [crate::table::SynthTable], after: usize, before: usize| {
        if after != before && !tables[after].depends_on.contains(&before) {
            tables[after].depends_on.push(before);
        }
    };
    for (bi, instr) in alg.instrs.iter().enumerate() {
        let id = InstrId(bi as u32);
        let Some(owners) = owner.get(&id).cloned() else {
            continue;
        };
        let mut read_bases: Vec<String> = Vec::new();
        for o in instr.op.reads() {
            if let Operand::Value(v) = o {
                read_bases.push(alg.value(v).base.clone());
            }
        }
        if let Some(p) = instr.pred {
            // A stored (non-inlined) predicate is read from its base at
            // gate time; inlined chains were attributed above.
            if alg.value(p).def.map(|d| plumbing.contains(&d)) != Some(true) {
                read_bases.push(alg.value(p).base.clone());
            }
        }
        for base in read_bases {
            let rs = readers.entry(base).or_default();
            for &t in &owners {
                if !rs.contains(&t) {
                    rs.push(t);
                }
            }
        }
        if let Some(d) = instr.dst {
            let base = alg.value(d).base.clone();
            for &w in &owners {
                for &r in readers.get(&base).map(Vec::as_slice).unwrap_or(&[]) {
                    add_edge(tables, w, r);
                }
                if let Some(&v) = last_writer.get(&base) {
                    add_edge(tables, w, v);
                }
            }
            readers.remove(&base);
            last_writer.insert(base, owners[0]);
        }
    }
}

/// If predicate value `v` is rooted (through plumbing / copies) in an
/// extern table read, the extern's name.
pub fn pred_extern_root(alg: &IrAlgorithm, v: ValueId) -> Option<String> {
    let mut stack = vec![v];
    let mut seen = BTreeSet::new();
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        let Some(def) = alg.value(cur).def else {
            continue;
        };
        match &alg.instr(def).op {
            IrOp::TableMember { table, .. } | IrOp::TableLookup { table, .. } => {
                return Some(table.clone())
            }
            op => {
                for o in op.reads() {
                    if let Operand::Value(src) = o {
                        stack.push(src);
                    }
                }
            }
        }
    }
    None
}

/// The non-plumbing instruction that semantically produces predicate `v`
/// (walking through negations, conjunctions and copies). `None` when the
/// predicate is rooted only in live-in metadata.
pub fn semantic_pred_writer(
    alg: &IrAlgorithm,
    plumbing: &BTreeSet<InstrId>,
    v: ValueId,
) -> Option<InstrId> {
    let mut stack = vec![v];
    let mut seen = BTreeSet::new();
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        let Some(def) = alg.value(cur).def else {
            continue;
        };
        if !plumbing.contains(&def) {
            return Some(def);
        }
        for o in alg.instr(def).op.reads() {
            if let Operand::Value(src) = o {
                stack.push(src);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::{dependency_graph, frontend};

    #[test]
    fn comparisons_feeding_predicates_are_plumbing() {
        let ir = frontend("pipeline[P]{a}; algorithm a { if (x == 5) { y = 1; } }").unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        // The comparison is plumbing; the assignment is not.
        assert_eq!(plumbing.len(), 1);
        let p = *plumbing.iter().next().unwrap();
        assert!(matches!(alg.instr(p).op, IrOp::Binary { .. }));
    }

    #[test]
    fn comparison_stored_to_field_is_not_plumbing() {
        // The comparison result is written to a header field — observable.
        let ir =
            frontend("pipeline[P]{a}; algorithm a { c = x == 5; md.flag = c; if (c) { y = 1; } }")
                .unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        // The cmp's value feeds a data assign (md.flag = c) → not plumbing.
        assert!(plumbing.is_empty(), "{plumbing:?}\n{}", alg.to_text());
    }

    #[test]
    fn comparison_with_clobbered_operand_is_materialized() {
        // `x` is overwritten between the comparison and the gate that
        // consumes it — inlining `x == 5` into the gateway would test the
        // *new* x, so the comparison must be materialized.
        let ir = frontend("pipeline[P]{a}; algorithm a { c = x == 5; x = 2; if (c) { y = 1; } }")
            .unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        assert!(plumbing.is_empty(), "{plumbing:?}\n{}", alg.to_text());
    }

    #[test]
    fn comparison_with_late_clobber_stays_plumbing() {
        // Same shape, but the overwrite happens *after* the last gate — the
        // inlined condition still sees the original x, so inlining is sound.
        let ir = frontend("pipeline[P]{a}; algorithm a { c = x == 5; if (c) { y = 1; } x = 2; }")
            .unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        assert_eq!(plumbing.len(), 1, "{plumbing:?}\n{}", alg.to_text());
    }

    #[test]
    fn branch_writing_tested_var_materializes_comparison() {
        // The then-branch overwrites the tested variable; the else gate
        // (negation of the comparison) must not re-test the new value.
        let ir = frontend("pipeline[P]{a}; algorithm a { if (x == 5) { x = 1; } else { x = 2; } }")
            .unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        for &i in &plumbing {
            assert!(
                !matches!(alg.instr(i).op, IrOp::Binary { .. }),
                "comparison wrongly plumbing: {plumbing:?}\n{}",
                alg.to_text()
            );
        }
    }

    #[test]
    fn real_deps_traces_through_plumbing() {
        let ir =
            frontend("pipeline[P]{a}; algorithm a { h = crc32_hash(x); if (h == 5) { y = 1; } }")
                .unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        // The gated assignment depends (through the comparison) on the hash.
        let assign = subset
            .iter()
            .copied()
            .find(|&i| {
                alg.instr(i)
                    .dst
                    .map(|d| alg.value(d).base == "y")
                    .unwrap_or(false)
            })
            .unwrap();
        let hash = subset
            .iter()
            .copied()
            .find(|&i| matches!(alg.instr(i).op, IrOp::Call { .. }))
            .unwrap();
        let rd = real_deps(alg, &deps, &plumbing, assign);
        assert!(rd.contains(&hash), "{rd:?}");
    }

    #[test]
    fn extern_root_detected() {
        let ir = frontend(
            r#"
            pipeline[P]{a};
            algorithm a {
                extern list<bit[32] k>[16] t;
                if (x in t) { y = 1; }
            }
            "#,
        )
        .unwrap();
        let alg = &ir.algorithms[0];
        let gated = alg
            .instr_ids()
            .find(|&i| alg.instr(i).pred.is_some())
            .unwrap();
        let pred = alg.instr(gated).pred.unwrap();
        assert_eq!(pred_extern_root(alg, pred).as_deref(), Some("t"));
    }

    #[test]
    fn negated_branch_shares_semantic_writer() {
        let ir = frontend(
            "pipeline[P]{a}; algorithm a { h = crc32_hash(x); if (h == 1) { y = 1; } else { y = 2; } }",
        )
        .unwrap();
        let alg = &ir.algorithms[0];
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let plumbing = compute_plumbing(alg, &subset);
        let preds: Vec<ValueId> = alg.instr_ids().filter_map(|i| alg.instr(i).pred).collect();
        assert!(preds.len() >= 2);
        let writers: BTreeSet<_> = preds
            .iter()
            .filter_map(|&p| semantic_pred_writer(alg, &plumbing, p))
            .collect();
        // Both branches root in the same hash-producing instruction.
        assert_eq!(writers.len(), 1);
    }
}
