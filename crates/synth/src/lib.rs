#![warn(missing_docs)]
//! # lyra-synth — conditional synthesis, SMT encoding, and placement
//!
//! The back half of the Lyra compiler (§5 of the paper):
//!
//! * [`p4`] — conditional P4 synthesis (Algorithm 1): predicate blocks →
//!   match-action tables, with mutually-exclusive block merging and action
//!   folding;
//! * [`npl`] — conditional NPL synthesis: logical tables with multi-lookup
//!   merging, logical bus and registers;
//! * [`encode`] — the SMT model: deployment booleans `f_s(I)`, extern
//!   split counts `E_{e,s}`, chip resource budgets (memory blocks, tables,
//!   actions, atoms, PHV bits, parser TCAM, stage depth), flow-path,
//!   dependency, and co-location constraints;
//! * [`backend`] — the native CDCL(T) solver;
//! * [`place`] — solution → per-switch [`Placement`], including Algorithm
//!   2's carried values (bridge headers between cooperating switches);
//! * [`explain`] — post-UNSAT necessary-condition analysis naming the
//!   violated constraint family (memory, stages, PHV, tables).
//!
//! The one-call entry point is [`synthesize`].

pub mod backend;
pub mod encode;
pub mod explain;
pub mod greedy;
pub mod npl;
pub mod p4;
pub mod parser_deps;
pub mod place;
pub mod table;
pub mod util;

pub use backend::{Backend, SolveLimits, SolverStrategy};
pub use encode::{encode, EncodeError, EncodeOptions, Encoded, Objective, SynthUnit};
pub use explain::explain_infeasible;
pub use lyra_solver::ClauseStore as SolverClauseStore;
pub use p4::P4Options;
pub use place::{CarriedValue, Placement, SwitchPlan};
pub use table::{SynthAction, SynthTable, TableGroup, TableKind};

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use lyra_diag::{codes, Diagnostic};
use lyra_ir::IrProgram;
use lyra_solver::{ClauseStore, Outcome, SearchStats, Solution};
use lyra_topo::{interchangeable_classes, ResolvedScope, SwitchId, Topology};

/// Synthesis failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum SynthError {
    /// Encoding failed (bad scopes, unknown ASIC, …).
    Encode(EncodeError),
    /// The constraints are unsatisfiable — the program cannot be placed in
    /// this network. Carries diagnostics naming the violated constraint
    /// family plus the solver statistics of the refutation.
    Infeasible {
        /// Explanation of the infeasibility, one diagnostic per provably
        /// violated constraint family (see [`explain_infeasible`]).
        diagnostics: Vec<Diagnostic>,
        /// Search effort spent proving UNSAT.
        stats: SearchStats,
    },
    /// The solver exhausted its decision budget without a verdict —
    /// distinct from [`SynthError::Infeasible`]: the program may still be
    /// placeable with a larger budget.
    BudgetExhausted {
        /// Search effort spent before giving up.
        stats: SearchStats,
    },
}

impl SynthError {
    /// Structured diagnostics for this failure.
    pub fn to_diagnostics(&self) -> Vec<Diagnostic> {
        match self {
            SynthError::Encode(e) => vec![e.to_diagnostic()],
            SynthError::Infeasible { diagnostics, .. } => diagnostics.clone(),
            SynthError::BudgetExhausted { stats } => vec![Diagnostic::error(
                codes::SOLVER_BUDGET,
                format!(
                    "solver budget exhausted after {} decisions without a verdict",
                    stats.decisions
                ),
            )
            .with_note(
                "the placement problem was neither solved nor refuted; retry with a \
                 larger decision budget",
            )],
        }
    }
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Encode(e) => write!(f, "{e}"),
            SynthError::Infeasible { diagnostics, .. } => {
                write!(
                    f,
                    "no feasible placement: the program does not fit the target network's resources"
                )?;
                for d in diagnostics {
                    write!(f, "; {}", d.message)?;
                }
                Ok(())
            }
            SynthError::BudgetExhausted { .. } => {
                write!(f, "solver budget exhausted without a verdict")
            }
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Encode(e) => Some(e),
            SynthError::Infeasible { diagnostics, .. } => diagnostics
                .first()
                .map(|d| d as &(dyn std::error::Error + 'static)),
            SynthError::BudgetExhausted { .. } => None,
        }
    }
}

/// Which rung of the degradation ladder produced a result, when the
/// requested strategy could not reach a verdict inside its limits.
/// Absent (`None` on [`SynthResult::degraded`]) for a normal solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeRung {
    /// The portfolio (or the configured strategy) timed out; a sequential
    /// search with aggressive restarts found the placement during the
    /// grace window. The placement satisfies every constraint but skipped
    /// objective optimization guarantees.
    SequentialRestarts,
    /// All search rungs timed out; the placement came from greedy
    /// first-fit ([`greedy::greedy_solution`]) — whole algorithms on
    /// first-fitting path switches, checked against coarse capacity only.
    GreedyFirstFit,
}

impl std::fmt::Display for DegradeRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeRung::SequentialRestarts => write!(f, "sequential-restarts"),
            DegradeRung::GreedyFirstFit => write!(f, "greedy-first-fit"),
        }
    }
}

/// Result of a successful synthesis run.
#[derive(Debug)]
pub struct SynthResult {
    /// The solved placement.
    pub placement: Placement,
    /// The encoded model (kept for code generation, which needs the units).
    pub encoded: Encoded,
    /// Solver search statistics for this run.
    pub stats: SearchStats,
    /// Which degradation-ladder rung produced this result; `None` when the
    /// requested strategy solved within its limits.
    pub degraded: Option<DegradeRung>,
}

/// Run the full back-end: synthesize conditional implementations, encode,
/// solve, and extract a placement.
pub fn synthesize(
    ir: &IrProgram,
    topo: &Topology,
    scopes: &[ResolvedScope],
    opts: &EncodeOptions,
    backend: &Backend,
) -> Result<SynthResult, SynthError> {
    synthesize_hinted(ir, topo, scopes, opts, backend, None)
}

/// [`synthesize`] seeded with a previous placement: instruction deployment
/// variables get phase hints matching the old solution, so unchanged parts
/// of the program tend to stay where they were (§8 "Synthesizing
/// incremental changes"). Only the native backend honors hints.
pub fn synthesize_hinted(
    ir: &IrProgram,
    topo: &Topology,
    scopes: &[ResolvedScope],
    opts: &EncodeOptions,
    backend: &Backend,
    previous: Option<&Placement>,
) -> Result<SynthResult, SynthError> {
    synthesize_full(
        ir,
        topo,
        scopes,
        opts,
        backend,
        SolverStrategy::default(),
        previous,
    )
}

/// The fully-parameterized entry point: [`synthesize_hinted`] under an
/// explicit [`SolverStrategy`] (sequential search or a portfolio race).
pub fn synthesize_full(
    ir: &IrProgram,
    topo: &Topology,
    scopes: &[ResolvedScope],
    opts: &EncodeOptions,
    backend: &Backend,
    strategy: SolverStrategy,
    previous: Option<&Placement>,
) -> Result<SynthResult, SynthError> {
    synthesize_limited(
        ir,
        topo,
        scopes,
        opts,
        backend,
        strategy,
        previous,
        &SynthLimits::default(),
    )
}

/// Watchdog limits on a synthesis run, plus the scale accelerations
/// (quotient decomposition and warm-start clause reuse) that ride along
/// into the solver.
#[derive(Debug, Clone, Default)]
pub struct SynthLimits {
    /// Wall-clock deadline for the *requested* strategy. Expiry does not
    /// fail the compile: the degradation ladder runs instead.
    pub deadline: Option<std::time::Instant>,
    /// Decision budget per search (overrides the solver default).
    pub max_decisions: Option<u64>,
    /// Extra wall-clock granted to the sequential-restarts rung after the
    /// main deadline expires. Zero with a set deadline means any expiry
    /// falls straight through to greedy first-fit.
    pub grace: std::time::Duration,
    /// Try scope-based decomposition first: solve a quotient model over
    /// interchangeable-switch class representatives, replicate the
    /// solution, and verify it against the full encoding — falling back to
    /// the monolithic solve on any mismatch. Also enables
    /// connected-component splitting inside the solver.
    pub decomposition: bool,
    /// Learned-clause store shared across synthesis runs (warm-start
    /// re-solve), keyed by encoding fingerprint so stale clauses never
    /// replay.
    pub warm: Option<Arc<ClauseStore>>,
}

/// One typed bundle of every solver-configuration knob: strategy, watchdog
/// limits, and the datacenter-scale accelerations (symmetry breaking,
/// decomposition, warm start). This is the single public entry point for
/// configuring how placements are solved — `CompileRequest::with_solve_profile`
/// in the driver, `--solve-profile` in `lyrac`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveProfile {
    /// How to run the solver (one search or a portfolio race).
    pub strategy: SolverStrategy,
    /// Wall-clock budget for the solve phase; expiry triggers the
    /// degradation ladder rather than a failure.
    pub deadline: Option<std::time::Duration>,
    /// Decision budget per search (overrides the solver default).
    pub decision_budget: Option<u64>,
    /// Emit lexicographic tie-breaking constraints over interchangeable
    /// switches (see `lyra_topo::symmetry`).
    pub symmetry_breaking: bool,
    /// Solve per-pod quotient subproblems and replicate, with verified
    /// stitching and monolithic fallback.
    pub decomposition: bool,
    /// Persist learned clauses and variable activity across solves of the
    /// same encoding (incremental re-solve after faults).
    pub warm_start: bool,
}

impl Default for SolveProfile {
    /// The balanced default: portfolio race with every scale acceleration
    /// enabled.
    fn default() -> Self {
        SolveProfile {
            strategy: SolverStrategy::default(),
            deadline: None,
            decision_budget: None,
            symmetry_breaking: true,
            decomposition: true,
            warm_start: true,
        }
    }
}

impl SolveProfile {
    /// Lowest-latency preset: one sequential search with every scale
    /// acceleration on. Best for small problems and tight compile loops
    /// where portfolio spawn overhead dominates.
    pub fn fast() -> Self {
        SolveProfile {
            strategy: SolverStrategy::Sequential,
            ..SolveProfile::default()
        }
    }

    /// Reference preset: a monolithic portfolio race with symmetry
    /// breaking, decomposition, and warm start all *disabled* — the
    /// encoding the accelerations are differentially tested against.
    pub fn thorough() -> Self {
        SolveProfile {
            strategy: SolverStrategy::Portfolio { workers: 0 },
            deadline: None,
            decision_budget: None,
            symmetry_breaking: false,
            decomposition: false,
            warm_start: false,
        }
    }

    /// The default profile under a wall-clock deadline (the degradation
    /// ladder runs on expiry).
    pub fn deadline(d: std::time::Duration) -> Self {
        SolveProfile {
            deadline: Some(d),
            ..SolveProfile::default()
        }
    }

    /// Replace the solver strategy.
    pub fn with_strategy(mut self, strategy: SolverStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, d: std::time::Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the per-search decision budget.
    pub fn with_decision_budget(mut self, decisions: u64) -> Self {
        self.decision_budget = Some(decisions);
        self
    }

    /// Toggle symmetry breaking.
    pub fn with_symmetry_breaking(mut self, on: bool) -> Self {
        self.symmetry_breaking = on;
        self
    }

    /// Toggle quotient/component decomposition.
    pub fn with_decomposition(mut self, on: bool) -> Self {
        self.decomposition = on;
        self
    }

    /// Toggle warm-start clause reuse.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }
}

impl SynthLimits {
    /// True when no limit is configured — the ladder never triggers and
    /// budget exhaustion surfaces as [`SynthError::BudgetExhausted`],
    /// preserving the historical contract.
    fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_decisions.is_none()
    }
}

/// [`synthesize_full`] under [`SynthLimits`], with graceful degradation.
///
/// The program is encoded **once**; on [`Outcome::Unknown`] from the
/// requested strategy the ladder walks down on the same model:
///
/// 1. the requested strategy (portfolio by default) under the deadline;
/// 2. one sequential search with aggressive restarts, given `grace` extra
///    wall-clock — fast at finding *a* model, no optimality;
/// 3. greedy first-fit placement (no search at all).
///
/// A result produced by rung 2 or 3 carries [`SynthResult::degraded`] so
/// the driver can surface a degraded-result diagnostic. `Unsat` at rung 1
/// or 2 is a genuine refutation and still fails with
/// [`SynthError::Infeasible`]; only when every rung is exhausted does the
/// compile fail with [`SynthError::BudgetExhausted`].
#[allow(clippy::too_many_arguments)]
pub fn synthesize_limited(
    ir: &IrProgram,
    topo: &Topology,
    scopes: &[ResolvedScope],
    opts: &EncodeOptions,
    backend: &Backend,
    strategy: SolverStrategy,
    previous: Option<&Placement>,
    limits: &SynthLimits,
) -> Result<SynthResult, SynthError> {
    // Quotient fast path: for symmetric MULTI-SW problems, solve over one
    // representative per interchangeable-switch class, replicate, and
    // verify against the full model. Any failure (ineligible topology,
    // solver timeout, verification mismatch) falls through to the
    // monolithic ladder below — the quotient can only ever *add* a faster
    // route to the same verified answer. Incremental re-solves (with a
    // previous placement as hints) stay monolithic: replication would
    // override the stability hints.
    let mut quotient_stats = SearchStats::default();
    if limits.decomposition
        && previous.is_none()
        && !opts.stage_detail
        && opts.objective == Objective::Feasible
        && scopes
            .iter()
            .any(|s| s.deploy == lyra_lang::DeployMode::MultiSwitch)
    {
        let classes = interchangeable_classes(topo, scopes);
        if !classes.is_empty() {
            let (result, stats) =
                try_quotient(ir, topo, scopes, opts, backend, strategy, limits, &classes);
            match result {
                Some(res) => return Ok(res),
                // Carry any effort the failed attempt spent into the
                // monolithic run's totals, so reporting stays honest.
                None => quotient_stats = stats,
            }
        }
    }

    let enc = encode(ir, topo, scopes, opts).map_err(SynthError::Encode)?;
    let hints: Vec<(lyra_solver::BoolId, bool)> = match previous {
        Some(prev) => enc
            .instr_var
            .iter()
            .map(|((alg, sw, instr), &var)| {
                let name = &topo.switch(*sw).name;
                let was_there = prev
                    .switches
                    .get(name)
                    .and_then(|p| p.instrs.get(alg))
                    .map(|is| is.contains(instr))
                    .unwrap_or(false);
                (var, was_there)
            })
            .collect(),
        None => Vec::new(),
    };
    // Integer stability hints: the previous placement's per-switch entry
    // shard sizes, keyed to this encoding's extern-count variables. The
    // solver branches to these sizes first where the new topology still
    // admits them, so a fault re-plan moves only the entries the fault
    // forces to move instead of re-dealing every shard from scratch.
    let int_hints: Vec<(lyra_solver::IntId, i64)> = match previous {
        Some(prev) => enc
            .extern_var
            .iter()
            .map(|((e, sw), &var)| {
                let name = &topo.switch(*sw).name;
                let count = prev
                    .switches
                    .get(name)
                    .and_then(|p| p.extern_entries.get(e))
                    .copied()
                    .unwrap_or(0);
                (var, count as i64)
            })
            .collect(),
        None => Vec::new(),
    };

    // Rung 1: the requested strategy under the configured limits.
    let mut total = quotient_stats;
    let (outcome, stats) = backend::solve_with_limits(
        &enc.model,
        enc.objective.as_ref(),
        backend,
        &hints,
        strategy,
        &backend::SolveLimits {
            deadline: limits.deadline,
            max_decisions: limits.max_decisions,
            aggressive_restarts: false,
            decomposition: limits.decomposition,
            warm: limits.warm.clone(),
            int_hints: int_hints.clone(),
        },
    );
    total.absorb(stats);
    let finish = |enc: Encoded, sol, total, degraded| {
        let placement = place::extract(&enc, ir, topo, &sol);
        Ok(SynthResult {
            placement,
            encoded: enc,
            stats: total,
            degraded,
        })
    };
    match outcome {
        Outcome::Sat(sol) => return finish(enc, sol, total, None),
        Outcome::Unsat => {
            return Err(SynthError::Infeasible {
                diagnostics: explain::explain_infeasible(&enc, ir, topo, opts),
                stats: total,
            })
        }
        Outcome::Unknown if limits.is_unlimited() => {
            // No limit was set, so Unknown means the solver's own decision
            // budget ran out — the historical failure, not a ladder case.
            return Err(SynthError::BudgetExhausted { stats: total });
        }
        Outcome::Unknown => {}
    }

    // Rung 2: sequential, aggressive restarts, grace window.
    if !limits.grace.is_zero() {
        let (outcome, stats) = backend::solve_with_limits(
            &enc.model,
            enc.objective.as_ref(),
            backend,
            &hints,
            SolverStrategy::Sequential,
            &backend::SolveLimits {
                deadline: Some(std::time::Instant::now() + limits.grace),
                max_decisions: None,
                aggressive_restarts: true,
                decomposition: false,
                warm: limits.warm.clone(),
                int_hints: int_hints.clone(),
            },
        );
        total.absorb(stats);
        match outcome {
            Outcome::Sat(sol) => {
                return finish(enc, sol, total, Some(DegradeRung::SequentialRestarts))
            }
            Outcome::Unsat => {
                return Err(SynthError::Infeasible {
                    diagnostics: explain::explain_infeasible(&enc, ir, topo, opts),
                    stats: total,
                })
            }
            Outcome::Unknown => {}
        }
    }

    // Rung 3: no search at all.
    match greedy::greedy_solution(&enc, ir, topo) {
        Ok(sol) => finish(enc, sol, total, Some(DegradeRung::GreedyFirstFit)),
        // Greedy failing is not a refutation — a real solver run might
        // still succeed by splitting algorithms — so report exhaustion.
        Err(_) => Err(SynthError::BudgetExhausted { stats: total }),
    }
}

/// Quotient solving: collapse every interchangeable-switch class to its
/// smallest member, solve the (much smaller) quotient encoding, replicate
/// the representative's assignment onto every class member, and verify the
/// replicated solution against the *full* encoding with
/// [`Solution::satisfies`]. Returns `(None, effort)` whenever anything
/// disqualifies the attempt — the caller falls back to the monolithic
/// solve, so this path never changes what is solvable, only how fast.
///
/// Soundness does not rest on the class analysis: whatever the quotient
/// produces is accepted *only* after the full model check passes, so a
/// wrong class could at worst waste the quotient solve. The class analysis
/// (`lyra_topo::symmetry`) exists to make the check overwhelmingly likely
/// to pass: verified transpositions map constraints to constraints, so a
/// per-class-constant assignment satisfying the quotient constraints
/// satisfies the full path/resource families too.
///
/// The quotient encodes with symmetry breaking *off*: lex tie-breaking aux
/// variables are internal to the monolithic encoding and are not recorded
/// in [`Encoded`]'s maps, so replication could not populate them; and the
/// quotient has already collapsed the orbits lex ordering would prune.
#[allow(clippy::too_many_arguments)]
fn try_quotient(
    ir: &IrProgram,
    topo: &Topology,
    scopes: &[ResolvedScope],
    opts: &EncodeOptions,
    backend: &Backend,
    strategy: SolverStrategy,
    limits: &SynthLimits,
    classes: &[Vec<SwitchId>],
) -> (Option<SynthResult>, SearchStats) {
    let mut rep_map: BTreeMap<SwitchId, SwitchId> = BTreeMap::new();
    for class in classes {
        let r = class[0]; // classes are sorted; the smallest id represents
        for &s in class {
            rep_map.insert(s, r);
        }
    }
    let rep = |s: SwitchId| rep_map.get(&s).copied().unwrap_or(s);

    // Quotient scopes: representative switches, mapped + deduplicated
    // paths. A mapped path revisiting a switch (two hops collapsing into
    // one representative) has no counterpart in the path encoding — give
    // up before solving anything.
    let mut q_scopes: Vec<ResolvedScope> = Vec::with_capacity(scopes.len());
    for scope in scopes {
        let mut switches: Vec<SwitchId> = scope.switches.iter().map(|&s| rep(s)).collect();
        switches.sort_unstable();
        switches.dedup();
        let mut paths: Vec<Vec<SwitchId>> = Vec::new();
        for p in &scope.paths {
            let mapped: Vec<SwitchId> = p.iter().map(|&s| rep(s)).collect();
            let distinct: BTreeSet<SwitchId> = mapped.iter().copied().collect();
            if distinct.len() != mapped.len() {
                return (None, SearchStats::default());
            }
            if !paths.contains(&mapped) {
                paths.push(mapped);
            }
        }
        q_scopes.push(ResolvedScope {
            algorithm: scope.algorithm.clone(),
            switches,
            deploy: scope.deploy,
            paths,
        });
    }
    if q_scopes
        .iter()
        .zip(scopes)
        .all(|(q, s)| q.switches.len() == s.switches.len())
    {
        return (None, SearchStats::default()); // quotient is no smaller
    }

    let mut q_opts = opts.clone();
    q_opts.symmetry_breaking = false;
    let Ok(full) = encode(ir, topo, scopes, &q_opts) else {
        return (None, SearchStats::default());
    };
    let Ok(q_enc) = encode(ir, topo, &q_scopes, &q_opts) else {
        return (None, SearchStats::default());
    };

    let (outcome, stats) = backend::solve_with_limits(
        &q_enc.model,
        None,
        backend,
        &[],
        strategy,
        &backend::SolveLimits {
            deadline: limits.deadline,
            max_decisions: limits.max_decisions,
            aggressive_restarts: false,
            decomposition: true,
            warm: limits.warm.clone(),
            int_hints: Vec::new(),
        },
    );
    let Outcome::Sat(q_sol) = outcome else {
        // Unknown → monolithic retry. Unsat is *not* propagated as a
        // refutation of the full problem: the quotient forces per-class-
        // uniform placements, a strictly stronger model.
        return (None, stats);
    };

    // Replicate: every full-model variable takes its representative's
    // value; anything unmapped keeps a safe default and is caught by the
    // verification below.
    let replicate = || -> Option<Solution> {
        let mut bools = vec![false; full.model.num_bools()];
        let mut ints: Vec<i64> = full.model.int_decls().map(|(_, d)| d.lo).collect();
        for ((alg, sw, instr), &v) in &full.instr_var {
            let q = q_enc.instr_var.get(&(alg.clone(), rep(*sw), *instr))?;
            bools[v.index()] = q_sol.bool(*q);
        }
        for ((e, sw), &v) in &full.extern_var {
            let q = q_enc.extern_var.get(&(e.clone(), rep(*sw)))?;
            ints[v.index()] = q_sol.int(*q);
        }
        for (&sw, &v) in &full.switch_used {
            let q = q_enc.switch_used.get(&rep(sw))?;
            bools[v.index()] = q_sol.bool(*q);
        }
        for ((sw, alg, table), &v) in &full.table_valid {
            let q = q_enc
                .table_valid
                .get(&(rep(*sw), alg.clone(), table.clone()))?;
            bools[v.index()] = q_sol.bool(*q);
        }
        for ((sw, alg, table), &v) in &full.table_depth {
            let q = q_enc
                .table_depth
                .get(&(rep(*sw), alg.clone(), table.clone()))?;
            ints[v.index()] = q_sol.int(*q);
        }
        Some(Solution::from_parts(bools, ints))
    };
    let Some(sol) = replicate() else {
        return (None, stats);
    };
    // The load-bearing check: the replicated assignment must satisfy every
    // constraint of the full encoding, or the quotient result is discarded.
    if !sol.satisfies(&full.model) {
        return (None, stats);
    }
    let placement = place::extract(&full, ir, topo, &sol);
    (
        Some(SynthResult {
            placement,
            encoded: full,
            stats,
            degraded: None,
        }),
        SearchStats::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::frontend;
    use lyra_lang::parse_scopes;
    use lyra_topo::{figure1_network, resolve_scope};

    const LB_SRC: &str = r#"
        pipeline[LB]{loadbalancer};
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
            extern dict<bit[32] vip, bit[8] group>[1024] vip_table;
            bit[32] hash;
            hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
            if (hash in conn_table) {
                ipv4.dstAddr = conn_table[hash];
            }
        }
    "#;

    fn lb_setup() -> (IrProgram, Topology, Vec<ResolvedScope>) {
        let ir = frontend(LB_SRC).unwrap();
        let topo = figure1_network();
        let scopes = parse_scopes(
            "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
        )
        .unwrap();
        let resolved: Vec<ResolvedScope> = scopes
            .iter()
            .map(|s| resolve_scope(&topo, s).unwrap())
            .collect();
        (ir, topo, resolved)
    }

    #[test]
    fn lb_places_with_native_backend() {
        let (ir, topo, scopes) = lb_setup();
        let res = synthesize(
            &ir,
            &topo,
            &scopes,
            &EncodeOptions::default(),
            &Backend::Native,
        )
        .expect("LB placement must be feasible");
        // Every instruction deployed somewhere; conn_table fully placed on
        // every path.
        assert!(res.placement.used_switches() >= 1);
        let total_conn: u64 = res
            .placement
            .switches
            .values()
            .filter_map(|p| p.extern_entries.get("conn_table"))
            .sum();
        assert!(total_conn >= 1024, "conn_table entries: {total_conn}");
    }

    #[test]
    fn synthesis_reports_solver_stats() {
        let (ir, topo, scopes) = lb_setup();
        let res = synthesize(
            &ir,
            &topo,
            &scopes,
            &EncodeOptions::default(),
            &Backend::Native,
        )
        .expect("LB placement must be feasible");
        assert!(
            res.stats.decisions + res.stats.propagations > 0,
            "solving a non-trivial model must record search effort"
        );
    }

    #[test]
    fn per_switch_scope_copies_everywhere() {
        let ir = frontend(
            r#"
            pipeline[P]{int_in};
            algorithm int_in {
                extern list<bit[32] ip>[128] watch;
                if (ipv4.src_ip in watch) { int_enable = 1; }
            }
            "#,
        )
        .unwrap();
        let topo = figure1_network();
        let scopes = parse_scopes("int_in: [ ToR* | PER-SW | - ]").unwrap();
        let resolved: Vec<ResolvedScope> = scopes
            .iter()
            .map(|s| resolve_scope(&topo, s).unwrap())
            .collect();
        let res = synthesize(
            &ir,
            &topo,
            &resolved,
            &EncodeOptions::default(),
            &Backend::Native,
        )
        .unwrap();
        // All four ToRs get the full program.
        assert_eq!(res.placement.used_switches(), 4);
        for (name, plan) in &res.placement.switches {
            assert!(name.starts_with("ToR"));
            assert_eq!(plan.extern_entries.get("watch"), Some(&128));
            assert!(!plan.tables.is_empty());
        }
    }

    #[test]
    fn infeasible_when_table_exceeds_scope_capacity() {
        // A 100M-entry table cannot fit any single Agg switch pair.
        let ir = frontend(
            r#"
            pipeline[P]{big};
            algorithm big {
                extern dict<bit[32] k, bit[32] v>[100000000] huge;
                if (k in huge) { x = 1; }
            }
            "#,
        )
        .unwrap();
        let topo = figure1_network();
        let scopes =
            parse_scopes("big: [ Agg3,Agg4,ToR3,ToR4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]")
                .unwrap();
        let resolved: Vec<ResolvedScope> = scopes
            .iter()
            .map(|s| resolve_scope(&topo, s).unwrap())
            .collect();
        let err = synthesize(
            &ir,
            &topo,
            &resolved,
            &EncodeOptions::default(),
            &Backend::Native,
        )
        .unwrap_err();
        let SynthError::Infeasible { diagnostics, .. } = err else {
            panic!("expected Infeasible, got {err:?}");
        };
        // The explanation must name the violated family (memory) and the
        // offending extern.
        assert!(
            diagnostics.iter().any(|d| {
                d.code == Some(lyra_diag::codes::INFEASIBLE_MEMORY) && d.message.contains("huge")
            }),
            "diagnostics: {diagnostics:?}"
        );
    }

    #[test]
    fn unprogrammable_scope_is_error() {
        let ir = frontend("pipeline[P]{a}; algorithm a { x = 1; }").unwrap();
        let topo = figure1_network();
        let scopes = parse_scopes("a: [ Core* | PER-SW | - ]").unwrap();
        let resolved: Vec<ResolvedScope> = scopes
            .iter()
            .map(|s| resolve_scope(&topo, s).unwrap())
            .collect();
        let err = synthesize(
            &ir,
            &topo,
            &resolved,
            &EncodeOptions::default(),
            &Backend::Native,
        )
        .unwrap_err();
        assert!(matches!(err, SynthError::Encode(_)));
    }

    #[test]
    fn expired_deadline_degrades_to_greedy() {
        let (ir, topo, scopes) = lb_setup();
        let limits = SynthLimits {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            grace: std::time::Duration::ZERO,
            ..Default::default()
        };
        let res = synthesize_limited(
            &ir,
            &topo,
            &scopes,
            &EncodeOptions::default(),
            &Backend::Native,
            SolverStrategy::Sequential,
            None,
            &limits,
        )
        .expect("ladder must produce a degraded placement, not fail");
        assert_eq!(res.degraded, Some(DegradeRung::GreedyFirstFit));
        // The greedy placement still covers every flow path's extern needs.
        let total_conn: u64 = res
            .placement
            .switches
            .values()
            .filter_map(|p| p.extern_entries.get("conn_table"))
            .sum();
        assert!(total_conn >= 1024, "conn_table entries: {total_conn}");
        assert!(res.placement.used_switches() >= 1);
    }

    #[test]
    fn grace_window_runs_sequential_restarts_rung() {
        let (ir, topo, scopes) = lb_setup();
        let limits = SynthLimits {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            grace: std::time::Duration::from_secs(30),
            ..Default::default()
        };
        let res = synthesize_limited(
            &ir,
            &topo,
            &scopes,
            &EncodeOptions::default(),
            &Backend::Native,
            SolverStrategy::Sequential,
            None,
            &limits,
        )
        .expect("grace window is ample for the small LB model");
        // The small LB model solves well inside the grace window, so the
        // ladder stops at the sequential-restarts rung with a placement
        // that satisfies the full constraint model.
        assert_eq!(res.degraded, Some(DegradeRung::SequentialRestarts));
    }

    #[test]
    fn unlimited_synthesis_is_undegraded() {
        let (ir, topo, scopes) = lb_setup();
        let res = synthesize(
            &ir,
            &topo,
            &scopes,
            &EncodeOptions::default(),
            &Backend::Native,
        )
        .unwrap();
        assert_eq!(res.degraded, None);
    }

    #[test]
    fn greedy_solution_satisfies_placement_shape() {
        let (ir, topo, scopes) = lb_setup();
        let enc = encode(&ir, &topo, &scopes, &EncodeOptions::default()).unwrap();
        let sol = greedy::greedy_solution(&enc, &ir, &topo).unwrap();
        let placement = place::extract(&enc, &ir, &topo, &sol);
        // Whole-algorithm hosting: each hosting switch carries every
        // instruction of the algorithm.
        let n_instrs = ir.algorithm("loadbalancer").unwrap().instrs.len();
        for plan in placement.switches.values() {
            if let Some(is) = plan.instrs.get("loadbalancer") {
                assert_eq!(is.len(), n_instrs, "greedy never splits an algorithm");
            }
        }
        // Both Agg->ToR path families are covered (Agg3 and Agg4 are the
        // first programmable hops of their respective paths).
        assert!(placement.used_switches() >= 1);
    }

    #[test]
    fn min_switches_objective_compacts() {
        let ir = frontend(
            r#"
            pipeline[P]{small};
            algorithm small {
                bit[32] x;
                x = ipv4.srcAddr + 1;
                ipv4.dstAddr = x;
            }
            "#,
        )
        .unwrap();
        let topo = figure1_network();
        let scopes =
            parse_scopes("small: [ Agg3,Agg4,ToR3,ToR4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]")
                .unwrap();
        let resolved: Vec<ResolvedScope> = scopes
            .iter()
            .map(|s| resolve_scope(&topo, s).unwrap())
            .collect();
        let opts = EncodeOptions {
            objective: Objective::MinSwitches,
            ..Default::default()
        };
        let res = synthesize(&ir, &topo, &resolved, &opts, &Backend::Native).unwrap();
        // The whole program fits on the two Aggs (one per path entry) —
        // minimizing switch count must not use more than 2.
        assert!(
            res.placement.used_switches() <= 2,
            "used {} switches",
            res.placement.used_switches()
        );
    }
}
