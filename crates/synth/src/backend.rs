//! Solver backends: the native `lyra-solver` search and (behind the
//! `z3-backend` feature, on by default) Z3 — the solver the paper itself
//! uses. Both consume the identical backend-agnostic [`Model`], so property
//! tests can cross-check them.

use lyra_solver::{Bx, Ix, Model, Outcome, Solution, SolverConfig};

/// Which solver to use.
#[derive(Debug, Clone, PartialEq, Eq)]
#[derive(Default)]
pub enum Backend {
    /// The native DPLL + bounds-propagation solver.
    Native,
    /// Z3 via the `z3` crate (the paper's solver).
    #[cfg(feature = "z3-backend")]
    #[default]
    Z3,
}


/// Solve `model`, optionally minimizing `objective`.
pub fn solve(model: &Model, objective: Option<&Ix>, backend: &Backend) -> Outcome {
    solve_with_hints(model, objective, backend, &[])
}

/// [`solve`] with initial phase hints (a previous solution's variable
/// values). The native solver tries the hinted values first, keeping
/// successive placements stable under small program changes (§8
/// "Synthesizing incremental changes"); the Z3 backend ignores hints.
pub fn solve_with_hints(
    model: &Model,
    objective: Option<&Ix>,
    backend: &Backend,
    hints: &[(lyra_solver::BoolId, bool)],
) -> Outcome {
    match backend {
        Backend::Native => {
            let cfg = SolverConfig {
                phase_hints: hints.iter().map(|&(id, v)| (id.index() as u32, v)).collect(),
                ..Default::default()
            };
            match objective {
                None => {
                    let flat = lyra_solver::flatten(model);
                    let (outcome, _) = lyra_solver::solve_flat(&flat, &cfg, &[]);
                    if let Outcome::Sat(ref s) = outcome {
                        debug_assert!(s.satisfies(model));
                    }
                    outcome
                }
                Some(obj) => match lyra_solver::search::minimize_with(model, obj, &cfg) {
                    Some((sol, _)) => Outcome::Sat(sol),
                    None => Outcome::Unsat,
                },
            }
        }
        #[cfg(feature = "z3-backend")]
        Backend::Z3 => z3_backend::solve(model, objective),
    }
}

/// Native solver with an explicit configuration (used by tests).
pub fn solve_native_with(model: &Model, cfg: &SolverConfig) -> Outcome {
    let flat = lyra_solver::flatten(model);
    let (outcome, _) = lyra_solver::solve_flat(&flat, cfg, &[]);
    outcome
}

/// Check a solution against the model — shared sanity hook.
pub fn verify(model: &Model, sol: &Solution) -> bool {
    sol.satisfies(model)
}

#[cfg(feature = "z3-backend")]
mod z3_backend {
    //! Translation of the backend-agnostic model to Z3.

    use super::*;
    use lyra_solver::expr::{CmpOp, LinExpr, VarRef};
    use z3::ast::{Bool, Int};
    use z3::{SatResult, Solver};

    /// Solve with Z3; objectives are handled by iterative tightening so we
    /// only depend on the plain `Solver` API.
    pub fn solve(model: &Model, objective: Option<&Ix>) -> Outcome {
        let bools: Vec<Bool> = model
            .bool_decls()
            .map(|(id, _)| Bool::new_const(format!("b{}", id.index())))
            .collect();
        let ints: Vec<Int> = model
            .int_decls()
            .map(|(id, _)| Int::new_const(format!("i{}", id.index())))
            .collect();
        let solver = Solver::new();
        for (id, d) in model.int_decls() {
            let v = &ints[id.index()];
            solver.assert(v.ge(Int::from_i64(d.lo)));
            solver.assert(v.le(Int::from_i64(d.hi)));
        }
        for c in model.constraints() {
            let b = tr_bx(c, &bools, &ints);
            solver.assert(&b);
        }

        let extract = |solver: &Solver| -> Option<Solution> {
            let m = solver.get_model()?;
            let bvals: Vec<bool> = bools
                .iter()
                .map(|b| {
                    m.eval(b, true)
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false)
                })
                .collect();
            let ivals: Vec<i64> = model
                .int_decls()
                .map(|(id, d)| {
                    m.eval(&ints[id.index()], true)
                        .and_then(|v| v.as_i64())
                        .unwrap_or(d.lo)
                })
                .collect();
            Some(Solution::from_parts(bvals, ivals))
        };

        match solver.check() {
            SatResult::Unsat => return Outcome::Unsat,
            SatResult::Unknown => return Outcome::Unknown,
            SatResult::Sat => {}
        }
        let mut best = match extract(&solver) {
            Some(s) => s,
            None => return Outcome::Unknown,
        };

        if let Some(obj) = objective {
            // Branch-and-bound: require strictly better until UNSAT.
            loop {
                let cur = best.eval_ix(obj);
                let zobj = tr_ix(obj, &bools, &ints);
                solver.assert(zobj.le(Int::from_i64(cur - 1)));
                match solver.check() {
                    SatResult::Sat => match extract(&solver) {
                        Some(s) => best = s,
                        None => break,
                    },
                    _ => break,
                }
            }
        }
        debug_assert!(best.satisfies(model), "Z3 produced a non-model");
        Outcome::Sat(best)
    }

    fn tr_bx(bx: &Bx, bools: &[Bool], ints: &[Int]) -> Bool {
        match bx {
            Bx::Const(b) => Bool::from_bool(*b),
            Bx::Var(v) => bools[v.index()].clone(),
            Bx::Not(b) => tr_bx(b, bools, ints).not(),
            Bx::And(xs) => {
                let parts: Vec<Bool> = xs.iter().map(|x| tr_bx(x, bools, ints)).collect();
                Bool::and(&parts)
            }
            Bx::Or(xs) => {
                let parts: Vec<Bool> = xs.iter().map(|x| tr_bx(x, bools, ints)).collect();
                Bool::or(&parts)
            }
            Bx::Implies(a, b) => tr_bx(a, bools, ints).implies(tr_bx(b, bools, ints)),
            Bx::Iff(a, b) => tr_bx(a, bools, ints).iff(tr_bx(b, bools, ints)),
            Bx::AtMostOne(xs) => {
                let mut clauses = Vec::new();
                for i in 0..xs.len() {
                    for j in (i + 1)..xs.len() {
                        clauses.push(Bool::or(&[
                            tr_bx(&xs[i], bools, ints).not(),
                            tr_bx(&xs[j], bools, ints).not(),
                        ]));
                    }
                }
                Bool::and(&clauses)
            }
            Bx::Cmp(op, a, b) => {
                let (za, zb) = (tr_ix(a, bools, ints), tr_ix(b, bools, ints));
                match op {
                    CmpOp::Eq => za.eq(&zb),
                    CmpOp::Ne => za.eq(&zb).not(),
                    CmpOp::Le => za.le(zb),
                    CmpOp::Lt => za.lt(zb),
                    CmpOp::Ge => za.ge(zb),
                    CmpOp::Gt => za.gt(zb),
                }
            }
        }
    }

    fn tr_lin(l: &LinExpr, bools: &[Bool], ints: &[Int]) -> Int {
        let mut acc = Int::from_i64(l.constant);
        for &(c, v) in &l.terms {
            let term: Int = match v {
                VarRef::Int(i) => ints[i.index()].clone(),
                VarRef::Bool(b) => bools[b.index()]
                    .ite(&Int::from_i64(1), &Int::from_i64(0)),
            };
            acc += term * Int::from_i64(c);
        }
        acc
    }

    fn tr_ix(ix: &Ix, bools: &[Bool], ints: &[Int]) -> Int {
        match ix {
            Ix::Lin(l) => tr_lin(l, bools, ints),
            Ix::Ite(c, a, b) => tr_bx(c, bools, ints)
                .ite(&tr_ix(a, bools, ints), &tr_ix(b, bools, ints)),
            Ix::CeilDiv(a, k) => {
                // ceil(a/k) = (a + k - 1) div k for non-negative a (our
                // resource expressions are non-negative by construction).
                let za = tr_ix(a, bools, ints);
                (za + Int::from_i64(*k - 1)).div(Int::from_i64(*k))
            }
            Ix::Sum(xs) => {
                let mut acc = Int::from_i64(0);
                for x in xs {
                    acc += tr_ix(x, bools, ints);
                }
                acc
            }
            Ix::Scaled(a, k) => tr_ix(a, bools, ints) * Int::from_i64(*k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> (Model, lyra_solver::BoolId, lyra_solver::IntId) {
        let mut m = Model::new();
        let d = m.bool_var("d");
        let e = m.int_var("e", 0, 100);
        m.require(Bx::implies(Bx::var(d), Ix::var(e).ge(Ix::lit(40))));
        m.require(Bx::var(d));
        (m, d, e)
    }

    #[test]
    fn native_solves() {
        let (m, d, e) = tiny_model();
        let sol = solve(&m, None, &Backend::Native).solution().unwrap();
        assert!(sol.bool(d));
        assert!(sol.int(e) >= 40);
    }

    #[cfg(feature = "z3-backend")]
    #[test]
    fn z3_solves() {
        let (m, d, e) = tiny_model();
        let sol = solve(&m, None, &Backend::Z3).solution().unwrap();
        assert!(sol.bool(d));
        assert!(sol.int(e) >= 40);
    }

    #[cfg(feature = "z3-backend")]
    #[test]
    fn backends_agree_on_unsat() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 5);
        m.require(Ix::var(x).ge(Ix::lit(10)));
        assert_eq!(solve(&m, None, &Backend::Native), Outcome::Unsat);
        assert_eq!(solve(&m, None, &Backend::Z3), Outcome::Unsat);
    }

    #[cfg(feature = "z3-backend")]
    #[test]
    fn z3_minimizes() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 100);
        m.require(Ix::var(x).ge(Ix::lit(17)));
        let sol = solve(&m, Some(&Ix::var(x)), &Backend::Z3).solution().unwrap();
        assert_eq!(sol.int(x), 17);
    }

    #[cfg(feature = "z3-backend")]
    #[test]
    fn z3_handles_ceil_div_and_ite() {
        let mut m = Model::new();
        let d = m.bool_var("d");
        let e = m.int_var("e", 0, 4096);
        let blocks = Ix::var(e).ceil_div(1024);
        m.require(Bx::implies(Bx::var(d), blocks.ge(Ix::lit(3))));
        m.require(Bx::var(d));
        let sol = solve(&m, None, &Backend::Z3).solution().unwrap();
        assert!(sol.int(e) > 2048);
    }
}
