//! Solver backend: the native `lyra-solver` CDCL(T) search. The paper uses
//! Z3; this reproduction ships a dependency-free solver for the fragment of
//! SMT the encoding actually emits, and reports [`lyra_solver::SearchStats`]
//! with every verdict so the compile driver can surface solver effort.

use std::sync::Arc;

use lyra_solver::decompose::{Decomposed, Portfolio, Sequential, SolveCtx, Solver};
use lyra_solver::{ClauseStore, Ix, Model, Outcome, SearchStats, Solution, SolverConfig};

/// Which solver to use. Only the native solver exists today; the enum is
/// kept (non-exhaustively) so an external SMT backend can slot in without
/// an API break.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum Backend {
    /// The native CDCL + bounds-propagation solver.
    #[default]
    Native,
}

/// How to run the native solver: one search, or a portfolio race of
/// diversified searches (different seeds, restart schedules, activity
/// decay, and phase polarity — see `lyra_solver::portfolio`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverStrategy {
    /// One deterministic search per solve.
    Sequential,
    /// Race diversified workers; first SAT/UNSAT verdict wins and cancels
    /// the rest. `workers == 0` means "use the machine's available
    /// parallelism" (see [`SolverStrategy::effective_workers`]).
    Portfolio {
        /// Worker count; 0 = auto.
        workers: usize,
    },
}

impl Default for SolverStrategy {
    /// Portfolio with auto-sized workers — the compile path is
    /// solve-dominated (§7.2), so racing is the default.
    fn default() -> Self {
        SolverStrategy::Portfolio { workers: 0 }
    }
}

impl SolverStrategy {
    /// Resolve the worker count this strategy actually spawns.
    pub fn effective_workers(&self) -> usize {
        match self {
            SolverStrategy::Sequential => 1,
            SolverStrategy::Portfolio { workers: 0 } => lyra_solver::portfolio::default_workers(),
            SolverStrategy::Portfolio { workers } => *workers,
        }
    }
}

impl std::fmt::Display for SolverStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverStrategy::Sequential => write!(f, "sequential"),
            SolverStrategy::Portfolio { workers: 0 } => write!(f, "portfolio:auto"),
            SolverStrategy::Portfolio { workers } => write!(f, "portfolio:{workers}"),
        }
    }
}

/// Solve `model`, optionally minimizing `objective`. Returns the verdict
/// together with the search statistics accumulated while reaching it.
/// Uses the default strategy (portfolio with auto-sized workers).
pub fn solve(model: &Model, objective: Option<&Ix>, backend: &Backend) -> (Outcome, SearchStats) {
    solve_with_hints(model, objective, backend, &[])
}

/// [`solve`] with initial phase hints (a previous solution's variable
/// values). The solver tries the hinted values first, keeping successive
/// placements stable under small program changes (§8 "Synthesizing
/// incremental changes").
pub fn solve_with_hints(
    model: &Model,
    objective: Option<&Ix>,
    backend: &Backend,
    hints: &[(lyra_solver::BoolId, bool)],
) -> (Outcome, SearchStats) {
    solve_with_strategy(model, objective, backend, hints, SolverStrategy::default())
}

/// [`solve_with_hints`] under an explicit [`SolverStrategy`].
pub fn solve_with_strategy(
    model: &Model,
    objective: Option<&Ix>,
    backend: &Backend,
    hints: &[(lyra_solver::BoolId, bool)],
    strategy: SolverStrategy,
) -> (Outcome, SearchStats) {
    solve_with_limits(
        model,
        objective,
        backend,
        hints,
        strategy,
        &SolveLimits::default(),
    )
}

/// Resource limits on one solve — the watchdog's knobs — plus the
/// decomposition toggle and warm-start store that ride along with them
/// into the engine's [`SolveCtx`].
#[derive(Debug, Clone, Default)]
pub struct SolveLimits {
    /// Wall-clock deadline; on expiry the search winds down with
    /// [`Outcome::Unknown`] (never a wrong verdict).
    pub deadline: Option<std::time::Instant>,
    /// Decision budget override (`None` keeps the solver default).
    pub max_decisions: Option<u64>,
    /// Restart aggressively (short interval, slow activity decay) — the
    /// configuration the degradation ladder uses for its sequential retry,
    /// which tends to find *a* model quickly at the cost of proof power.
    pub aggressive_restarts: bool,
    /// Split the flattened formula into connected components and solve
    /// them independently (see `lyra_solver::decompose::Decomposed`).
    pub decomposition: bool,
    /// Learned-clause store consulted and refreshed around each solve,
    /// keyed by encoding fingerprint (warm-start re-solve).
    pub warm: Option<Arc<ClauseStore>>,
    /// Integer value hints (a previous solution's entry-shard sizes): the
    /// solver branches to these values first where still feasible, so an
    /// incremental re-solve keeps table shards where the fleet already
    /// holds them — the placement half of O(delta) rollouts.
    pub int_hints: Vec<(lyra_solver::IntId, i64)>,
}

/// [`solve_with_strategy`] under explicit [`SolveLimits`].
///
/// A minimization that times out after finding at least one model returns
/// that model as [`Outcome::Sat`] — possibly non-optimal, which is exactly
/// the degraded-result contract. A minimization that times out before any
/// model returns [`Outcome::Unknown`], not `Unsat`: expiry proves nothing.
pub fn solve_with_limits(
    model: &Model,
    objective: Option<&Ix>,
    backend: &Backend,
    hints: &[(lyra_solver::BoolId, bool)],
    strategy: SolverStrategy,
    limits: &SolveLimits,
) -> (Outcome, SearchStats) {
    match backend {
        Backend::Native => {
            let mut cfg = SolverConfig {
                phase_hints: hints
                    .iter()
                    .map(|&(id, v)| (id.index() as u32, v))
                    .collect(),
                int_hints: limits
                    .int_hints
                    .iter()
                    .map(|&(id, v)| (id.index() as u32, v))
                    .collect(),
                deadline: limits.deadline,
                ..Default::default()
            };
            if let Some(d) = limits.max_decisions {
                cfg.max_decisions = d;
            }
            if limits.aggressive_restarts {
                cfg.restart_interval = 32;
                cfg.activity_decay = 0.99;
            }
            let workers = strategy.effective_workers();
            let engine: Box<dyn Solver> = if limits.decomposition {
                Box::new(Decomposed { workers })
            } else if workers <= 1 {
                Box::new(Sequential)
            } else {
                Box::new(Portfolio { workers })
            };
            let ctx = SolveCtx {
                config: cfg,
                warm: limits.warm.clone(),
            };
            match objective {
                None => engine.solve(model, &ctx),
                Some(obj) => {
                    let (res, stats) = engine.minimize(model, obj, &ctx);
                    let outcome = match res {
                        Some((sol, _)) => Outcome::Sat(sol),
                        // `None` is a refutation only if no limit could
                        // have truncated the search.
                        None if limits.expired() => Outcome::Unknown,
                        None => Outcome::Unsat,
                    };
                    (outcome, stats)
                }
            }
        }
    }
}

impl SolveLimits {
    /// Has the wall-clock deadline passed? (Used to keep a truncated
    /// minimization from being misread as a refutation.)
    fn expired(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }
}

/// Native solver with an explicit configuration (used by tests).
pub fn solve_native_with(model: &Model, cfg: &SolverConfig) -> (Outcome, SearchStats) {
    let flat = lyra_solver::flatten(model);
    let (outcome, _, stats) = lyra_solver::solve_flat(&flat, cfg, &[]);
    (outcome, stats)
}

/// Check a solution against the model — shared sanity hook.
pub fn verify(model: &Model, sol: &Solution) -> bool {
    sol.satisfies(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_solver::Bx;

    fn tiny_model() -> (Model, lyra_solver::BoolId, lyra_solver::IntId) {
        let mut m = Model::new();
        let d = m.bool_var("d");
        let e = m.int_var("e", 0, 100);
        m.require(Bx::implies(Bx::var(d), Ix::var(e).ge(Ix::lit(40))));
        m.require(Bx::var(d));
        (m, d, e)
    }

    #[test]
    fn native_solves() {
        let (m, d, e) = tiny_model();
        let (outcome, _) = solve(&m, None, &Backend::Native);
        let sol = outcome.solution().unwrap();
        assert!(sol.bool(d));
        assert!(sol.int(e) >= 40);
    }

    #[test]
    fn stats_are_reported() {
        let (m, _, _) = tiny_model();
        let (_, stats) = solve(&m, None, &Backend::Native);
        // The tiny model must at least propagate something.
        assert!(stats.decisions + stats.propagations > 0);
    }

    #[test]
    fn int_hints_steer_the_model_toward_the_previous_value() {
        // `x` can be anything in [0, 100]; unhinted extraction lands on the
        // lower bound. A hint at 73 must make the solver branch there first
        // and keep it — the mechanism churn-aware placement relies on.
        let mut m = Model::new();
        let x = m.int_var("x", 0, 100);
        m.require(Ix::var(x).ge(Ix::lit(0)));
        let limits = SolveLimits {
            int_hints: vec![(x, 73)],
            ..Default::default()
        };
        let (outcome, _) = solve_with_limits(
            &m,
            None,
            &Backend::Native,
            &[],
            SolverStrategy::Sequential,
            &limits,
        );
        assert_eq!(outcome.solution().unwrap().int(x), 73);

        // An infeasible hint (outside the domain) must not break the solve.
        let limits = SolveLimits {
            int_hints: vec![(x, 999)],
            ..Default::default()
        };
        let (outcome, _) = solve_with_limits(
            &m,
            None,
            &Backend::Native,
            &[],
            SolverStrategy::Sequential,
            &limits,
        );
        assert!(outcome.solution().is_some());
    }

    #[test]
    fn minimize_reports_stats() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 100);
        m.require(Ix::var(x).ge(Ix::lit(17)));
        let (outcome, stats) = solve(&m, Some(&Ix::var(x)), &Backend::Native);
        let sol = outcome.solution().unwrap();
        assert_eq!(sol.int(x), 17);
        assert!(stats.decisions + stats.propagations > 0);
    }
}
