//! Conditional P4 synthesis — Algorithm 1 of the paper (§5.2).
//!
//! Given the instructions potentially deployed on a P4 switch (`R_s`), we:
//!
//! 1. group them into predicate blocks (`lyra-ir::blocks`);
//! 2. build the predicate-block dependency tree `PBTree` (a block's parent
//!    is the block containing the instruction that writes its predicate —
//!    each predicate is written exactly once thanks to SSA);
//! 3. bottom-up, merge mutually-exclusive sibling blocks (different
//!    branches of one `if`/`else` formulate the same P4 table — the
//!    NetCache `check_cache_valid`/`set_cache_valid` example of §7.1);
//! 4. top-down, fold a child block into its parent's table as an *action*
//!    when its predicate only reads the parent's extern output (a table
//!    hit/miss), otherwise create a new table.
//!
//! Optimization (§6, Appendix C.1): constant stores to metadata with no
//! dependencies can be hoisted into the parser (`set_metadata`), reducing
//! the number of generated tables — toggled by [`P4Options::parser_hoisting`].

use std::collections::BTreeMap;

use lyra_ir::{
    blocks::preds_mutually_exclusive, predicate_blocks_of, DepGraph, InstrId, IrAlgorithm, IrOp,
    IrProgram, Operand, PredBlock, StorageClass, ValueId,
};

use crate::table::{SynthAction, SynthTable, TableGroup, TableKind};
use crate::util::{compute_plumbing, real_deps, semantic_pred_writer};

/// Options controlling P4 synthesis.
#[derive(Debug, Clone)]
pub struct P4Options {
    /// Hoist dependency-free constant metadata stores into the parser
    /// (Appendix C.1 — "can yield a 50% reduction to the number of generated
    /// tables in our P4 INT program").
    pub parser_hoisting: bool,
}

impl Default for P4Options {
    fn default() -> Self {
        P4Options {
            parser_hoisting: true,
        }
    }
}

/// Instructions hoisted into the parser as `set_metadata` operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParserHoists {
    /// Hoisted instructions (constant assigns).
    pub instrs: Vec<InstrId>,
}

/// Synthesize the conditional P4 implementation of one algorithm on one
/// switch: the potential table group `L_s` (Algorithm 1's outputs `L` and
/// `I` — each table carries its identifying instructions).
pub fn synthesize_p4(
    ir: &IrProgram,
    alg: &IrAlgorithm,
    deps: &DepGraph,
    subset: &[InstrId],
    opts: &P4Options,
) -> (TableGroup, ParserHoists) {
    // Optional parser hoisting: pull out constant metadata stores with no
    // dependencies (in either direction within the subset is too strict —
    // the store must not depend on anything, and nothing may *re-write* its
    // destination, which SSA guarantees per-version; we additionally require
    // the destination to be written exactly once).
    let mut hoists = ParserHoists::default();
    let mut working: Vec<InstrId> = subset.to_vec();
    if opts.parser_hoisting {
        let write_counts = base_write_counts(alg);
        working.retain(|&id| {
            let instr = alg.instr(id);
            let hoistable = instr.pred.is_none()
                && matches!(instr.op, IrOp::Assign(Operand::Const(_)))
                && instr
                    .dst
                    .map(|d| {
                        let v = alg.value(d);
                        v.class == StorageClass::Local
                            && !v.base.starts_with('%')
                            && write_counts.get(&v.base).copied().unwrap_or(0) == 1
                    })
                    .unwrap_or(false)
                && deps.pred_list(id).is_empty();
            if hoistable {
                hoists.instrs.push(id);
                false
            } else {
                true
            }
        });
    }

    // Predicate plumbing (comparisons, negations, conjunctions feeding only
    // predicate positions) becomes gateway conditions / match keys rather
    // than tables.
    let plumbing = compute_plumbing(alg, &working);
    working.retain(|i| !plumbing.contains(i));

    let blocks = predicate_blocks_of(alg, deps, &working);

    // --- PBTree construction -------------------------------------------
    // parent[b] = index of the block containing the instruction that writes
    // block b's predicate (None = root-level block).
    let block_of_instr: BTreeMap<InstrId, usize> = blocks
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| b.instrs.iter().map(move |&i| (i, bi)))
        .collect();
    let parent: Vec<Option<usize>> = blocks
        .iter()
        .map(|b| {
            b.pred
                .and_then(|p| semantic_pred_writer(alg, &plumbing, p))
                .and_then(|w| block_of_instr.get(&w).copied())
        })
        .collect();

    // --- Bottom-up: merge mutually-exclusive sibling blocks -------------
    // Union-find-lite: merged[b] = representative block index.
    let mut merged_into: Vec<usize> = (0..blocks.len()).collect();
    for i in 0..blocks.len() {
        for j in (i + 1)..blocks.len() {
            if merged_into[j] != j {
                continue;
            }
            let same_parent = parent[i] == parent[j];
            let exclusive = match (blocks[i].pred, blocks[j].pred) {
                (Some(p), Some(q)) => preds_mutually_exclusive(alg, p, q),
                _ => false,
            };
            if same_parent && exclusive && merged_into[i] == i {
                merged_into[j] = i;
            }
        }
    }

    // --- Top-down: action folding vs. new tables -------------------------
    // A block folds into its parent's table as an action when its predicate
    // reads only the parent's extern output (table hit/miss or looked-up
    // value). Otherwise it becomes its own table.
    let mut folds_into: Vec<Option<usize>> = vec![None; blocks.len()];
    for (bi, block) in blocks.iter().enumerate() {
        if merged_into[bi] != bi {
            continue; // handled with its representative
        }
        let Some(parent_bi) = parent[bi] else {
            continue;
        };
        let parent_rep = merged_into[parent_bi];
        if parent_has_extern_output(alg, &blocks[parent_bi], block.pred) {
            folds_into[bi] = Some(parent_rep);
        }
    }

    // A fold is only honored when its target itself materializes as a
    // table: a child whose parent block was folded away would otherwise be
    // silently dropped — lost code. (The differential oracle caught a
    // trailing predicated block vanishing exactly this way: its predicate
    // read a looked-up value, so it folded toward the lookup's consumer
    // block, which had itself folded into the extern table.) Such a block
    // keeps its own table instead.
    for bi in 0..blocks.len() {
        if let Some(t) = folds_into[bi] {
            if folds_into[t].is_some() {
                folds_into[bi] = None;
            }
        }
    }

    // --- Emit tables ------------------------------------------------------
    // Representative blocks that don't fold become tables; every other
    // block contributes an action to its resolved home table. The emission
    // is total: each predicate block lands in exactly one table.
    let mut table_index: BTreeMap<usize, usize> = BTreeMap::new();
    let mut tables: Vec<SynthTable> = Vec::new();
    for (bi, block) in blocks.iter().enumerate() {
        if merged_into[bi] != bi || folds_into[bi].is_some() {
            continue;
        }
        let idx = tables.len();
        table_index.insert(bi, idx);
        tables.push(block_to_table(ir, alg, block, idx));
    }
    // Attach merged siblings and folded children as actions of their home
    // table: the representative's own table, or — when the representative
    // folded — its parent's.
    for (bi, block) in blocks.iter().enumerate() {
        let rep = merged_into[bi];
        if bi == rep && folds_into[bi].is_none() {
            continue; // already emitted as a table
        }
        let home = folds_into[rep].unwrap_or(rep);
        let &ti = table_index
            .get(&home)
            .expect("fold/merge target must materialize as a table");
        let n = tables[ti].actions.len();
        let act_name = format!("{}_act{}", tables[ti].name, n);
        tables[ti].actions.push(SynthAction {
            name: act_name,
            instrs: block.instrs.clone(),
        });
        tables[ti].instrs.extend(&block.instrs);
    }

    // --- Table dependencies ----------------------------------------------
    let owner: BTreeMap<InstrId, usize> = tables
        .iter()
        .enumerate()
        .flat_map(|(ti, t)| t.instrs.iter().map(move |&i| (i, ti)))
        .collect();
    #[allow(clippy::needless_range_loop)] // ti also indexes for mutation below
    for ti in 0..tables.len() {
        let mut deps_t: Vec<usize> = Vec::new();
        for &i in &tables[ti].instrs.clone() {
            for p in real_deps(alg, deps, &plumbing, i) {
                if let Some(&src) = owner.get(&p) {
                    if src != ti && !deps_t.contains(&src) {
                        deps_t.push(src);
                    }
                }
            }
        }
        tables[ti].depends_on = deps_t;
    }
    crate::util::add_storage_hazards(alg, &plumbing, &mut tables);

    let registers = count_registers(alg, &working);
    let mut group = TableGroup {
        tables,
        registers,
        critical_path: 0,
    };
    group.fuse_cycles();
    group.sort_topological();
    group.compute_critical_path();
    (group, hoists)
}

/// How many times each base name is written in the algorithm.
fn base_write_counts(alg: &IrAlgorithm) -> BTreeMap<String, u32> {
    let mut m = BTreeMap::new();
    for i in &alg.instrs {
        if let Some(d) = i.dst {
            *m.entry(alg.value(d).base.clone()).or_insert(0) += 1;
        }
    }
    m
}

/// Does `parent` produce an extern output that `child_pred` only reads —
/// i.e. is the child's predicate a function of the parent's table hit/miss
/// or looked-up value?
fn parent_has_extern_output(
    alg: &IrAlgorithm,
    parent: &PredBlock,
    child_pred: Option<ValueId>,
) -> bool {
    let Some(cp) = child_pred else { return false };
    // Walk the predicate's defining chain down to source values; all source
    // values must be defined by TableMember/TableLookup instructions inside
    // the parent block.
    let mut stack = vec![cp];
    let mut saw_extern = false;
    while let Some(v) = stack.pop() {
        let info = alg.value(v);
        let Some(def) = info.def else { return false };
        match &alg.instr(def).op {
            IrOp::TableMember { .. } | IrOp::TableLookup { .. } if parent.instrs.contains(&def) => {
                saw_extern = true;
            }
            IrOp::Unary {
                a: Operand::Value(src),
                ..
            } => stack.push(*src),
            IrOp::Binary { a, b, .. } => {
                for o in [a, b] {
                    if let Operand::Value(src) = o {
                        stack.push(*src);
                    }
                }
            }
            IrOp::Assign(Operand::Value(src)) => stack.push(*src),
            _ => return false,
        }
    }
    saw_extern
}

fn block_to_table(ir: &IrProgram, alg: &IrAlgorithm, block: &PredBlock, idx: usize) -> SynthTable {
    // If the block contains an extern read, the table *is* that extern.
    let extern_read = block.instrs.iter().find_map(|&i| match &alg.instr(i).op {
        IrOp::TableMember { table, .. } | IrOp::TableLookup { table, .. } => Some(table.clone()),
        _ => None,
    });
    let stateful = block.instrs.iter().any(|&i| {
        matches!(
            alg.instr(i).op,
            IrOp::GlobalRead { .. } | IrOp::GlobalWrite { .. }
        )
    });
    let (kind, match_width, entries, match_kind) = if let Some(e) = extern_read {
        let ext = ir.externs.get(&e);
        let width = ext
            .map(|x| (x.key_width() + x.value_width()) as u64)
            .unwrap_or(32);
        let size = ext.map(|x| x.size).unwrap_or(1024);
        let mk = ext.map(|x| x.match_kind).unwrap_or_default();
        (TableKind::ExternMatch { extern_name: e }, width, size, mk)
    } else if let Some(p) = block.pred {
        // Gateway table matching the predicate's source fields.
        let width = pred_match_width(alg, p);
        (
            TableKind::PredicateGate,
            width,
            2,
            lyra_lang::MatchKind::Ternary,
        )
    } else {
        (TableKind::DirectAction, 0, 1, lyra_lang::MatchKind::Exact)
    };
    let name = format!("{}_t{}", alg.name, idx);
    SynthTable {
        name: name.clone(),
        algorithm: alg.name.clone(),
        kind,
        match_width,
        entries,
        actions: vec![SynthAction {
            name: format!("{name}_act0"),
            instrs: block.instrs.clone(),
        }],
        pred: block.pred,
        match_kind,
        instrs: block.instrs.clone(),
        depends_on: Vec::new(),
        stateful,
    }
}

/// Total width of the source fields a predicate matches on.
fn pred_match_width(alg: &IrAlgorithm, p: ValueId) -> u64 {
    let mut width = 0u64;
    let mut stack = vec![p];
    let mut seen = std::collections::BTreeSet::new();
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        let info = alg.value(v);
        match info.def {
            None => width += info.width as u64, // source field
            Some(def) => {
                for o in alg.instr(def).op.reads() {
                    if let Operand::Value(src) = o {
                        stack.push(src);
                    }
                }
            }
        }
    }
    width.max(1)
}

/// Number of distinct global register arrays the subset touches.
pub fn count_registers(alg: &IrAlgorithm, subset: &[InstrId]) -> u64 {
    let mut names = std::collections::BTreeSet::new();
    for &i in subset {
        if let Some(g) = alg.instr(i).op.global() {
            names.insert(g.to_string());
        }
    }
    names.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::{dependency_graph, frontend};

    fn synth(src: &str, opts: &P4Options) -> (TableGroup, ParserHoists) {
        let ir = frontend(src).unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        synthesize_p4(&ir, alg, &deps, &subset, opts)
    }

    #[test]
    fn netcache_style_merge_reduces_tables() {
        // §7.1: check_cache_valid / set_cache_valid sit in different
        // branches of the same condition chain and fold into one table.
        let src = r#"
            pipeline[P]{nc};
            algorithm nc {
                global bit[8][1024] cache_valid;
                if (op == 1) {
                    cache_valid[idx] = 1;
                } else {
                    cache_valid[idx] = 0;
                }
            }
        "#;
        let (group, _) = synth(src, &P4Options::default());
        // One gateway table with two actions, not two tables.
        let gated: Vec<&SynthTable> = group.tables.iter().filter(|t| t.pred.is_some()).collect();
        assert_eq!(gated.len(), 1, "tables: {:#?}", group.tables);
        assert_eq!(gated[0].actions.len(), 2);
    }

    #[test]
    fn lb_lookup_folds_consumer_into_action() {
        // The consumer of a table hit folds into the lookup table's action
        // list (conn_table pattern).
        let src = r#"
            pipeline[P]{lb};
            algorithm lb {
                extern dict<bit[32] h, bit[32] ip>[1024] conn;
                hit = h in conn;
                if (hit) {
                    dst = conn[h];
                }
            }
        "#;
        let (group, _) = synth(src, &P4Options::default());
        let ext: Vec<&SynthTable> = group
            .tables
            .iter()
            .filter(|t| t.extern_name() == Some("conn"))
            .collect();
        assert!(!ext.is_empty());
        // The hit-consumer block became an action of an extern table rather
        // than its own predicate-gate table.
        assert!(
            group
                .tables
                .iter()
                .all(|t| !matches!(t.kind, TableKind::PredicateGate)),
            "tables: {:#?}",
            group.tables
        );
    }

    #[test]
    fn chained_fold_keeps_every_block() {
        // Regression (caught by the differential oracle): the trailing
        // predicated block's predicate reads `v0`, written by the lookup
        // consumer, which itself folds into the extern table. The trailing
        // block's fold then targeted a block with no table of its own and
        // was silently dropped — `v2 = v4 + 1` vanished from the artifact.
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[64] t1;
                v4 = v3 & v2;
                if (v4 in t1) { v0 = t1[v4]; }
                if (v0 > 179) { v2 = v4 + 1; }
            }
        "#;
        let ir = frontend(src).unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let (group, hoists) = synthesize_p4(&ir, alg, &deps, &subset, &P4Options::default());
        let plumbing = compute_plumbing(alg, &subset);
        let covered: std::collections::BTreeSet<InstrId> = group
            .tables
            .iter()
            .flat_map(|t| t.instrs.iter().copied())
            .chain(hoists.instrs.iter().copied())
            .collect();
        for id in alg.instr_ids() {
            assert!(
                plumbing.contains(&id) || covered.contains(&id),
                "instr {id:?} is in no table (lost code): {:#?}",
                group.tables
            );
        }
    }

    #[test]
    fn parser_hoisting_removes_constant_stores() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                flag = 1;
                if (en) { x = y + 1; }
            }
        "#;
        let (with, hoists) = synth(src, &P4Options::default());
        assert_eq!(hoists.instrs.len(), 1);
        let (without, no_hoists) = synth(
            src,
            &P4Options {
                parser_hoisting: false,
            },
        );
        assert!(no_hoists.instrs.is_empty());
        assert!(with.table_count() < without.table_count());
    }

    #[test]
    fn extern_table_uses_extern_size() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[8] v>[4096] big;
                if (k in big) { out = 1; }
            }
        "#;
        let (group, _) = synth(src, &P4Options::default());
        let t = group
            .tables
            .iter()
            .find(|t| t.extern_name() == Some("big"))
            .unwrap();
        assert_eq!(t.entries, 4096);
        assert_eq!(t.match_width, 40); // 32 key + 8 value
    }

    #[test]
    fn stateful_blocks_marked() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                global bit[32][64] ctr;
                ctr[i] = ctr[i] + 1;
            }
        "#;
        let (group, _) = synth(src, &P4Options::default());
        assert!(group.tables.iter().any(|t| t.stateful));
        assert_eq!(group.registers, 1);
    }

    #[test]
    fn dependent_tables_get_edges() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                h = crc32_hash(x);
                if (h == 5) { y = z + 1; }
            }
        "#;
        let (group, _) = synth(src, &P4Options::default());
        assert!(group.critical_path >= 2, "group: {group:#?}");
    }

    #[test]
    fn comparison_becomes_gateway_not_table() {
        // Figure 5(a)'s `if (smac == dmac)`: the comparison is the gate's
        // match condition, not its own table.
        let src = "pipeline[P]{a}; algorithm a { if (smac == dmac) { y = 1; } }";
        let (group, _) = synth(
            src,
            &P4Options {
                parser_hoisting: false,
            },
        );
        assert_eq!(group.table_count(), 1, "group: {group:#?}");
        assert!(matches!(group.tables[0].kind, TableKind::PredicateGate));
        // Match width covers both 32-bit (defaulted) operands.
        assert!(group.tables[0].match_width >= 64);
    }
}
