//! Placement extraction: turn a solver assignment back into a concrete
//! per-switch plan, including the *extensible resources* of §5.6 /
//! Algorithm 2 — values written upstream and read downstream must be
//! carried in the packet header, and split extern tables propagate their
//! hit/miss bit so a downstream switch can decide whether to look up its
//! shard ("Lyra adds the first ConnTable's entry hit/miss information to
//! the header").

use std::collections::BTreeMap;

use lyra_chips::ResourceUsage;
use lyra_ir::{InstrId, IrProgram, Operand};
use lyra_solver::Solution;
use lyra_topo::{SwitchId, Topology};

use crate::encode::Encoded;
use crate::table::SynthTable;

/// A value that must travel in the packet header between switches
/// (Algorithm 2's extensible resource).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarriedValue {
    /// Storage base name (or `<extern>_hit` for split-table hit bits).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Producing switch.
    pub from: SwitchId,
    /// Consuming switch.
    pub to: SwitchId,
}

/// The plan for one switch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwitchPlan {
    /// Per algorithm: the instructions deployed here.
    pub instrs: BTreeMap<String, Vec<InstrId>>,
    /// Valid synthesized tables (with extern entry counts substituted).
    pub tables: Vec<SynthTable>,
    /// Extern entries hosted here: extern name → count.
    pub extern_entries: BTreeMap<String, u64>,
    /// Values that must be parsed from the bridge header on ingress.
    pub carried_in: Vec<CarriedValue>,
    /// Values that must be appended to the bridge header on egress.
    pub carried_out: Vec<CarriedValue>,
    /// Parser-hoisted constant stores (Appendix C.1).
    pub parser_sets: BTreeMap<String, Vec<InstrId>>,
    /// Resource accounting for reports (Figure 9's columns).
    pub usage: ResourceUsage,
}

/// A complete placement: plans for every switch that received code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Placement {
    /// Switch name → plan.
    pub switches: BTreeMap<String, SwitchPlan>,
}

impl Placement {
    /// Total tables across all switches.
    pub fn total_tables(&self) -> u64 {
        self.switches.values().map(|p| p.usage.tables).sum()
    }

    /// Number of switches hosting code.
    pub fn used_switches(&self) -> usize {
        self.switches
            .values()
            .filter(|p| !p.instrs.is_empty())
            .count()
    }
}

/// Extract the placement from a solved model.
pub fn extract(enc: &Encoded, ir: &IrProgram, topo: &Topology, sol: &Solution) -> Placement {
    let mut placement = Placement::default();

    // Instructions per switch.
    for ((alg, s, i), &var) in &enc.instr_var {
        if sol.bool(var) {
            let plan = placement
                .switches
                .entry(topo.switch(*s).name.clone())
                .or_default();
            plan.instrs.entry(alg.clone()).or_default().push(*i);
        }
    }

    // Extern entries per switch (variable and fixed).
    for ((e, s), &var) in &enc.extern_var {
        let count = sol.int(var).max(0) as u64;
        if count > 0 {
            let plan = placement
                .switches
                .entry(topo.switch(*s).name.clone())
                .or_default();
            plan.extern_entries.insert(e.clone(), count);
        }
    }
    for ((e, s), &count) in &enc.extern_fixed {
        let plan = placement
            .switches
            .entry(topo.switch(*s).name.clone())
            .or_default();
        plan.extern_entries.insert(e.clone(), count);
    }

    // Valid tables per switch, with extern entries substituted.
    for unit in &enc.units {
        let sw_name = topo.switch(unit.switch).name.clone();
        let Some(plan) = placement.switches.get_mut(&sw_name) else {
            continue;
        };
        let deployed: std::collections::BTreeSet<InstrId> = plan
            .instrs
            .get(&unit.alg)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        if deployed.is_empty() {
            continue;
        }
        for t in &unit.group.tables {
            if t.instrs.iter().any(|i| deployed.contains(i)) {
                let mut t = t.clone();
                if let Some(e) = t.extern_name() {
                    if let Some(&count) = plan.extern_entries.get(e) {
                        t.entries = count;
                    }
                }
                plan.tables.push(t);
            }
        }
        if !unit.hoists.instrs.is_empty() {
            let hoisted: Vec<InstrId> = unit
                .hoists
                .instrs
                .iter()
                .copied()
                .filter(|i| deployed.contains(i))
                .collect();
            if !hoisted.is_empty() {
                plan.parser_sets.insert(unit.alg.clone(), hoisted);
            }
        }
    }

    // Carried values (Algorithm 2) along every MULTI-SW path.
    compute_carried(enc, ir, topo, sol, &mut placement);

    // Resource usage accounting.
    for (name, plan) in &mut placement.switches {
        let sw = topo.find(name).expect("switch exists");
        let chip = enc
            .units
            .iter()
            .find(|u| u.switch == sw)
            .map(|u| u.chip.clone());
        let mut usage = ResourceUsage {
            tables: plan.tables.len() as u64,
            actions: plan.tables.iter().map(|t| t.action_count()).sum(),
            registers: plan
                .tables
                .iter()
                .filter(|t| {
                    matches!(t.kind, crate::table::TableKind::Register { .. }) || t.stateful
                })
                .count() as u64,
            ..ResourceUsage::default()
        };
        if let Some(chip) = chip {
            usage.sram_blocks = plan
                .tables
                .iter()
                .map(|t| chip.table_blocks(t.entries, t.match_width))
                .sum();
        }
        // Longest dependency chain among deployed tables.
        let name_index: BTreeMap<&str, usize> = plan
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i))
            .collect();
        let _ = name_index;
        let mut depth = vec![1u64; plan.tables.len()];
        for i in 0..plan.tables.len() {
            for &d in &plan.tables[i].depends_on {
                if d < depth.len() && d < i {
                    depth[i] = depth[i].max(depth[d] + 1);
                }
            }
        }
        usage.longest_code_path = depth.into_iter().max().unwrap_or(0);
        usage.stages = usage.longest_code_path;
        plan.usage = usage;
    }

    placement
}

/// Compute carried values: for every path of every MULTI-SW scope, a value
/// defined on an earlier hop and read on a later hop crosses the boundary;
/// split externs additionally carry their hit bit.
fn compute_carried(
    enc: &Encoded,
    ir: &IrProgram,
    topo: &Topology,
    sol: &Solution,
    placement: &mut Placement,
) {
    for scope in enc.scopes.values() {
        if scope.deploy != lyra_lang::DeployMode::MultiSwitch {
            continue;
        }
        let Some(alg) = ir.algorithm(&scope.algorithm) else {
            continue;
        };
        let on = |i: InstrId, s: SwitchId| -> bool {
            enc.instr_var
                .get(&(scope.algorithm.clone(), s, i))
                .map(|&v| sol.bool(v))
                .unwrap_or(false)
        };
        for path in &scope.paths {
            for (j, &sw) in path.iter().enumerate() {
                for i in alg.instr_ids() {
                    if !on(i, sw) {
                        continue;
                    }
                    let Some(dst) = alg.instr(i).dst else {
                        continue;
                    };
                    // Does any later hop read this value?
                    for &later in &path[j + 1..] {
                        let read_later = alg.instr_ids().any(|r| {
                            on(r, later)
                                && (alg.instr(r).pred == Some(dst)
                                    || alg
                                        .instr(r)
                                        .op
                                        .reads()
                                        .iter()
                                        .any(|o| matches!(o, Operand::Value(v) if *v == dst)))
                        });
                        if read_later {
                            let info = alg.value(dst);
                            let cv = CarriedValue {
                                name: format!(
                                    "{}_{}",
                                    scope.algorithm,
                                    info.name().replace(['#', '.'], "_")
                                ),
                                width: info.width.max(1),
                                from: sw,
                                to: later,
                            };
                            push_carried(placement, topo, cv);
                        }
                    }
                }
            }
            // Split externs: hit bit carried from each holder to the next.
            for (e, _) in ir.externs.iter() {
                let holders: Vec<SwitchId> = path
                    .iter()
                    .copied()
                    .filter(|&s| {
                        enc.extern_var
                            .get(&(e.clone(), s))
                            .map(|&v| sol.int(v) > 0)
                            .unwrap_or(false)
                    })
                    .collect();
                for w in holders.windows(2) {
                    let cv = CarriedValue {
                        name: format!("{e}_hit"),
                        width: 1,
                        from: w[0],
                        to: w[1],
                    };
                    push_carried(placement, topo, cv);
                }
            }
        }
    }
}

fn push_carried(placement: &mut Placement, topo: &Topology, cv: CarriedValue) {
    let from_name = topo.switch(cv.from).name.clone();
    let to_name = topo.switch(cv.to).name.clone();
    let out_plan = placement.switches.entry(from_name).or_default();
    if !out_plan.carried_out.contains(&cv) {
        out_plan.carried_out.push(cv.clone());
    }
    let in_plan = placement.switches.entry(to_name).or_default();
    if !in_plan.carried_in.contains(&cv) {
        in_plan.carried_in.push(cv);
    }
}
