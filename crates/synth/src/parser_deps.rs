//! Header/parser dependency helpers (Appendix A.1–A.2).
//!
//! RMT-style parsers cannot skip bytes, so parsing a header implies parsing
//! every header on the path from the parse-graph root to it ("if a TCP
//! header is parsed, then all the headers before the TCP header are also
//! parsed"). Each header also costs parser TCAM entries proportional to the
//! transitions that reach it.

use lyra_ir::IrProgram;

/// Resolve a header *instance* name (`ipv4`) to its parser node, if the
/// program declares parser nodes. Matching is by extract target.
fn node_extracting<'a>(ir: &'a IrProgram, instance: &str) -> Option<&'a lyra_lang::ParserNode> {
    ir.parser_nodes
        .iter()
        .find(|n| n.extracts.iter().any(|e| e == instance))
}

/// The header instance plus every ancestor instance its parsing implies.
///
/// Without declared parser nodes the header stands alone (metadata bundles
/// and implicit headers cost nothing extra).
pub fn with_ancestors(ir: &IrProgram, instance: &str) -> Vec<String> {
    let mut out = vec![instance.to_string()];
    let Some(mut node) = node_extracting(ir, instance) else {
        return out;
    };
    // Walk backwards: find a node transitioning into `node`.
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > ir.parser_nodes.len() + 1 {
            break; // cycle guard
        }
        let parent = ir.parser_nodes.iter().find(|n| {
            n.transitions.iter().any(|(_, next)| next == &node.name)
                || n.default.as_deref() == Some(node.name.as_str())
        });
        match parent {
            Some(p) => {
                for e in &p.extracts {
                    if !out.contains(e) {
                        out.push(e.clone());
                    }
                }
                node = p;
            }
            None => break,
        }
    }
    out
}

/// Parser TCAM entries attributable to one header instance: the number of
/// transitions that reach its parser node (eq. 7's `S_e` sets collapsed per
/// header), at least 1.
pub fn parser_entries_for(ir: &IrProgram, instance: &str) -> u64 {
    let Some(node) = node_extracting(ir, instance) else {
        return 1;
    };
    let mut entries = 0u64;
    for n in &ir.parser_nodes {
        entries += n
            .transitions
            .iter()
            .filter(|(_, next)| next == &node.name)
            .count() as u64;
        if n.default.as_deref() == Some(node.name.as_str()) {
            entries += 1;
        }
    }
    entries.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::frontend;

    fn prog() -> IrProgram {
        frontend(
            r#"
            header_type ethernet_t { fields { bit[16] ether_type; } }
            header_type ipv4_t { fields { bit[32] src_ip; bit[8] protocol; } }
            header_type tcp_t { fields { bit[16] src_port; } }
            parser_node start {
                extract(ethernet);
                select(ethernet.ether_type) { 0x0800: parse_ipv4; }
            }
            parser_node parse_ipv4 {
                extract(ipv4);
                select(ipv4.protocol) { 6: parse_tcp; }
            }
            parser_node parse_tcp { extract(tcp); }
            pipeline[P]{a};
            algorithm a { x = tcp.src_port; }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn tcp_implies_ipv4_and_ethernet() {
        let ir = prog();
        let anc = with_ancestors(&ir, "tcp");
        assert!(anc.contains(&"tcp".to_string()));
        assert!(anc.contains(&"ipv4".to_string()));
        assert!(anc.contains(&"ethernet".to_string()));
    }

    #[test]
    fn ethernet_stands_alone() {
        let ir = prog();
        assert_eq!(
            with_ancestors(&ir, "ethernet"),
            vec!["ethernet".to_string()]
        );
    }

    #[test]
    fn entry_counts() {
        let ir = prog();
        assert_eq!(parser_entries_for(&ir, "ipv4"), 1);
        assert_eq!(parser_entries_for(&ir, "tcp"), 1);
        // Headers without parser nodes cost one entry.
        assert_eq!(parser_entries_for(&ir, "mystery"), 1);
    }
}
