//! Infeasibility explanation: when the solver proves the placement model
//! UNSAT, re-examine the encoded instance with cheap *necessary-condition*
//! checks per constraint family and report which family is provably violated
//! — "extern `huge` cannot fit on flow path Agg3→ToR3" beats a bare UNSAT.
//!
//! Every check here is sound: it only fires when the corresponding family of
//! constraints is violated by *every* assignment (capacities are summed over
//! an entire flow path, ignoring all other families). When no single family
//! is provably at fault, a generic [`codes::INFEASIBLE`] diagnostic is
//! produced instead, naming the families that interact.

use std::collections::BTreeSet;

use lyra_chips::ChipModel;
use lyra_diag::{codes, Diagnostic};
use lyra_ir::IrProgram;
use lyra_lang::{ExternVar, MatchKind};
use lyra_topo::{SwitchId, Topology};

use crate::encode::{EncodeOptions, Encoded, SynthUnit};

/// Maximum entries of `x` that `chip` could hold if the extern had the whole
/// chip to itself — an upper bound used for necessary-condition checks.
fn extern_capacity(chip: &ChipModel, x: &ExternVar) -> u64 {
    let width = x.key_width().max(1) as u64;
    if x.match_kind.uses_tcam() {
        let words = width.div_ceil(chip.tcam.width.max(1));
        let rows = chip.total_tcam_blocks() / words.max(1) * chip.tcam.entries;
        let expansion = if x.match_kind == MatchKind::Range && !chip.supports_range_match {
            chip.range_expansion.max(1)
        } else {
            1
        };
        rows / expansion
    } else {
        chip.max_entries(width)
    }
}

/// Total distinct PHV bits the algorithm needs when fully deployed (every
/// storage base it touches, counted once at its widest use).
fn algorithm_phv_bits(alg: &lyra_ir::IrAlgorithm) -> u64 {
    let mut widths: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
    for i in alg.instr_ids() {
        let instr = alg.instr(i);
        let mut values: Vec<lyra_ir::ValueId> = Vec::new();
        for o in instr.op.reads() {
            if let lyra_ir::Operand::Value(v) = o {
                values.push(v);
            }
        }
        if let Some(d) = instr.dst {
            values.push(d);
        }
        if let Some(p) = instr.pred {
            values.push(p);
        }
        for v in values {
            let info = alg.value(v);
            let w = widths.entry(info.base.clone()).or_insert(0);
            *w = (*w).max(info.width);
        }
    }
    widths.values().map(|&w| w as u64).sum()
}

fn path_name(topo: &Topology, hops: &[SwitchId]) -> String {
    hops.iter()
        .map(|&s| topo.switch(s).name.as_str())
        .collect::<Vec<_>>()
        .join("→")
}

/// Explain why an encoded instance has no feasible placement.
///
/// Returns one diagnostic per provably violated constraint family
/// ([`codes::INFEASIBLE_MEMORY`], [`codes::INFEASIBLE_STAGES`],
/// [`codes::INFEASIBLE_PHV`], [`codes::INFEASIBLE_TABLES`]), each naming the
/// offending algorithm, switch or flow path, and table. Falls back to a
/// single generic [`codes::INFEASIBLE`] diagnostic when the failure arises
/// from the interaction of several families.
pub fn explain_infeasible(
    enc: &Encoded,
    ir: &IrProgram,
    topo: &Topology,
    opts: &EncodeOptions,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut seen: BTreeSet<(&'static str, String, String)> = BTreeSet::new();
    let passes: u64 = if opts.allow_recirculation { 2 } else { 1 };

    let unit_for = |alg: &str, s: SwitchId| -> Option<&SynthUnit> {
        enc.units.iter().find(|u| u.alg == alg && u.switch == s)
    };

    for scope in enc.scopes.values() {
        let Some(alg) = ir.algorithm(&scope.algorithm) else {
            continue;
        };
        for path in &scope.paths {
            // Programmable hops of this path (the ones that got units).
            let hops: Vec<(SwitchId, &SynthUnit)> = path
                .iter()
                .filter_map(|&s| unit_for(&scope.algorithm, s).map(|u| (s, u)))
                .collect();
            if hops.is_empty() {
                continue;
            }
            let pname = path_name(topo, &hops.iter().map(|&(s, _)| s).collect::<Vec<_>>());

            // Memory blocks (eq. 11): each extern's entries must fit,
            // summed across the path's programmable switches even if every
            // switch were empty otherwise.
            for (name, x) in &ir.externs {
                let used = hops[0]
                    .1
                    .group
                    .tables
                    .iter()
                    .any(|t| t.extern_name() == Some(name));
                if !used {
                    continue;
                }
                let capacity: u64 = hops.iter().map(|&(_, u)| extern_capacity(&u.chip, x)).sum();
                if x.size > capacity && seen.insert(("mem", scope.algorithm.clone(), name.clone()))
                {
                    out.push(
                        Diagnostic::error(
                            codes::INFEASIBLE_MEMORY,
                            format!(
                                "extern `{name}` ({} entries) cannot fit on flow path \
                                 {pname} of `{}`: at most {capacity} entries of this \
                                 match width fit across its programmable switches",
                                x.size, scope.algorithm
                            ),
                        )
                        .with_note("violated constraint family: memory blocks (eq. 11)")
                        .with_note(
                            hops.iter()
                                .map(|&(s, u)| {
                                    format!(
                                        "{} ({}): {} entries max",
                                        topo.switch(s).name,
                                        u.chip.name,
                                        extern_capacity(&u.chip, x)
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join("; "),
                        ),
                    );
                }
            }

            // Stage depth (eqs. 13–14): the longest table dependency chain
            // must fit in the summed stage budget of the path.
            let stage_budget: u64 = hops
                .iter()
                .map(|&(_, u)| u.chip.stages.max(1) as u64 * passes)
                .sum();
            let chain = hops[0].1.group.critical_path;
            if chain > stage_budget
                && seen.insert(("stages", scope.algorithm.clone(), pname.clone()))
            {
                out.push(
                    Diagnostic::error(
                        codes::INFEASIBLE_STAGES,
                        format!(
                            "`{}` needs a dependency chain of {chain} pipeline stages but \
                             flow path {pname} offers only {stage_budget}",
                            scope.algorithm
                        ),
                    )
                    .with_note("violated constraint family: stage depth (eqs. 13–14)")
                    .with_note(if opts.allow_recirculation {
                        "budget already includes one recirculation pass"
                    } else {
                        "enabling recirculation would double each switch's budget"
                    }),
                );
            }

            // Table count: every non-empty table must be valid on at least
            // one hop of every path.
            let tables_needed = hops[0]
                .1
                .group
                .tables
                .iter()
                .filter(|t| !t.instrs.is_empty())
                .count() as u64;
            let table_cap: u64 = hops
                .iter()
                .map(|&(_, u)| u.chip.stages as u64 * u.chip.max_tables_per_stage as u64)
                .sum();
            if tables_needed > table_cap
                && seen.insert(("tables", scope.algorithm.clone(), pname.clone()))
            {
                out.push(
                    Diagnostic::error(
                        codes::INFEASIBLE_TABLES,
                        format!(
                            "`{}` synthesizes {tables_needed} tables but flow path {pname} \
                             can host at most {table_cap}",
                            scope.algorithm
                        ),
                    )
                    .with_note("violated constraint family: per-stage table budget"),
                );
            }

            // PHV bits (eqs. 9–10): every value the algorithm touches must
            // live in some hop's PHV.
            let phv_needed = algorithm_phv_bits(alg);
            let phv_cap: u64 = hops
                .iter()
                .map(|&(_, u)| {
                    u.chip
                        .phv
                        .iter()
                        .map(|c| (c.width * c.count) as u64)
                        .sum::<u64>()
                })
                .sum();
            if phv_needed > phv_cap && seen.insert(("phv", scope.algorithm.clone(), pname.clone()))
            {
                out.push(
                    Diagnostic::error(
                        codes::INFEASIBLE_PHV,
                        format!(
                            "`{}` touches {phv_needed} bits of header/metadata state but \
                             flow path {pname} has only {phv_cap} PHV bits",
                            scope.algorithm
                        ),
                    )
                    .with_note("violated constraint family: PHV capacity (eqs. 9–10)"),
                );
            }
        }
    }

    if out.is_empty() {
        let algs: Vec<&str> = enc.scopes.keys().map(|s| s.as_str()).collect();
        out.push(
            Diagnostic::error(
                codes::INFEASIBLE,
                format!(
                    "no feasible placement for {}: the program does not fit the target \
                     network's resources",
                    algs.join(", ")
                ),
            )
            .with_note(
                "no single constraint family is provably at fault; the interaction of \
                 memory blocks, stage depth, table budgets, PHV capacity, flow-path and \
                 co-location constraints rules out every placement",
            ),
        );
    }
    out
}
