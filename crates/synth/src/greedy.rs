//! Greedy first-fit placement — the last rung of the degradation ladder.
//!
//! When the solver cannot reach a verdict inside its deadline, the compile
//! must still answer. This module fabricates a placement *without search*:
//! every MULTI-SW algorithm is hosted whole on the first switch of each
//! flow path that fits a coarse capacity model (SRAM blocks and table
//! slots), and PER-SW algorithms go everywhere their scope demands, as the
//! encoding would force anyway.
//!
//! The result is deliberately conservative rather than optimal: no
//! cross-switch splitting, no extern sharding, no objective optimization.
//! It respects the constraint families a whole-algorithm-per-switch
//! placement can violate — path coverage, instruction co-location with its
//! dependencies (trivially, everything is co-located), and coarse memory /
//! table capacity — but does *not* re-check fine-grained stage layout; the
//! caller marks the output [`DegradeRung::GreedyFirstFit`](crate::DegradeRung)
//! so downstream consumers know a solver-verified placement was not
//! obtained.

use std::collections::{BTreeMap, BTreeSet};

use lyra_chips::ChipModel;
use lyra_diag::{codes, Diagnostic};
use lyra_ir::{InstrId, IrProgram};
use lyra_lang::DeployMode;
use lyra_solver::Solution;
use lyra_topo::{SwitchId, Topology};

use crate::encode::Encoded;

/// Remaining coarse capacity of one switch.
struct SwitchBudget<'a> {
    chip: &'a ChipModel,
    sram_blocks_left: u64,
    tables_left: u64,
}

/// The coarse per-switch cost of hosting one whole algorithm.
struct AlgCost {
    sram_blocks: u64,
    tables: u64,
}

/// Externs each algorithm reads, from the IR.
fn externs_of(ir: &IrProgram, alg: &str) -> Vec<String> {
    let mut set = BTreeSet::new();
    if let Some(a) = ir.algorithm(alg) {
        for i in 0..a.instrs.len() {
            if let Some(t) = a.instr(InstrId(i as u32)).op.table() {
                set.insert(t.to_string());
            }
        }
    }
    set.into_iter().collect()
}

/// Cost of hosting `alg` whole on the switch owning `chip`.
fn alg_cost(enc: &Encoded, ir: &IrProgram, alg: &str, sw: SwitchId, chip: &ChipModel) -> AlgCost {
    let mut sram_blocks = 0u64;
    for e in externs_of(ir, alg) {
        if let Some(x) = ir.externs.get(&e) {
            let width = (x.key_width() + x.value_width()) as u64;
            sram_blocks += chip.table_blocks(x.size, width.max(1)).max(1);
        }
    }
    let tables = enc
        .units
        .iter()
        .find(|u| u.alg == alg && u.switch == sw)
        .map(|u| u.group.tables.len() as u64)
        .unwrap_or(1);
    AlgCost {
        sram_blocks,
        tables,
    }
}

/// Compute a first-fit placement and express it as a raw [`Solution`] over
/// the encoded model's variables, so [`crate::place::extract`] can be
/// reused unchanged. Returns diagnostics when some flow path has no switch
/// with enough coarse capacity to host its algorithm whole.
pub fn greedy_solution(
    enc: &Encoded,
    ir: &IrProgram,
    topo: &Topology,
) -> Result<Solution, Vec<Diagnostic>> {
    // Per-algorithm programmable switch sets, from the encoding's own
    // variable table (only programmable switches got deployment variables).
    let mut prog_switches: BTreeMap<&str, BTreeSet<SwitchId>> = BTreeMap::new();
    for (alg, sw, _) in enc.instr_var.keys() {
        prog_switches.entry(alg).or_default().insert(*sw);
    }
    let chips: BTreeMap<SwitchId, &ChipModel> =
        enc.units.iter().map(|u| (u.switch, &u.chip)).collect();
    let mut budgets: BTreeMap<SwitchId, SwitchBudget> = chips
        .iter()
        .map(|(&sw, &chip)| {
            (
                sw,
                SwitchBudget {
                    chip,
                    sram_blocks_left: chip.total_sram_blocks(),
                    tables_left: (chip.stages * chip.max_tables_per_stage) as u64,
                },
            )
        })
        .collect();

    // hosts[alg] = switches that carry the whole algorithm.
    let mut hosts: BTreeMap<String, BTreeSet<SwitchId>> = BTreeMap::new();
    let mut diagnostics = Vec::new();

    let charge =
        |budgets: &mut BTreeMap<SwitchId, SwitchBudget>, alg: &str, sw: SwitchId| -> bool {
            let Some(b) = budgets.get_mut(&sw) else {
                return false;
            };
            let cost = alg_cost(enc, ir, alg, sw, b.chip);
            if cost.sram_blocks > b.sram_blocks_left || cost.tables > b.tables_left {
                return false;
            }
            b.sram_blocks_left -= cost.sram_blocks;
            b.tables_left -= cost.tables;
            true
        };

    for (alg, scope) in &enc.scopes {
        let alg_hosts = hosts.entry(alg.clone()).or_default();
        match scope.deploy {
            DeployMode::PerSwitch => {
                // The encoding forces every scope switch to carry the whole
                // algorithm; mirror that, and report (rather than mask) a
                // coarse capacity overflow.
                for &sw in prog_switches.get(alg.as_str()).into_iter().flatten() {
                    if !charge(&mut budgets, alg, sw) {
                        diagnostics.push(Diagnostic::error(
                            codes::INFEASIBLE_MEMORY,
                            format!(
                                "greedy fallback: `{alg}` does not fit switch `{}`",
                                topo.switch(sw).name
                            ),
                        ));
                    }
                    alg_hosts.insert(sw);
                }
            }
            DeployMode::MultiSwitch => {
                for path in &scope.paths {
                    if path.iter().any(|s| alg_hosts.contains(s)) {
                        continue; // an earlier host already covers this path
                    }
                    let placed = path.iter().copied().find(|&sw| {
                        prog_switches
                            .get(alg.as_str())
                            .is_some_and(|p| p.contains(&sw))
                            && charge(&mut budgets, alg, sw)
                    });
                    match placed {
                        Some(sw) => {
                            alg_hosts.insert(sw);
                        }
                        None => diagnostics.push(Diagnostic::error(
                            codes::INFEASIBLE_MEMORY,
                            format!(
                                "greedy fallback: no switch on path {} can host `{alg}` whole",
                                path.iter()
                                    .map(|&s| topo.switch(s).name.as_str())
                                    .collect::<Vec<_>>()
                                    .join("->")
                            ),
                        )),
                    }
                }
            }
        }
    }
    if !diagnostics.is_empty() {
        return Err(diagnostics);
    }

    // Express the assignment over the model's variables.
    let mut bools = vec![false; enc.model.num_bools()];
    let mut ints = vec![0i64; enc.model.num_ints()];
    for ((alg, sw, _), var) in &enc.instr_var {
        if hosts.get(alg).is_some_and(|h| h.contains(sw)) {
            bools[var.index()] = true;
        }
    }
    for ((e, sw), var) in &enc.extern_var {
        let hosted = hosts
            .iter()
            .any(|(alg, h)| h.contains(sw) && externs_of(ir, alg).iter().any(|x| x == e));
        if hosted {
            ints[var.index()] = ir.externs.get(e).map(|x| x.size as i64).unwrap_or(1024);
        }
    }
    for (sw, var) in &enc.switch_used {
        if hosts.values().any(|h| h.contains(sw)) {
            bools[var.index()] = true;
        }
    }
    Ok(Solution::from_parts(bools, ints))
}
