//! Conditional NPL synthesis (§5.3).
//!
//! NPL programs are built from logical tables, logical registers, functions
//! and a logical bus. Synthesis differs from P4 in three ways the paper
//! highlights:
//!
//! * **logical-table multi-lookup** — instructions reading the *same*
//!   extern merge into one logical table with several lookups (Figure 2's
//!   `check_ip` handles both source- and destination-IP filtering), so NPL
//!   programs need fewer tables than P4;
//! * **logical bus** — local variables live on a bus; we collect `V_s` and
//!   the set `I_Bus` of instructions touching it (the bus usage feeds the
//!   PHV-style constraint);
//! * **logical registers** — name-indexed only, so single-element globals
//!   become logical tables while arrays become distributed registers.
//!
//! No predicate-block tree is needed ("NPL synthesizing needs no predicate
//! block construction process"), which is why the paper measures NPL
//! compilation ≈2× faster than P4.

use std::collections::BTreeMap;

use lyra_ir::{DepGraph, InstrId, IrAlgorithm, IrOp, IrProgram, Operand, StorageClass};

use crate::table::{SynthAction, SynthTable, TableGroup, TableKind};
use crate::util::{compute_plumbing, pred_extern_root, real_deps};

/// NPL synthesis products beyond the table group.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NplExtras {
    /// Local variables carried on the logical bus (`V_s`).
    pub bus_vars: Vec<String>,
    /// Instructions reading or writing the bus (`I_Bus`).
    pub bus_instrs: Vec<InstrId>,
}

/// Synthesize the conditional NPL implementation of one algorithm on one
/// switch.
pub fn synthesize_npl(
    ir: &IrProgram,
    alg: &IrAlgorithm,
    deps: &DepGraph,
    subset: &[InstrId],
) -> (TableGroup, NplExtras) {
    // --- Logical tables: one per extern, lookups merged -----------------
    let plumbing = compute_plumbing(alg, subset);
    let mut extern_lookups: BTreeMap<String, Vec<InstrId>> = BTreeMap::new();
    let mut register_ops: BTreeMap<String, Vec<InstrId>> = BTreeMap::new();
    let mut rest: Vec<InstrId> = Vec::new();
    for &i in subset {
        if plumbing.contains(&i) {
            continue; // realized as key_construct / condition logic
        }
        match &alg.instr(i).op {
            IrOp::TableMember { table, .. } | IrOp::TableLookup { table, .. } => {
                extern_lookups.entry(table.clone()).or_default().push(i);
            }
            IrOp::GlobalRead { global, .. } | IrOp::GlobalWrite { global, .. } => {
                register_ops.entry(global.clone()).or_default().push(i);
            }
            _ => rest.push(i),
        }
    }

    // Read-modify-write fusion (Appendix A.5): an instruction sitting on a
    // dependency path from a GlobalRead of `g` to a GlobalWrite of `g` must
    // live inside g's stateful atom — otherwise the register table and the
    // function table would depend on each other, which no pipeline can
    // realize. This takes precedence over folding into extern tables.
    let mut plain: Vec<InstrId> = Vec::new();
    'rest: for &i in &rest {
        for ops in register_ops.values_mut() {
            let on_rmw_path = ops.iter().any(|&r| {
                matches!(alg.instr(r).op, IrOp::GlobalRead { .. })
                    && deps.depends_transitively(i, r)
            }) && ops.iter().any(|&w| {
                matches!(alg.instr(w).op, IrOp::GlobalWrite { .. })
                    && deps.depends_transitively(w, i)
            });
            if on_rmw_path {
                ops.push(i);
                ops.sort();
                continue 'rest;
            }
        }
        // Instructions guarded by a table hit/miss fold into that logical
        // table's fields_assign body.
        match alg.instr(i).pred.and_then(|p| pred_extern_root(alg, p)) {
            Some(e) => extern_lookups.entry(e).or_default().push(i),
            None => plain.push(i),
        }
    }

    let mut tables: Vec<SynthTable> = Vec::new();
    for (ext_name, lookups) in &extern_lookups {
        let ext = ir.externs.get(ext_name);
        let name = format!("{}_{}", alg.name, ext_name);
        let n_lookups = lookups
            .iter()
            .filter(|&&i| {
                matches!(
                    alg.instr(i).op,
                    IrOp::TableMember { .. } | IrOp::TableLookup { .. }
                )
            })
            .count()
            .max(1) as u32;
        tables.push(SynthTable {
            name: name.clone(),
            algorithm: alg.name.clone(),
            kind: TableKind::NplLogical {
                lookups: n_lookups,
                extern_name: Some(ext_name.clone()),
            },
            match_width: ext
                .map(|x| (x.key_width() + x.value_width()) as u64)
                .unwrap_or(32),
            entries: ext.map(|x| x.size).unwrap_or(1024),
            actions: vec![SynthAction {
                name: format!("{name}_assign"),
                instrs: lookups.clone(),
            }],
            pred: None,
            match_kind: ext.map(|x| x.match_kind).unwrap_or_default(),
            instrs: lookups.clone(),
            depends_on: Vec::new(),
            stateful: false,
        });
    }

    // --- Logical registers ------------------------------------------------
    // Single-element globals become logical tables (NPL only supports
    // name-based indexing); arrays stay as registers.
    let mut registers = 0u64;
    for (global, ops) in &register_ops {
        let (width, len) = ir.globals.get(global).copied().unwrap_or((32, 1));
        if len == 1 {
            let name = format!("{}_{}_reg", alg.name, global);
            tables.push(SynthTable {
                name: name.clone(),
                algorithm: alg.name.clone(),
                kind: TableKind::Register {
                    global: global.clone(),
                },
                match_width: width as u64,
                entries: 1,
                actions: vec![SynthAction {
                    name: format!("{name}_rw"),
                    instrs: ops.clone(),
                }],
                pred: None,
                match_kind: lyra_lang::MatchKind::Exact,
                instrs: ops.clone(),
                depends_on: Vec::new(),
                stateful: true,
            });
        } else {
            registers += 1;
            let name = format!("{}_{}_regtbl", alg.name, global);
            tables.push(SynthTable {
                name: name.clone(),
                algorithm: alg.name.clone(),
                kind: TableKind::Register {
                    global: global.clone(),
                },
                match_width: width as u64,
                entries: len,
                actions: vec![SynthAction {
                    name: format!("{name}_rw"),
                    instrs: ops.clone(),
                }],
                pred: None,
                match_kind: lyra_lang::MatchKind::Exact,
                instrs: ops.clone(),
                depends_on: Vec::new(),
                stateful: true,
            });
        }
    }

    // --- Plain computation: function bodies grouped by dependency layer ---
    // NPL functions execute straight-line code; group the remaining
    // instructions into dependency layers, each layer one function table.
    let layers = layer_instrs(alg, deps, &plumbing, subset, &plain);
    for (li, layer) in layers.iter().enumerate() {
        let name = format!("{}_fn{}", alg.name, li);
        tables.push(SynthTable {
            name: name.clone(),
            algorithm: alg.name.clone(),
            kind: TableKind::DirectAction,
            match_width: 0,
            entries: 1,
            actions: vec![SynthAction {
                name: format!("{name}_body"),
                instrs: layer.clone(),
            }],
            pred: None,
            match_kind: lyra_lang::MatchKind::Exact,
            instrs: layer.clone(),
            depends_on: Vec::new(),
            stateful: false,
        });
    }

    // --- Dependencies between logical tables ------------------------------
    let owner: BTreeMap<InstrId, usize> = tables
        .iter()
        .enumerate()
        .flat_map(|(ti, t)| t.instrs.iter().map(move |&i| (i, ti)))
        .collect();
    #[allow(clippy::needless_range_loop)] // ti also indexes for mutation below
    for ti in 0..tables.len() {
        let mut dlist: Vec<usize> = Vec::new();
        for &i in &tables[ti].instrs.clone() {
            for p in real_deps(alg, deps, &plumbing, i) {
                if let Some(&src) = owner.get(&p) {
                    if src != ti && !dlist.contains(&src) {
                        dlist.push(src);
                    }
                }
            }
        }
        tables[ti].depends_on = dlist;
    }
    crate::util::add_storage_hazards(alg, &plumbing, &mut tables);

    // --- Bus usage ---------------------------------------------------------
    let mut bus_vars = std::collections::BTreeSet::new();
    let mut bus_instrs = Vec::new();
    for &i in subset {
        let instr = alg.instr(i);
        let mut touches = false;
        let mut visit = |o: &Operand| {
            if let Operand::Value(v) = o {
                let info = alg.value(*v);
                if info.class == StorageClass::Local && !info.base.starts_with('%') {
                    bus_vars.insert(info.base.clone());
                    touches = true;
                }
            }
        };
        for o in instr.op.reads() {
            visit(&o);
        }
        if let Some(d) = instr.dst {
            visit(&Operand::Value(d));
        }
        if touches {
            bus_instrs.push(i);
        }
    }

    let mut group = TableGroup {
        tables,
        registers,
        critical_path: 0,
    };
    group.fuse_cycles();
    group.sort_topological();
    group.compute_critical_path();
    (
        group,
        NplExtras {
            bus_vars: bus_vars.into_iter().collect(),
            bus_instrs,
        },
    )
}

/// Partition instructions into dependency layers (instructions in one layer
/// are mutually independent), tracing dependencies through plumbing.
fn layer_instrs(
    alg: &IrAlgorithm,
    deps: &DepGraph,
    plumbing: &std::collections::BTreeSet<InstrId>,
    subset: &[InstrId],
    instrs: &[InstrId],
) -> Vec<Vec<InstrId>> {
    // Rank EVERY subset instruction, not just the plain ones: an extern
    // lookup sits strictly between the instructions computing its key and
    // the instructions consuming its result, so a key producer and a
    // result consumer must never share a function layer. (Ranking only
    // within `instrs` collapsed that distance to zero, grouping both into
    // one function table — a genuine cycle with the logical table, which
    // `fuse_cycles` then "resolved" by pushing the key producer into
    // `fields_assign`, *after* `key_construct` read the stale key. The
    // differential oracle caught the stale read.)
    let mut rank_of: BTreeMap<InstrId, usize> = BTreeMap::new();
    for &i in subset {
        if plumbing.contains(&i) {
            continue;
        }
        let mut rank = 0usize;
        for p in real_deps(alg, deps, plumbing, i) {
            if let Some(&pr) = rank_of.get(&p) {
                rank = rank.max(pr + 1);
            }
        }
        rank_of.insert(i, rank);
    }
    let mut layers: Vec<Vec<InstrId>> = Vec::new();
    for &i in instrs {
        let rank = rank_of.get(&i).copied().unwrap_or(0);
        while layers.len() <= rank {
            layers.push(Vec::new());
        }
        layers[rank].push(i);
    }
    layers.retain(|l| !l.is_empty());
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::{dependency_graph, frontend};

    fn synth(src: &str) -> (TableGroup, NplExtras) {
        let ir = frontend(src).unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        synthesize_npl(&ir, alg, &deps, &subset)
    }

    #[test]
    fn figure2_multi_lookup_merges_into_one_table() {
        // P4 needs two tables (src + dst IP filters); NPL uses one logical
        // table with two lookups.
        let src = r#"
            pipeline[P]{int_filter};
            algorithm int_filter {
                extern list<bit[32] ip>[1024] check_ip;
                if (ipv4.src_ip in check_ip) { int_enable = 1; }
                if (ipv4.dst_ip in check_ip) { int_enable = 1; }
            }
        "#;
        let (group, _) = synth(src);
        let logical: Vec<&SynthTable> = group
            .tables
            .iter()
            .filter(|t| matches!(t.kind, TableKind::NplLogical { .. }))
            .collect();
        assert_eq!(logical.len(), 1);
        match &logical[0].kind {
            TableKind::NplLogical { lookups, .. } => assert_eq!(*lookups, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn npl_uses_fewer_tables_than_p4() {
        // The same flow filter through both synthesizers: NPL merges the
        // two extern reads, P4 cannot.
        let src = r#"
            pipeline[P]{f};
            algorithm f {
                extern list<bit[32] ip>[1024] check_ip;
                if (ipv4.src_ip in check_ip) { a = 1; }
                if (ipv4.dst_ip in check_ip) { b = 1; }
            }
        "#;
        let ir = frontend(src).unwrap();
        let alg = &ir.algorithms[0];
        let deps = dependency_graph(alg);
        let subset: Vec<InstrId> = alg.instr_ids().collect();
        let (npl, _) = synthesize_npl(&ir, alg, &deps, &subset);
        let (p4, _) =
            crate::p4::synthesize_p4(&ir, alg, &deps, &subset, &crate::p4::P4Options::default());
        assert!(
            npl.table_count() < p4.table_count(),
            "npl {} vs p4 {}",
            npl.table_count(),
            p4.table_count()
        );
    }

    #[test]
    fn scalar_global_becomes_logical_table() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                global bit[32] seq;
                seq[0] = seq[0] + 1;
            }
        "#;
        let (group, _) = synth(src);
        // Scalar global → logical table, not a register.
        assert_eq!(group.registers, 0);
        assert!(group
            .tables
            .iter()
            .any(|t| matches!(&t.kind, TableKind::Register { global } if global == "seq")));
    }

    #[test]
    fn array_global_is_register() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                global bit[32][256] counters;
                counters[i] = counters[i] + 1;
            }
        "#;
        let (group, _) = synth(src);
        assert_eq!(group.registers, 1);
    }

    #[test]
    fn bus_collects_locals_not_temps() {
        let src = "pipeline[P]{a}; algorithm a { x = y + 1; z = x & 3; }";
        let (_, extras) = synth(src);
        assert!(extras.bus_vars.contains(&"x".to_string()));
        assert!(extras.bus_vars.contains(&"y".to_string()));
        assert!(extras.bus_vars.contains(&"z".to_string()));
        assert!(extras.bus_vars.iter().all(|v| !v.starts_with('%')));
    }

    #[test]
    fn lookup_key_producer_precedes_logical_table() {
        // Regression: the hash function computing a lookup key must come
        // before the logical table that consumes it — the emitters execute
        // tables in group order, and the oracle caught the lookup reading
        // a stale (zero) key when the extern table sorted first.
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[64] t;
                h = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
                if (h in t) { ipv4.dstAddr = t[h]; }
            }
        "#;
        let (group, _) = synth(src);
        let fn_pos = group
            .tables
            .iter()
            .position(|t| matches!(t.kind, TableKind::DirectAction))
            .expect("hash function table");
        let tbl_pos = group
            .tables
            .iter()
            .position(|t| matches!(t.kind, TableKind::NplLogical { .. }))
            .expect("logical table");
        assert!(
            fn_pos < tbl_pos,
            "key producer must precede its consumer: {:#?}",
            group.tables
        );
        // depends_on indices were remapped along with the reorder.
        assert!(group.tables[tbl_pos].depends_on.contains(&fn_pos));
    }

    #[test]
    fn guard_reading_old_version_precedes_lookup_rewrite() {
        // Regression: `v1 = v0 + 1` is guarded by the *pre-lookup* v4, and
        // the lookup then rewrites v4's storage. Def-use edges alone miss
        // this anti-dependence (the comparison is plumbing, so the WAR edge
        // dissolves), and the oracle caught the function reading the
        // looked-up v4 in its guard. The storage-hazard pass must order the
        // function before the logical table.
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[64] t;
                if (v4 > 237) { v1 = v0 + 1; }
                if (v4 in t) { v4 = t[v4]; }
            }
        "#;
        let (group, _) = synth(src);
        let fn_pos = group
            .tables
            .iter()
            .position(|t| matches!(t.kind, TableKind::DirectAction))
            .expect("guarded function table");
        let tbl_pos = group
            .tables
            .iter()
            .position(|t| matches!(t.kind, TableKind::NplLogical { .. }))
            .expect("logical table");
        assert!(
            fn_pos < tbl_pos,
            "anti-dependent function must precede the lookup that rewrites \
             its guard operand: {:#?}",
            group.tables
        );
        assert!(group.tables[tbl_pos].depends_on.contains(&fn_pos));
    }

    #[test]
    fn key_producer_not_layered_with_lookup_consumer() {
        // Regression: `v2 = v1 + 1` feeds the lookup key and the final xor
        // consumes the lookup result. Ranking layers only among plain
        // instructions put both in one function layer — a genuine cycle
        // with the logical table, which fuse_cycles resolved by pushing the
        // key producer into fields_assign *after* key_construct read the
        // stale key. Ranking across the whole subset keeps them apart.
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[64] t;
                if (v3 > 46) { v2 = v1 + 1; }
                if (v2 in t) { v1 = t[v2]; }
                ipv4.dstAddr = v1 ^ ipv4.dstAddr;
            }
        "#;
        let (group, _) = synth(src);
        let logical = group
            .tables
            .iter()
            .find(|t| matches!(t.kind, TableKind::NplLogical { .. }))
            .expect("logical table");
        // The logical table carries only its own member/lookup ops — no
        // fused-in computation.
        assert_eq!(logical.instrs.len(), 2, "{:#?}", group.tables);
        let fns = group
            .tables
            .iter()
            .filter(|t| matches!(t.kind, TableKind::DirectAction))
            .count();
        assert_eq!(fns, 2, "producer and consumer layers: {:#?}", group.tables);
    }

    #[test]
    fn layers_respect_dependencies() {
        let src = "pipeline[P]{a}; algorithm a { x = u + 1; y = x + 1; z = u + 2; }";
        let (group, _) = synth(src);
        // Two layers: {x, z} then {y} → critical path 2.
        assert_eq!(group.critical_path, 2, "{group:#?}");
    }
}
