#![warn(missing_docs)]
//! # lyra-chips — programmable switching ASIC resource models
//!
//! Describes the heterogeneous ASICs Lyra compiles to (§5.4, Appendix A):
//! the reference RMT architecture, Intel/Barefoot Tofino variants (32Q/64Q),
//! Broadcom Trident-4 (NPL), Cisco Silicon One, and the fixed-function
//! Tomahawk. Each [`ChipModel`] captures the resources the paper's SMT
//! encoding constrains:
//!
//! * match-action **stages** and the per-stage table budget;
//! * **SRAM/TCAM memory blocks** with word-packing math (eqs. 11–12);
//! * **PHV** word classes and the dynamic-programming packing strategies of
//!   Appendix A.3 (eqs. 9–10);
//! * **parser TCAM** entries (eqs. 7–8);
//! * **stateful atoms** (Domino-style `Pairs` units, Appendix A.5);
//! * language/architecture quirks: NPL multi-lookup tables, the maximum
//!   comparison width ("ASIC-X cannot support the comparison of
//!   longer-than-44-bit variables", Figure 5), ingress/egress pipeline
//!   split.

pub mod models;
pub mod phv;

pub use models::*;
pub use phv::{packing_strategies, PackingStrategy};

/// The chip-specific language a model is programmed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetLang {
    /// P4_14.
    P414,
    /// P4_16.
    P416,
    /// Broadcom NPL.
    Npl,
}

impl TargetLang {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TargetLang::P414 => "P4_14",
            TargetLang::P416 => "P4_16",
            TargetLang::Npl => "NPL",
        }
    }
}

/// A class of memory blocks within a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBlock {
    /// Number of blocks per stage.
    pub blocks: u64,
    /// Entries per block (`h` in eq. 11).
    pub entries: u64,
    /// Bit width per entry (`w` in eq. 11).
    pub width: u64,
}

impl MemBlock {
    /// Minimum blocks needed to hold `entries` rows of `width` bits, *with*
    /// the RMT word-packing trick (eq. 11): pack blocks horizontally so rows
    /// share block words.
    pub fn blocks_needed_packed(&self, entries: u64, width: u64) -> u64 {
        if entries == 0 || width == 0 {
            return 0;
        }
        let rows = entries.div_ceil(self.entries);
        (rows * width).div_ceil(self.width)
    }

    /// Minimum blocks without word-packing (eq. 12).
    pub fn blocks_needed_unpacked(&self, entries: u64, width: u64) -> u64 {
        if entries == 0 || width == 0 {
            return 0;
        }
        entries.div_ceil(self.entries) * width.div_ceil(self.width)
    }
}

/// One PHV word class: `count` words of `width` bits (Appendix A.3 — RMT has
/// 64×8b, 96×16b, 64×32b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhvClass {
    /// Word width in bits.
    pub width: u32,
    /// Number of words available.
    pub count: u32,
}

/// A programmable switching ASIC resource model.
///
/// The fields mirror the constraints of §5.4 and Appendix A. Models are
/// plain data — the SMT encoding in `lyra-synth` reads them; nothing here is
/// behavioral.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipModel {
    /// Model name (`tofino-32q`, `trident4`, …).
    pub name: String,
    /// Language the chip is programmed in.
    pub lang: TargetLang,
    /// False for fixed-function chips (Tomahawk): no Lyra code can deploy.
    pub programmable: bool,
    /// Match-action stages per pipeline (ingress and egress each get this
    /// many in the RMT model).
    pub stages: u32,
    /// Maximum tables per stage (RMT: 8, per Jose et al.).
    pub max_tables_per_stage: u32,
    /// SRAM block description.
    pub sram: MemBlock,
    /// TCAM block description.
    pub tcam: MemBlock,
    /// PHV word classes.
    pub phv: Vec<PhvClass>,
    /// Parser TCAM entries (RMT: 256).
    pub parser_tcam_entries: u32,
    /// Stateful atoms per stage (Appendix A.5).
    pub atoms_per_stage: u32,
    /// Maximum actions per stage.
    pub max_actions_per_stage: u32,
    /// Widest single comparison the ALUs support (Figure 5(a): some ASICs
    /// cap this below header-field widths, forcing comparison splitting).
    pub max_compare_width: u32,
    /// NPL-style multiple lookups into one logical table (§5.3, Figure 2).
    pub supports_multi_lookup: bool,
    /// Word-packing supported by the memory subsystem (Appendix A.4).
    pub word_packing: bool,
    /// Identical forwarding pipelines on the chip (§8: Tofino 64Q has 4).
    pub pipeline_count: u32,
    /// Native range-match support in the TCAM (Appendix D: chips without it
    /// get range rules expanded into multiple ternary rules).
    pub supports_range_match: bool,
    /// Expansion factor applied when a range rule must be converted to
    /// ternary rules.
    pub range_expansion: u64,
}

impl ChipModel {
    /// Total SRAM blocks across all stages.
    pub fn total_sram_blocks(&self) -> u64 {
        self.sram.blocks * self.stages as u64
    }

    /// Minimum memory blocks for a table of `entries`×`width` on this chip,
    /// honoring its word-packing capability.
    pub fn table_blocks(&self, entries: u64, width: u64) -> u64 {
        if self.word_packing {
            self.sram.blocks_needed_packed(entries, width)
        } else {
            self.sram.blocks_needed_unpacked(entries, width)
        }
    }

    /// Minimum TCAM blocks for a non-exact table of `entries`×`width`,
    /// after range expansion when the chip lacks native range matching.
    pub fn tcam_blocks(&self, entries: u64, width: u64, is_range: bool) -> u64 {
        let entries = if is_range && !self.supports_range_match {
            entries.saturating_mul(self.range_expansion.max(1))
        } else {
            entries
        };
        // TCAMs do not word-pack across rows.
        self.tcam.blocks_needed_unpacked(entries, width)
    }

    /// Total TCAM blocks across all stages.
    pub fn total_tcam_blocks(&self) -> u64 {
        self.tcam.blocks * self.stages as u64
    }

    /// Rough upper bound on exact-match entries of `width` bits the whole
    /// chip can hold (used for capacity sanity checks like the paper's
    /// "Both Tofino and Trident-4 ASICs can hold about three million entries
    /// at most").
    pub fn max_entries(&self, width: u64) -> u64 {
        if width == 0 {
            return 0;
        }
        let per_block_rows = self.sram.entries;
        let words_per_row = width.div_ceil(self.sram.width);
        self.total_sram_blocks() / words_per_row.max(1) * per_block_rows
    }

    /// Does a comparison of `width` bits need splitting on this chip
    /// (Figure 5(a))?
    pub fn compare_needs_split(&self, width: u32) -> bool {
        width > self.max_compare_width
    }
}

/// Resource usage summary of a synthesized per-switch program — what
/// Figure 9 reports per program (tables, actions, registers) plus memory
/// accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Number of match-action (or logical) tables.
    pub tables: u64,
    /// Number of actions.
    pub actions: u64,
    /// Number of stateful registers.
    pub registers: u64,
    /// SRAM blocks consumed.
    pub sram_blocks: u64,
    /// Stages used.
    pub stages: u64,
    /// Parser TCAM entries used.
    pub parser_entries: u64,
    /// Longest table-dependency chain (NPL's "longest code path").
    pub longest_code_path: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::rmt_reference;

    #[test]
    fn word_packing_math_matches_paper_example() {
        // Appendix A.4: a 48-bit MAC in 80-bit-wide 1K blocks — one entry per
        // row unpacked; packing two blocks (160b) fits three per row.
        let blk = MemBlock {
            blocks: 106,
            entries: 1024,
            width: 80,
        };
        // 1024 entries × 48b: packed = ceil(1024/1024)*48/80 → ceil(48/80)=1.
        assert_eq!(blk.blocks_needed_packed(1024, 48), 1);
        // 3072 entries × 48b packed: rows=3, 3*48=144 → ceil(144/80)=2 blocks.
        assert_eq!(blk.blocks_needed_packed(3072, 48), 2);
        // Unpacked: 3 row-groups × 1 word = 3 blocks.
        assert_eq!(blk.blocks_needed_unpacked(3072, 48), 3);
    }

    #[test]
    fn zero_sized_tables_take_no_blocks() {
        let blk = MemBlock {
            blocks: 10,
            entries: 1024,
            width: 80,
        };
        assert_eq!(blk.blocks_needed_packed(0, 48), 0);
        assert_eq!(blk.blocks_needed_unpacked(1024, 0), 0);
    }

    #[test]
    fn compare_split_threshold() {
        let rmt = rmt_reference();
        assert!(!rmt.compare_needs_split(32));
        assert!(rmt.compare_needs_split(48)); // the Figure 5 MAC example
    }

    #[test]
    fn capacity_is_millions_of_entries() {
        // §7.2: "Both Tofino and Trident-4 ASICs can hold about three
        // million entries at most" — our models must be in that regime for
        // 64-bit-wide entries.
        for chip in [crate::models::tofino_32q(), crate::models::trident4()] {
            let cap = chip.max_entries(64);
            assert!(
                (2_000_000..=6_000_000).contains(&cap),
                "{} capacity {cap} outside the paper's regime",
                chip.name
            );
        }
    }
}
