//! PHV packing strategies (Appendix A.3, eqs. 9–10).
//!
//! A field of `l` bits can be stored across a combination of PHV words —
//! e.g. a 48-bit MAC address fits in six 8-bit words, or three 16-bit words,
//! or one 32-bit plus one 16-bit word, and so on. "Given a field `f` with
//! length `l_f`, we can calculate all packing strategies `C_f` by dynamic
//! programming." Exactly one strategy is chosen per field in the SMT
//! encoding; this module enumerates the candidates.

use crate::PhvClass;

/// One way to pack a field: `counts[i]` words of class `i`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackingStrategy {
    /// Word counts, parallel to the chip's PHV class list.
    pub counts: Vec<u32>,
}

impl PackingStrategy {
    /// Total bits this strategy provides.
    pub fn capacity(&self, classes: &[PhvClass]) -> u32 {
        self.counts
            .iter()
            .zip(classes)
            .map(|(c, k)| c * k.width)
            .sum()
    }

    /// Total words consumed.
    pub fn words(&self) -> u32 {
        self.counts.iter().sum()
    }
}

/// Enumerate all *minimal* packing strategies for a field of `len` bits over
/// the given word classes: combinations whose capacity is at least `len`
/// and where removing any single word drops below `len` (non-minimal
/// strategies are dominated and never chosen by the solver anyway).
///
/// Dynamic programming over word classes; the strategy list is deduplicated
/// and deterministic.
pub fn packing_strategies(len: u32, classes: &[PhvClass]) -> Vec<PackingStrategy> {
    if len == 0 || classes.is_empty() {
        return Vec::new();
    }
    // Upper bound per class: enough words of that class alone to hold the
    // field (capped by availability).
    let mut out = Vec::new();
    let mut counts = vec![0u32; classes.len()];
    enumerate(len, classes, 0, &mut counts, &mut out);
    // Keep minimal strategies only.
    out.retain(|s| {
        let cap = s.capacity(classes);
        debug_assert!(cap >= len);
        // Minimal: removing one word of any used class drops below len.
        s.counts
            .iter()
            .enumerate()
            .all(|(i, &c)| c == 0 || cap - classes[i].width < len)
    });
    out.sort_by_key(|s| (s.words(), s.counts.clone()));
    out.dedup();
    out
}

fn enumerate(
    len: u32,
    classes: &[PhvClass],
    idx: usize,
    counts: &mut Vec<u32>,
    out: &mut Vec<PackingStrategy>,
) {
    if idx == classes.len() {
        let cap: u32 = counts.iter().zip(classes).map(|(c, k)| c * k.width).sum();
        if cap >= len {
            out.push(PackingStrategy {
                counts: counts.clone(),
            });
        }
        return;
    }
    let class = &classes[idx];
    let max_useful = len.div_ceil(class.width).min(class.count);
    for c in 0..=max_useful {
        counts[idx] = c;
        enumerate(len, classes, idx + 1, counts, out);
    }
    counts[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::rmt_reference;

    fn rmt_classes() -> Vec<PhvClass> {
        rmt_reference().phv
    }

    #[test]
    fn mac_address_strategies_match_paper() {
        // Appendix A.3: a 48-bit MAC can use six 8b words, three 16b words,
        // one 32b + one 16b, etc.
        let strategies = packing_strategies(48, &rmt_classes());
        let has = |a: u32, b: u32, c: u32| strategies.iter().any(|s| s.counts == vec![a, b, c]);
        assert!(has(6, 0, 0), "six 8-bit words");
        assert!(has(0, 3, 0), "three 16-bit words");
        assert!(has(0, 1, 1), "one 16-bit + one 32-bit word");
        assert!(has(2, 0, 1), "two 8-bit + one 32-bit word");
    }

    #[test]
    fn all_strategies_fit_and_are_minimal() {
        for len in [1u32, 8, 9, 16, 24, 32, 48, 64, 128] {
            let classes = rmt_classes();
            let strategies = packing_strategies(len, &classes);
            assert!(!strategies.is_empty(), "no strategy for {len}-bit field");
            for s in &strategies {
                let cap = s.capacity(&classes);
                assert!(cap >= len);
                for (i, &c) in s.counts.iter().enumerate() {
                    if c > 0 {
                        assert!(
                            cap - classes[i].width < len,
                            "{len}-bit: strategy {s:?} not minimal"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn one_bit_field_uses_single_smallest_word() {
        let strategies = packing_strategies(1, &rmt_classes());
        assert!(strategies.iter().any(|s| s.counts == vec![1, 0, 0]));
        // All minimal strategies for 1 bit use exactly one word.
        assert!(strategies.iter().all(|s| s.words() == 1));
    }

    #[test]
    fn zero_length_has_no_strategies() {
        assert!(packing_strategies(0, &rmt_classes()).is_empty());
    }

    #[test]
    fn respects_word_availability() {
        // Only two 8-bit words exist: a 32-bit field cannot be packed from
        // 8-bit words alone.
        let classes = vec![PhvClass { width: 8, count: 2 }];
        assert!(packing_strategies(32, &classes).is_empty());
        let classes = vec![PhvClass { width: 8, count: 4 }];
        let s = packing_strategies(32, &classes);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].counts, vec![4]);
    }
}
