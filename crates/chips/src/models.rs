//! Predefined ASIC models.
//!
//! Numbers follow the paper where it gives them (RMT reference from
//! Bosshart et al. and Jose et al.: 32 stages, 106 SRAM blocks of 1K×80b,
//! 16 TCAM blocks of 2K×40b, PHV 64×8b + 96×16b + 64×32b, 256 parser TCAM
//! entries, 8 tables/stage; "Tofino-064Q and Tofino-032Q have 12 and 24
//! match-action units"; "Both Tofino and Trident-4 ASICs can hold about
//! three million entries at most"; "the Tofino 64Q model has 4 pipelines").
//! Where vendors publish no numbers, values are chosen to sit in the same
//! regime — placement *behavior*, not absolute capacity, is what the
//! compiler exercises.

use crate::{ChipModel, MemBlock, PhvClass, TargetLang};

/// The published RMT reference architecture (the running example of §5.4
/// and Appendix A).
pub fn rmt_reference() -> ChipModel {
    ChipModel {
        name: "rmt".into(),
        lang: TargetLang::P414,
        programmable: true,
        stages: 32,
        max_tables_per_stage: 8,
        sram: MemBlock {
            blocks: 106,
            entries: 1024,
            width: 80,
        },
        tcam: MemBlock {
            blocks: 16,
            entries: 2048,
            width: 40,
        },
        phv: vec![
            PhvClass {
                width: 8,
                count: 64,
            },
            PhvClass {
                width: 16,
                count: 96,
            },
            PhvClass {
                width: 32,
                count: 64,
            },
        ],
        parser_tcam_entries: 256,
        atoms_per_stage: 4,
        max_actions_per_stage: 32,
        max_compare_width: 44,
        supports_multi_lookup: false,
        word_packing: true,
        pipeline_count: 1,
        supports_range_match: false,
        range_expansion: 4,
    }
}

/// Barefoot Tofino, 32Q model: 24 match-action units.
pub fn tofino_32q() -> ChipModel {
    ChipModel {
        name: "tofino-32q".into(),
        lang: TargetLang::P414,
        programmable: true,
        stages: 24,
        max_tables_per_stage: 8,
        sram: MemBlock {
            blocks: 106,
            entries: 1024,
            width: 80,
        },
        tcam: MemBlock {
            blocks: 24,
            entries: 2048,
            width: 44,
        },
        phv: vec![
            PhvClass {
                width: 8,
                count: 64,
            },
            PhvClass {
                width: 16,
                count: 96,
            },
            PhvClass {
                width: 32,
                count: 64,
            },
        ],
        parser_tcam_entries: 256,
        atoms_per_stage: 4,
        max_actions_per_stage: 32,
        max_compare_width: 44,
        supports_multi_lookup: false,
        word_packing: true,
        pipeline_count: 2,
        supports_range_match: true,
        range_expansion: 1,
    }
}

/// Barefoot Tofino, 64Q model: 12 match-action units, 4 pipelines.
pub fn tofino_64q() -> ChipModel {
    ChipModel {
        name: "tofino-64q".into(),
        stages: 12,
        pipeline_count: 4,
        ..tofino_32q()
    }
}

/// Broadcom Trident-4 (NPL): logical tables with multi-lookup support, no
/// word-packing, a flatter memory layout.
pub fn trident4() -> ChipModel {
    ChipModel {
        name: "trident4".into(),
        lang: TargetLang::Npl,
        programmable: true,
        stages: 16,
        max_tables_per_stage: 12,
        sram: MemBlock {
            blocks: 96,
            entries: 2048,
            width: 128,
        },
        tcam: MemBlock {
            blocks: 16,
            entries: 1024,
            width: 80,
        },
        phv: vec![
            PhvClass {
                width: 16,
                count: 128,
            },
            PhvClass {
                width: 32,
                count: 96,
            },
        ],
        parser_tcam_entries: 192,
        atoms_per_stage: 8,
        max_actions_per_stage: 48,
        max_compare_width: 64,
        supports_multi_lookup: true,
        word_packing: false,
        pipeline_count: 1,
        supports_range_match: false,
        range_expansion: 4,
    }
}

/// Cisco Silicon One (P4_16).
pub fn silicon_one() -> ChipModel {
    ChipModel {
        name: "silicon-one".into(),
        lang: TargetLang::P416,
        programmable: true,
        stages: 20,
        max_tables_per_stage: 8,
        sram: MemBlock {
            blocks: 88,
            entries: 1024,
            width: 96,
        },
        tcam: MemBlock {
            blocks: 20,
            entries: 2048,
            width: 48,
        },
        phv: vec![
            PhvClass {
                width: 8,
                count: 48,
            },
            PhvClass {
                width: 16,
                count: 96,
            },
            PhvClass {
                width: 32,
                count: 72,
            },
        ],
        parser_tcam_entries: 224,
        atoms_per_stage: 4,
        max_actions_per_stage: 32,
        // The paper's "ASIC-X" cannot compare longer-than-44-bit variables
        // (Figure 5(a)); we give Silicon One that constraint so the
        // comparison-splitting path is exercised on a P4_16 target.
        max_compare_width: 44,
        supports_multi_lookup: false,
        word_packing: true,
        pipeline_count: 2,
        supports_range_match: false,
        range_expansion: 4,
    }
}

/// Broadcom Tomahawk: high-throughput, fixed-function — Lyra cannot place
/// code on it (it appears in topologies as a transit-only core switch).
pub fn tomahawk() -> ChipModel {
    ChipModel {
        name: "tomahawk".into(),
        lang: TargetLang::Npl,
        programmable: false,
        stages: 0,
        max_tables_per_stage: 0,
        sram: MemBlock {
            blocks: 0,
            entries: 0,
            width: 1,
        },
        tcam: MemBlock {
            blocks: 0,
            entries: 0,
            width: 1,
        },
        phv: Vec::new(),
        parser_tcam_entries: 0,
        atoms_per_stage: 0,
        max_actions_per_stage: 0,
        max_compare_width: 0,
        supports_multi_lookup: false,
        word_packing: false,
        pipeline_count: 1,
        supports_range_match: false,
        range_expansion: 1,
    }
}

/// Look up a model by the name used in `lyra-topo` switch descriptions.
pub fn by_name(name: &str) -> Option<ChipModel> {
    match name {
        "rmt" => Some(rmt_reference()),
        "tofino-32q" => Some(tofino_32q()),
        "tofino-64q" => Some(tofino_64q()),
        "trident4" => Some(trident4()),
        "silicon-one" => Some(silicon_one()),
        "tomahawk" => Some(tomahawk()),
        _ => None,
    }
}

/// All programmable models, for sweep-style tests.
pub fn all_programmable() -> Vec<ChipModel> {
    vec![
        rmt_reference(),
        tofino_32q(),
        tofino_64q(),
        trident4(),
        silicon_one(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("tofino-32q").unwrap().stages, 24);
        assert_eq!(by_name("tofino-64q").unwrap().stages, 12);
        assert!(by_name("banana").is_none());
    }

    #[test]
    fn paper_model_facts() {
        // "Tofino-064Q and Tofino-032Q have 12 and 24 match-action units".
        assert_eq!(tofino_64q().stages, 12);
        assert_eq!(tofino_32q().stages, 24);
        // "the Tofino 64Q model has 4 pipelines".
        assert_eq!(tofino_64q().pipeline_count, 4);
        // RMT reference (Appendix A): stages, blocks, PHV, parser TCAM.
        let rmt = rmt_reference();
        assert_eq!(rmt.stages, 32);
        assert_eq!(rmt.sram.blocks, 106);
        assert_eq!(rmt.tcam.blocks, 16);
        assert_eq!(rmt.parser_tcam_entries, 256);
        assert_eq!(rmt.max_tables_per_stage, 8);
        let phv_bits: u32 = rmt.phv.iter().map(|c| c.width * c.count).sum();
        assert_eq!(phv_bits, 4096); // "In total, the width of the PHV is 4Kb"
    }

    #[test]
    fn npl_differences() {
        let t4 = trident4();
        assert_eq!(t4.lang, TargetLang::Npl);
        assert!(t4.supports_multi_lookup);
        assert!(!tofino_32q().supports_multi_lookup);
    }

    #[test]
    fn tomahawk_not_programmable() {
        assert!(!tomahawk().programmable);
        assert!(tofino_32q().programmable);
    }
}
