//! `record_bench` — record solver-performance benchmark snapshots.
//!
//! Measures the Figure 10 scalability cases and the Figure 9 corpus under
//! the current solver (portfolio + learned-clause reduction + synthesis
//! cache) and writes machine-readable snapshots:
//!
//! * `BENCH_fig10.json` — per-case median wall time / conflicts /
//!   decisions at k ∈ {4, 8, 16, 32} (plus a best-effort k = 48 NetCache
//!   MULTI-SW row), a monolithic-vs-sequential-vs-portfolio-vs-cached
//!   comparison on the hardest case (LB MULTI-SW at k = 16) and a
//!   `rollout` section (p50 transactional prepare+commit latency applying
//!   a failover placement to the running k = 16 LB deployment);
//! * `BENCH_fig9.json` — per-program median compile time, conflicts, and
//!   synthesis-cache hit rate on a single-switch target.
//!
//! * `BENCH_pps.json` — data-plane throughput: seeded traffic replayed
//!   through the NetCache k = 8 MULTI-SW deployment on the reference
//!   interpreter versus the compiled batched engine (single worker and all
//!   cores), plus two lossy-channel rollout-under-traffic scenarios with
//!   their packet-loss and mixed-epoch-exposure counts.
//!
//! `--smoke` re-measures the k = 4 cases and the rollout p50 once each and
//! fails (exit 1) if any is more than 3× slower than the committed
//! `BENCH_fig10.json` baseline — CI's cheap performance-regression
//! tripwire. Two datacenter-scale tripwires ride along: NetCache MULTI-SW
//! must stay within 2× of its snapshot at k = 16 and under one second
//! absolute at k = 32. The data-plane tripwire also runs: the compiled
//! engine must beat the interpreter by a fixed floor and a lossy rollout
//! under traffic must show zero mixed-epoch exposure. `--pps-smoke` runs
//! only that data-plane tripwire.

use std::time::{Duration, Instant};

use lyra::{
    replay_compiled, replay_interpreted, replay_under_rollout, run_selfheal, ChaosSchedule,
    CompileRequest, Compiler, CrashPlan, CrashPoint, DriftOp, HealthConfig, LossyChannel,
    MemIntentStore, ReliableChannel, ReplayConfig, ReplayReport, RolloutConfig, Runtime,
    SelfHealConfig, SolveProfile, SolverStrategy, SynthCache, Target,
};
use lyra_apps::{figure9_corpus, programs};
use lyra_diag::json::{parse, Object, Value};
use lyra_topo::{fat_tree_pod, figure1_network, FaultSet, Layer, Topology};

/// Timed samples per measurement (median reported).
const SAMPLES: usize = 5;
/// Pod sizes recorded in the fig10 snapshot.
const KS: [usize; 4] = [4, 8, 16, 32];
/// Smoke mode: allowed slowdown over the committed baseline.
const SMOKE_FACTOR: f64 = 3.0;
/// Smoke mode: absolute grace added to the bound, so sub-millisecond
/// baselines don't trip on scheduler noise.
const SMOKE_GRACE_MS: f64 = 500.0;
/// Smoke mode: tighter slowdown bound for the datacenter-scale MULTI-SW
/// tripwire — the accelerated solve must stay within 2x of its snapshot.
const SMOKE_SCALE_FACTOR: f64 = 2.0;
/// Smoke mode: grace for the datacenter-scale tripwire (the accelerated
/// k = 16 row is tens of milliseconds, so noise needs less headroom).
const SMOKE_SCALE_GRACE_MS: f64 = 100.0;
/// Smoke mode: hard wall-time budget for NetCache MULTI-SW at k = 32.
const SMOKE_K32_BUDGET_MS: f64 = 1000.0;

struct Case {
    name: &'static str,
    program: String,
    multi: bool,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "LB(MULTI-SW)",
            program: programs::load_balancer(1_000_000),
            multi: true,
        },
        Case {
            name: "NetCache(PER-SW)",
            program: programs::netcache(),
            multi: false,
        },
        Case {
            name: "NetCache(MULTI-SW)",
            program: programs::netcache(),
            multi: true,
        },
    ]
}

fn alg_of(program: &str) -> &'static str {
    if program.contains("algorithm loadbalancer") {
        "loadbalancer"
    } else {
        "netcache"
    }
}

fn scopes_for(k: usize, program: &str, multi: bool) -> String {
    let alg = alg_of(program);
    if multi {
        let aggs: Vec<String> = (1..=k / 2).map(|i| format!("Agg{i}")).collect();
        let tors: Vec<String> = (1..=k / 2).map(|i| format!("ToR{i}")).collect();
        format!(
            "{alg}: [ ToR*,Agg* | MULTI-SW | ({}->{}) ]",
            aggs.join(","),
            tors.join(",")
        )
    } else {
        format!("{alg}: [ ToR*,Agg* | PER-SW | - ]")
    }
}

fn pod(k: usize) -> Topology {
    fat_tree_pod(k, "tofino-32q", "trident4")
}

struct Measured {
    median: Duration,
    conflicts: u64,
    decisions: u64,
}

/// Compile `samples` times under `compiler`/`strategy`; return the median
/// wall time and the last run's solver counters.
fn measure(
    compiler: &Compiler,
    program: &str,
    scopes: &str,
    topo: &Topology,
    profile: SolveProfile,
    samples: usize,
) -> Measured {
    let mut times = Vec::with_capacity(samples);
    let mut conflicts = 0;
    let mut decisions = 0;
    for _ in 0..samples {
        let req =
            CompileRequest::new(program, scopes, topo.clone()).with_solve_profile(profile.clone());
        let t = Instant::now();
        let out = compiler.compile(&req).expect("benchmark workload compiles");
        times.push(t.elapsed());
        conflicts = out.solver.conflicts;
        decisions = out.solver.decisions;
    }
    times.sort();
    Measured {
        median: times[times.len() / 2],
        conflicts,
        decisions,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn record_fig10() -> Object {
    let mut cases_json: Vec<Value> = Vec::new();
    for case in cases() {
        for &k in &KS {
            let topo = pod(k);
            let scopes = scopes_for(k, &case.program, case.multi);
            let m = measure(
                &Compiler::new(),
                &case.program,
                &scopes,
                &topo,
                SolveProfile::default(),
                SAMPLES,
            );
            println!(
                "fig10 {:<20} k={k:<3} median {:>9.1?}  conflicts {:>6}  decisions {:>8}",
                case.name, m.median, m.conflicts, m.decisions
            );
            let mut o = Object::new();
            o.push("name", Value::str(case.name));
            o.push("k", Value::Number(k as f64));
            o.push("median_ms", Value::Number(ms(m.median)));
            o.push("conflicts", Value::Number(m.conflicts as f64));
            o.push("decisions", Value::Number(m.decisions as f64));
            cases_json.push(Value::Object(o));
        }
    }

    // Best-effort k = 48 row on the heaviest case (NetCache MULTI-SW) —
    // the largest fat-tree pod the paper targets. Recorded under a
    // deadline so a regression in the decomposition path can't hang the
    // snapshot; a degraded or failed solve skips the row with a note.
    {
        let nc = &cases()[2];
        let k = 48usize;
        let topo = pod(k);
        let scopes = scopes_for(k, &nc.program, nc.multi);
        let req = CompileRequest::new(&nc.program, &scopes, topo)
            .with_solve_profile(SolveProfile::deadline(Duration::from_secs(10)));
        let t = Instant::now();
        match Compiler::new().compile(&req) {
            Ok(out) if out.degraded.is_none() => {
                let elapsed = t.elapsed();
                println!(
                    "fig10 {:<20} k={k:<3} single {:>9.1?}  conflicts {:>6}  decisions {:>8}  (best-effort)",
                    nc.name, elapsed, out.solver.conflicts, out.solver.decisions
                );
                let mut o = Object::new();
                o.push("name", Value::str(nc.name));
                o.push("k", Value::Number(k as f64));
                o.push("median_ms", Value::Number(ms(elapsed)));
                o.push("conflicts", Value::Number(out.solver.conflicts as f64));
                o.push("decisions", Value::Number(out.solver.decisions as f64));
                o.push("best_effort", Value::Bool(true));
                cases_json.push(Value::Object(o));
            }
            Ok(_) => println!(
                "fig10 {} k={k}: degraded within deadline — row skipped",
                nc.name
            ),
            Err(e) => println!("fig10 {} k={k}: {e} — row skipped", nc.name),
        }
    }

    // Head-to-head on the hardest recorded case: LB MULTI-SW at k = 16.
    // Sequential (no cache) vs portfolio (no cache) vs portfolio with a
    // warm synthesis cache.
    let k = 16;
    let lb = &cases()[0];
    let topo = pod(k);
    let scopes = scopes_for(k, &lb.program, lb.multi);
    let seq = measure(
        &Compiler::new(),
        &lb.program,
        &scopes,
        &topo,
        SolveProfile::fast(),
        SAMPLES,
    );
    let par = measure(
        &Compiler::new(),
        &lb.program,
        &scopes,
        &topo,
        SolveProfile::default(),
        SAMPLES,
    );
    let cache = std::sync::Arc::new(SynthCache::new());
    let cached_compiler = Compiler::new().with_synth_cache(cache.clone());
    // One cold compile populates the cache; the measured samples are warm.
    let req = CompileRequest::new(&lb.program, &scopes, topo.clone())
        .with_solve_profile(SolveProfile::default());
    cached_compiler.compile(&req).expect("cold compile");
    let warm = measure(
        &cached_compiler,
        &lb.program,
        &scopes,
        &topo,
        SolveProfile::default(),
        SAMPLES,
    );
    // Monolithic reference (every acceleration off): how the same case
    // solves without symmetry breaking, decomposition, or warm start —
    // the denominator for the "curve bent" claim.
    let mono = measure(
        &Compiler::new(),
        &lb.program,
        &scopes,
        &topo,
        SolveProfile::thorough().with_strategy(SolverStrategy::Sequential),
        SAMPLES,
    );
    let hit_rate = cache.hits() as f64 / (cache.hits() + cache.misses()) as f64;
    println!(
        "fig10 comparison LB(MULTI-SW)@k16: monolithic {:?}  sequential {:?}  \
         portfolio {:?}  portfolio+cache(warm) {:?}  (cache hit rate {:.2})",
        mono.median, seq.median, par.median, warm.median, hit_rate
    );
    let mut cmp = Object::new();
    cmp.push("case", Value::str("LB(MULTI-SW)@k16"));
    cmp.push("monolithic_ms", Value::Number(ms(mono.median)));
    cmp.push("sequential_ms", Value::Number(ms(seq.median)));
    cmp.push("portfolio_ms", Value::Number(ms(par.median)));
    cmp.push("portfolio_cached_warm_ms", Value::Number(ms(warm.median)));
    cmp.push(
        "speedup_portfolio",
        Value::Number(ms(seq.median) / ms(par.median).max(1e-9)),
    );
    cmp.push(
        "speedup_portfolio_cached",
        Value::Number(ms(seq.median) / ms(warm.median).max(1e-9)),
    );
    cmp.push("cache_hit_rate", Value::Number(hit_rate));

    let mut root = Object::new();
    root.push("bench", Value::str("fig10"));
    root.push("samples", Value::Number(SAMPLES as f64));
    root.push("cases", Value::Array(cases_json));
    root.push("comparison", Value::Object(cmp));
    root.push("rollout", Value::Object(record_rollout()));
    root.push("recovery", Value::Object(record_recovery()));
    root.push("mttr", Value::Object(record_mttr()));
    root
}

/// Entries installed before each measured rollout, spread across keys.
const ROLLOUT_ENTRIES: u64 = 16;
/// Smoke mode: absolute bound for the rollout p50 when the committed
/// baseline predates the `rollout` section.
const SMOKE_ROLLOUT_ABS_MS: f64 = 250.0;

/// Median wall time of a full transactional rollout (prepare + commit
/// across every switch, reliable channel) applying the Agg1-failover
/// placement to a running k = 16 LB MULTI-SW deployment.
fn measure_rollout(samples: usize) -> Duration {
    let k = 16;
    let lb = &cases()[0];
    let topo = pod(k);
    let scopes = scopes_for(k, &lb.program, lb.multi);
    let compiler = Compiler::new();
    let req =
        CompileRequest::new(&lb.program, &scopes, topo).with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy k=16 compile");
    let mut faults = FaultSet::new();
    faults.add_switch("Agg1");
    let r = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("Agg1 failover recompile");

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut rt = Runtime::new(&healthy);
        for i in 0..ROLLOUT_ENTRIES {
            rt.install("conn_table", i * 7, 0x0a00_0000 + i)
                .expect("bench entry install");
        }
        rt.fail_switch("Agg1").expect("live failover");
        let config = RolloutConfig::default().with_scope_health(r.scope_health.clone());
        let t = Instant::now();
        let report = rt
            .apply_rollout(&r.output, &mut ReliableChannel::new(), &config)
            .expect("rollout starts");
        times.push(t.elapsed());
        assert!(report.committed, "reliable rollout must commit");
    }
    times.sort();
    times[times.len() / 2]
}

fn record_rollout() -> Object {
    let p50 = measure_rollout(SAMPLES);
    println!("rollout LB(MULTI-SW)@k16 failover: p50 commit {p50:?}");
    let mut o = Object::new();
    o.push("case", Value::str("LB(MULTI-SW)@k16 Agg1-failover"));
    o.push("entries", Value::Number(ROLLOUT_ENTRIES as f64));
    o.push("p50_commit_ms", Value::Number(ms(p50)));
    o.push("scale", Value::Array(record_rollout_scale()));
    o
}

/// Entry counts for the rollout wire-cost study, with the `conn_table`
/// size each needs so the per-path capacity constraint admits it.
const ROLLOUT_SCALES: [(usize, u64); 3] =
    [(1_000, 4_096), (100_000, 262_144), (1_000_000, 1 << 21)];
/// Modeled control-channel rate for the in-band commit-latency figure:
/// 1 Gbps, i.e. 125 bytes per microsecond.
const WIRE_BYTES_PER_MS: f64 = 125_000.0;
/// Modeled per-message overhead (serialization + RTT) for the same figure.
const WIRE_MSG_MS: f64 = 0.05;
/// Smoke mode: minimum snapshot/delta prepare-bytes ratio at the smallest
/// scale row — the O(delta) tripwire.
const SMOKE_DELTA_RATIO_FLOOR: f64 = 10.0;

/// One measured row of the wire-cost study.
struct ScaleRow {
    entries: usize,
    p50_wall_delta: Duration,
    p50_wall_snapshot: Duration,
    bytes_delta: u64,
    bytes_snapshot: u64,
    wire_ms_delta: f64,
    wire_ms_snapshot: f64,
}

/// Seeded xorshift64* entry generator (ascending unique keys), mirroring
/// the `tests/common` one so bench and test suites agree on workloads.
fn scale_entries(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut x = seed.max(1);
    let mut step = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut entries = Vec::with_capacity(n);
    let mut key = 0u64;
    for _ in 0..n {
        key += 1 + step() % 7;
        entries.push((key, step()));
    }
    entries
}

/// An Agg3 failover over `n` installed entries on the Figure 1 pod,
/// measured twice: delta prepares vs. snapshots forced. Wall clock covers
/// the whole transactional rollout (staging + prepare + commit); the
/// modeled wire figure isolates what the control channel actually ships
/// (prepare payload at 1 Gbps plus per-message overhead), which is the
/// number a real fleet's commit latency tracks.
fn measure_rollout_scale(n: usize, table_size: u64, samples: usize) -> ScaleRow {
    let program = format!(
        r#"
        pipeline[LB]{{loadbalancer}};
        algorithm loadbalancer {{
            extern dict<bit[32] h, bit[32] ip>[{table_size}] conn_table;
            if (flow_h in conn_table) {{
                ipv4.dstAddr = conn_table[flow_h];
            }} else {{
                copy_to_cpu();
            }}
        }}
    "#
    );
    let scopes = "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";
    let compiler = Compiler::new();
    let req = CompileRequest::new(&program, scopes, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("scaled LB compiles");
    let mut faults = FaultSet::new();
    faults.add_switch("Agg3");
    let failover = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("Agg3 failover recompile");
    let entries = scale_entries(n, 0x5ca1e + n as u64);

    let run = |force_snapshot: bool| -> (Duration, u64, u64) {
        let mut walls = Vec::with_capacity(samples);
        let mut bytes = 0u64;
        let mut msgs = 0u64;
        for _ in 0..samples {
            let mut rt = Runtime::new(&healthy);
            rt.install_many("conn_table", &entries)
                .expect("bulk install");
            rt.fail_switch("Agg3").expect("live failover");
            let config = RolloutConfig::default()
                .with_scope_health(failover.scope_health.clone())
                .with_force_snapshot(force_snapshot);
            let t = Instant::now();
            let report = rt
                .apply_rollout(&failover.output, &mut ReliableChannel::new(), &config)
                .expect("failover rollout starts");
            walls.push(t.elapsed());
            assert!(report.committed, "reliable scaled rollout must commit");
            bytes = report.prepare_bytes;
            msgs = report.messages_sent;
        }
        walls.sort();
        (walls[walls.len() / 2], bytes, msgs)
    };
    let (p50_wall_delta, bytes_delta, msgs_delta) = run(false);
    let (p50_wall_snapshot, bytes_snapshot, msgs_snapshot) = run(true);
    ScaleRow {
        entries: n,
        p50_wall_delta,
        p50_wall_snapshot,
        bytes_delta,
        bytes_snapshot,
        wire_ms_delta: bytes_delta as f64 / WIRE_BYTES_PER_MS + msgs_delta as f64 * WIRE_MSG_MS,
        wire_ms_snapshot: bytes_snapshot as f64 / WIRE_BYTES_PER_MS
            + msgs_snapshot as f64 * WIRE_MSG_MS,
    }
}

/// The rollout wire-cost study: p50 commit latency and prepare bytes at
/// 10³ / 10⁵ / 10⁶ installed entries, delta prepares vs. forced
/// snapshots. The 10⁶-entry row is the ROADMAP item-5 acceptance: the
/// delta path must beat snapshots by ≥10x on both prepare bytes and the
/// modeled in-band commit latency.
fn record_rollout_scale() -> Vec<Value> {
    let mut rows = Vec::new();
    for (n, table_size) in ROLLOUT_SCALES {
        // Million-entry samples are seconds each; the median over 3 is
        // stable because the work is deterministic.
        let samples = if n >= 1_000_000 { 3 } else { SAMPLES };
        let row = measure_rollout_scale(n, table_size, samples);
        println!(
            "rollout scale {n}: delta p50 {:?} / {}B wire, snapshot p50 {:?} / {}B wire",
            row.p50_wall_delta, row.bytes_delta, row.p50_wall_snapshot, row.bytes_snapshot
        );
        if n >= 1_000_000 {
            assert!(
                row.bytes_snapshot >= 10 * row.bytes_delta.max(1),
                "10^6-entry delta rollout no longer beats snapshots >=10x on prepare bytes"
            );
            assert!(
                row.wire_ms_snapshot >= 10.0 * row.wire_ms_delta.max(f64::EPSILON),
                "10^6-entry delta rollout no longer beats snapshots >=10x on wire latency"
            );
        }
        let mut o = Object::new();
        o.push("entries", Value::Number(row.entries as f64));
        o.push("p50_commit_ms_delta", Value::Number(ms(row.p50_wall_delta)));
        o.push(
            "p50_commit_ms_snapshot",
            Value::Number(ms(row.p50_wall_snapshot)),
        );
        o.push("prepare_bytes_delta", Value::Number(row.bytes_delta as f64));
        o.push(
            "prepare_bytes_snapshot",
            Value::Number(row.bytes_snapshot as f64),
        );
        o.push("wire_ms_delta_1gbps", Value::Number(row.wire_ms_delta));
        o.push(
            "wire_ms_snapshot_1gbps",
            Value::Number(row.wire_ms_snapshot),
        );
        rows.push(Value::Object(o));
    }
    rows
}

/// Smoke mode: absolute bound for the recovery p50 when the committed
/// baseline predates the `recovery` section.
const SMOKE_RECOVERY_ABS_MS: f64 = 250.0;

/// Median wall time of a controller restart recovery: the same k = 16
/// Agg1-failover rollout crashes right after the commit decision is
/// journaled (the most expensive recovery path — every switch must be
/// queried and the commit re-driven), and the restarted controller drives
/// it home from the intent log over a reliable channel.
fn measure_recovery(samples: usize) -> Duration {
    let k = 16;
    let lb = &cases()[0];
    let topo = pod(k);
    let scopes = scopes_for(k, &lb.program, lb.multi);
    let compiler = Compiler::new();
    let req =
        CompileRequest::new(&lb.program, &scopes, topo).with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy k=16 compile");
    let mut faults = FaultSet::new();
    faults.add_switch("Agg1");
    let r = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("Agg1 failover recompile");

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut rt = Runtime::new(&healthy);
        for i in 0..ROLLOUT_ENTRIES {
            rt.install("conn_table", i * 7, 0x0a00_0000 + i)
                .expect("bench entry install");
        }
        rt.fail_switch("Agg1").expect("live failover");
        let mut store = MemIntentStore::new();
        let crash_cfg = RolloutConfig::default()
            .with_scope_health(r.scope_health.clone())
            .with_crash(CrashPlan::at(CrashPoint::AfterCommitDecision));
        rt.apply_rollout_logged(
            &r.output,
            &mut ReliableChannel::new(),
            &crash_cfg,
            &mut store,
        )
        .expect_err("instrumented rollout must crash");
        let config = RolloutConfig::default().with_scope_health(r.scope_health.clone());
        let t = Instant::now();
        let rep = rt
            .recover(&r.output, &mut store, &mut ReliableChannel::new(), &config)
            .expect("recovery runs");
        times.push(t.elapsed());
        assert!(
            rep.committed,
            "journaled commit decision must be driven home"
        );
    }
    times.sort();
    times[times.len() / 2]
}

fn record_recovery() -> Object {
    let p50 = measure_recovery(SAMPLES);
    println!("recovery LB(MULTI-SW)@k16 crash@commit-decision: p50 recover {p50:?}");
    let mut o = Object::new();
    o.push(
        "case",
        Value::str("LB(MULTI-SW)@k16 Agg1-failover crash@commit-decision"),
    );
    o.push("entries", Value::Number(ROLLOUT_ENTRIES as f64));
    o.push("p50_recover_ms", Value::Number(ms(p50)));
    o
}

/// Smoke mode: absolute bound for the MTTR p50 when the committed
/// baseline predates the `mttr` section.
const SMOKE_MTTR_ABS_MS: f64 = 400.0;
/// Tick the MTTR bench kills its victim on.
const MTTR_KILL_TICK: u64 = 4;

/// Median wall time of one closed-loop remediation round — detection
/// confirmed to rollout committed and audited — when the health monitor
/// catches a seeded kill of Agg1 on the running k = 16 LB MULTI-SW
/// deployment. Also returns the virtual detect→healed tick count, which
/// is deterministic (the healer fires the round on the confirming tick).
fn measure_mttr(samples: usize) -> (Duration, u64) {
    let k = 16;
    let lb = &cases()[0];
    let topo = pod(k);
    let scopes = scopes_for(k, &lb.program, lb.multi);
    let compiler = Compiler::new();
    let req =
        CompileRequest::new(&lb.program, &scopes, topo).with_solve_profile(SolveProfile::fast());
    let entries: Vec<(String, u64, u64)> = (0..ROLLOUT_ENTRIES)
        .map(|i| ("conn_table".to_string(), i * 7, 0x0a00_0000 + i))
        .collect();
    let schedule = ChaosSchedule::new().kill(MTTR_KILL_TICK, Target::switch("Agg1"));
    let cfg = SelfHealConfig {
        health: HealthConfig::default(),
        ticks: 24,
        ..SelfHealConfig::default()
    };

    let mut times = Vec::with_capacity(samples);
    let mut mttr_ticks = 0;
    for _ in 0..samples {
        let outcome =
            run_selfheal(&compiler, &req, &entries, &schedule, &cfg).expect("mttr selfheal");
        assert!(outcome.converged, "mttr bench run did not converge");
        let round = outcome
            .remediations
            .iter()
            .find(|r| r.committed)
            .expect("kill must be remediated");
        assert!(round.audit_clean, "mttr remediation audited dirty");
        times.push(round.elapsed);
        mttr_ticks = round.mttr_ticks().expect("healed round has a tick span");
    }
    times.sort();
    (times[times.len() / 2], mttr_ticks)
}

fn record_mttr() -> Object {
    let (p50, ticks) = measure_mttr(SAMPLES);
    println!(
        "mttr  LB(MULTI-SW)@k16 kill@t{MTTR_KILL_TICK}: p50 detect→healed {p50:?} ({ticks} ticks)"
    );
    let mut o = Object::new();
    o.push("case", Value::str("LB(MULTI-SW)@k16 Agg1-kill closed loop"));
    o.push("entries", Value::Number(ROLLOUT_ENTRIES as f64));
    o.push("kill_tick", Value::Number(MTTR_KILL_TICK as f64));
    o.push("p50_heal_ms", Value::Number(ms(p50)));
    o.push("mttr_ticks", Value::Number(ticks as f64));
    o
}

/// Table sizes swept by `--audit-cost` (entries installed before the
/// audit; the numbers land in EXPERIMENTS.md).
const AUDIT_SIZES: [u64; 4] = [16, 64, 256, 1024];

/// Anti-entropy audit cost vs table size on the k = 16 LB deployment:
/// one clean pass (digest compare only) and one pass over a fleet with
/// seeded drift (digest mismatch forces the key-by-key diff + repairs).
fn audit_cost() {
    let k = 16;
    let lb = &cases()[0];
    let topo = pod(k);
    let scopes = scopes_for(k, &lb.program, lb.multi);
    let compiler = Compiler::new();
    let req =
        CompileRequest::new(&lb.program, &scopes, topo).with_solve_profile(SolveProfile::fast());
    let out = compiler.compile(&req).expect("healthy k=16 compile");
    for entries in AUDIT_SIZES {
        let mut rt = Runtime::new(&out);
        for i in 0..entries {
            rt.install("conn_table", i, 0x0a00_0000 + i)
                .expect("bench entry install");
        }
        let mut clean_times = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            let rep = rt.audit_switches();
            clean_times.push(t.elapsed());
            assert!(rep.clean(), "clean deployment must audit clean");
        }
        clean_times.sort();
        let digests = rt.audit_switches().digests_compared;

        // Seed drift on every hosting switch: one foreign entry plus one
        // corrupted value, so each shard pays the full diff path.
        let hosts: Vec<String> = out
            .placement
            .switches
            .iter()
            .filter(|(_, p)| p.extern_entries.contains_key("conn_table"))
            .map(|(n, _)| n.clone())
            .collect();
        let mut drifted_times = Vec::with_capacity(SAMPLES);
        let mut findings = 0;
        for round in 0..SAMPLES {
            let mut seeded = 0;
            for (i, sw) in hosts.iter().enumerate() {
                let op = DriftOp::Insert {
                    table: "conn_table".into(),
                    key: 0xd41f_7000 + (round * hosts.len() + i) as u64,
                    value: 0xbad,
                };
                rt.inject_drift(sw, &op).expect("drift injects");
                seeded += 1;
            }
            let t = Instant::now();
            let rep = rt.audit_switches();
            drifted_times.push(t.elapsed());
            assert_eq!(rep.findings.len(), seeded, "audit must find every seed");
            findings = seeded;
        }
        drifted_times.sort();
        println!(
            "audit LB(MULTI-SW)@k16 entries={entries:>5}: clean p50 {:>9.1?} \
             ({digests} digests), drifted p50 {:>9.1?} ({findings} repairs)",
            clean_times[SAMPLES / 2],
            drifted_times[SAMPLES / 2],
        );
    }
}

/// Packets replayed through the compiled engine per pps measurement.
const PPS_PACKETS: u64 = 400_000;
/// Packets for the interpreter baseline (same seed, slower engine).
const PPS_INTERP_PACKETS: u64 = 100_000;
/// Packets replayed while each rollout scenario flips epochs.
const PPS_ROLLOUT_PACKETS: u64 = 120_000;
/// Traffic seed shared by every pps measurement.
const PPS_SEED: u64 = 0x9e37_79b9;
/// Smoke mode: the compiled single-worker engine must beat the
/// interpreter by at least this factor on the NetCache k = 8 deployment.
const PPS_SMOKE_FLOOR: f64 = 8.0;
/// Smoke mode: packet budgets for the quick pps tripwire.
const PPS_SMOKE_PACKETS: u64 = 60_000;
const PPS_SMOKE_INTERP_PACKETS: u64 = 20_000;

/// The pps workload: NetCache at k = 8, MULTI-SW, with cache entries
/// installed so replayed traffic exercises hit, miss, and hot-key paths.
fn pps_workload() -> (Compiler, CompileRequest<'static>, lyra::CompileOutput) {
    let program = programs::netcache().leak();
    let scopes = scopes_for(8, program, true).leak();
    let req = CompileRequest::new(program, scopes, pod(8)).with_solve_profile(SolveProfile::fast());
    let compiler = Compiler::new();
    let out = compiler.compile(&req).expect("NetCache k=8 compiles");
    (compiler, req, out)
}

fn seeded_runtime(out: &lyra::CompileOutput) -> Runtime<'_> {
    let mut rt = Runtime::new(out);
    for i in 0..64u64 {
        if rt.install("cache_lookup", i * 5, i % 97).is_err() {
            break;
        }
    }
    rt
}

fn replay_json(r: &ReplayReport) -> Object {
    let mut o = Object::new();
    o.push("packets", Value::Number(r.packets as f64));
    o.push("delivered", Value::Number(r.delivered as f64));
    o.push(
        "refused_epoch_mismatch",
        Value::Number(r.refused_epoch_mismatch as f64),
    );
    o.push(
        "mixed_epoch_exposure",
        Value::Number(r.mixed_epoch_exposure as f64),
    );
    o.push("effects", Value::Number(r.effects as f64));
    o.push("workers", Value::Number(r.workers as f64));
    o.push("elapsed_ms", Value::Number(ms(r.elapsed)));
    o.push("pps", Value::Number(r.pps));
    o
}

/// Replay traffic while a two-phase rollout flips the deployment over a
/// lossy channel; returns the scenario row and the exposure count.
fn pps_rollout_scenario(
    name: &str,
    compiler: &Compiler,
    req: &CompileRequest,
    out: &lyra::CompileOutput,
    packets: u64,
    kill_first_target: bool,
) -> (Object, u64) {
    let faults = FaultSet::new().with_switch("Agg1");
    let r = compiler
        .recompile_for_faults(req, out, &faults)
        .expect("Agg1 failover recompile");
    let mut rt = seeded_runtime(out);
    rt.fail_switch("Agg1").expect("live failover");
    let mut chan = LossyChannel::new(3)
        .with_drop_p(0.2)
        .with_ack_loss_p(0.1)
        .with_dup_p(0.05);
    let mut config = RolloutConfig::default().with_scope_health(r.scope_health.clone());
    if kill_first_target {
        // Kill the alphabetically-first switch of the new placement right
        // after its prepare lands: the commit starves and the rollout must
        // roll every switch back while traffic keeps flowing.
        let victim = r
            .output
            .placement
            .switches
            .keys()
            .next()
            .expect("new placement has switches")
            .clone();
        chan = LossyChannel::new(3).with_switch_death(&victim, 1);
        config.max_attempts = 3;
        config.base_backoff = Duration::from_micros(5);
        config.max_backoff = Duration::from_micros(50);
    }
    let replay_cfg = ReplayConfig::default()
        .with_packets(packets)
        .with_workers(2)
        .with_seed(PPS_SEED);
    let outcome = replay_under_rollout(&mut rt, &r.output, &mut chan, &config, &replay_cfg)
        .expect("rollout starts");
    let state = if outcome.rollout.committed {
        "committed"
    } else if outcome.rollout.rolled_back {
        "rolled_back"
    } else {
        "no-op"
    };
    println!(
        "pps   rollout[{name}]: {state}, {} delivered, {} refused (loss), {} mixed-epoch, \
         {} forced rollback(s)",
        outcome.replay.delivered,
        outcome.replay.refused_epoch_mismatch,
        outcome.replay.mixed_epoch_exposure,
        outcome.rollout.forced_rollbacks,
    );
    let exposure = outcome.replay.mixed_epoch_exposure;
    let mut o = Object::new();
    o.push("name", Value::str(name));
    o.push("outcome", Value::str(state));
    o.push("replay", Value::Object(replay_json(&outcome.replay)));
    let mut ro = Object::new();
    ro.push("committed", Value::Bool(outcome.rollout.committed));
    ro.push("rolled_back", Value::Bool(outcome.rollout.rolled_back));
    ro.push(
        "forced_rollbacks",
        Value::Number(outcome.rollout.forced_rollbacks as f64),
    );
    ro.push(
        "messages_sent",
        Value::Number(outcome.rollout.messages_sent as f64),
    );
    ro.push("dropped", Value::Number(outcome.rollout.dropped as f64));
    ro.push("retries", Value::Number(outcome.rollout.retries as f64));
    o.push("rollout", Value::Object(ro));
    (o, exposure)
}

fn record_pps() -> Object {
    let (compiler, req, out) = pps_workload();
    let rt = seeded_runtime(&out);
    let interp = replay_interpreted(
        &rt,
        &ReplayConfig::default()
            .with_packets(PPS_INTERP_PACKETS)
            .with_seed(PPS_SEED),
    );
    let single = replay_compiled(
        &rt,
        &ReplayConfig::default()
            .with_packets(PPS_PACKETS)
            .with_workers(1)
            .with_seed(PPS_SEED),
    );
    let batched = replay_compiled(
        &rt,
        &ReplayConfig::default()
            .with_packets(PPS_PACKETS)
            .with_seed(PPS_SEED),
    );
    println!(
        "pps   NetCache(MULTI-SW)@k8: interpreter {:.0} pps, compiled(1w) {:.0} pps ({:.1}x), \
         compiled({}w) {:.0} pps ({:.1}x)",
        interp.pps,
        single.pps,
        single.pps / interp.pps.max(1e-9),
        batched.workers,
        batched.pps,
        batched.pps / interp.pps.max(1e-9),
    );
    let (lossy_commit, e1) = pps_rollout_scenario(
        "lossy-commit",
        &compiler,
        &req,
        &out,
        PPS_ROLLOUT_PACKETS,
        false,
    );
    let (lossy_rollback, e2) = pps_rollout_scenario(
        "lossy-rollback",
        &compiler,
        &req,
        &out,
        PPS_ROLLOUT_PACKETS,
        true,
    );
    assert_eq!(e1 + e2, 0, "a packet executed under two epochs");

    let mut root = Object::new();
    root.push("bench", Value::str("pps"));
    root.push("case", Value::str("NetCache(MULTI-SW)@k8"));
    root.push("interpreter", Value::Object(replay_json(&interp)));
    root.push("compiled_single", Value::Object(replay_json(&single)));
    root.push("compiled_batched", Value::Object(replay_json(&batched)));
    root.push(
        "speedup_single",
        Value::Number(single.pps / interp.pps.max(1e-9)),
    );
    root.push(
        "speedup_batched",
        Value::Number(batched.pps / interp.pps.max(1e-9)),
    );
    root.push(
        "rollout_scenarios",
        Value::Array(vec![
            Value::Object(lossy_commit),
            Value::Object(lossy_rollback),
        ]),
    );
    root
}

/// Quick data-plane tripwire: the compiled engine must beat the
/// interpreter by [`PPS_SMOKE_FLOOR`], and a lossy rollout under traffic
/// must keep mixed-epoch exposure at zero. Returns the failure count.
fn pps_smoke() -> usize {
    let (compiler, req, out) = pps_workload();
    let rt = seeded_runtime(&out);
    let interp = replay_interpreted(
        &rt,
        &ReplayConfig::default()
            .with_packets(PPS_SMOKE_INTERP_PACKETS)
            .with_seed(PPS_SEED),
    );
    let single = replay_compiled(
        &rt,
        &ReplayConfig::default()
            .with_packets(PPS_SMOKE_PACKETS)
            .with_workers(1)
            .with_seed(PPS_SEED),
    );
    let speedup = single.pps / interp.pps.max(1e-9);
    let mut failures = 0;
    let status = if speedup < PPS_SMOKE_FLOOR {
        failures += 1;
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "smoke pps NetCache(MULTI-SW)@k8: compiled {:.0} pps vs interpreter {:.0} pps — \
         {speedup:.1}x (floor {PPS_SMOKE_FLOOR:.0}x) {status}",
        single.pps, interp.pps
    );
    drop(rt);
    let (_, exposure) = pps_rollout_scenario(
        "lossy-rollback",
        &compiler,
        &req,
        &out,
        PPS_SMOKE_PACKETS,
        true,
    );
    if exposure > 0 {
        println!("smoke pps: {exposure} packet(s) executed under two epochs REGRESSED");
        failures += 1;
    }
    failures
}

fn record_fig9() -> Object {
    let mut rows: Vec<Value> = Vec::new();
    for entry in figure9_corpus() {
        let mut topo = Topology::new();
        topo.add_switch("ToR1", Layer::ToR, "tofino-32q");
        let scopes: String = entry
            .scopes
            .lines()
            .filter_map(|l| l.split(':').next())
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|a| format!("{a}: [ ToR1 | PER-SW | - ]"))
            .collect::<Vec<_>>()
            .join("\n");
        let m = measure(
            &Compiler::new(),
            &entry.source,
            &scopes,
            &topo,
            SolveProfile::default(),
            SAMPLES,
        );
        // Hit rate over repeat compiles with a shared cache: the first
        // misses, the rest hit.
        let cache = std::sync::Arc::new(SynthCache::new());
        let compiler = Compiler::new().with_synth_cache(cache.clone());
        for _ in 0..3 {
            let req = CompileRequest::new(&entry.source, &scopes, topo.clone());
            compiler.compile(&req).expect("corpus compiles");
        }
        let hit_rate = cache.hits() as f64 / (cache.hits() + cache.misses()) as f64;
        println!(
            "fig9  {:<20} median {:>9.1?}  conflicts {:>6}  cache hit rate {:.2}",
            entry.name, m.median, m.conflicts, hit_rate
        );
        let mut o = Object::new();
        o.push("name", Value::str(entry.name));
        o.push("median_ms", Value::Number(ms(m.median)));
        o.push("conflicts", Value::Number(m.conflicts as f64));
        o.push("cache_hit_rate", Value::Number(hit_rate));
        rows.push(Value::Object(o));
    }
    let mut root = Object::new();
    root.push("bench", Value::str("fig9"));
    root.push("samples", Value::Number(SAMPLES as f64));
    root.push("programs", Value::Array(rows));
    root
}

/// Smoke mode: single-sample the k = 4 fig10 cases against the committed
/// baseline. Returns the number of regressions.
fn smoke() -> usize {
    let baseline = match std::fs::read_to_string("BENCH_fig10.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("record_bench --smoke: cannot read BENCH_fig10.json: {e}");
            return 1;
        }
    };
    let baseline = match parse(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("record_bench --smoke: BENCH_fig10.json is not valid JSON: {e:?}");
            return 1;
        }
    };
    let Some(cases_json) = baseline.get("cases").and_then(|c| c.as_array()) else {
        eprintln!("record_bench --smoke: baseline has no `cases` array");
        return 1;
    };
    let mut failures = 0;
    for case in cases() {
        let k = 4;
        let recorded = cases_json.iter().find(|c| {
            c.get("name").and_then(|n| n.as_str()) == Some(case.name)
                && c.get("k").and_then(|v| v.as_number()) == Some(k as f64)
        });
        let Some(baseline_ms) = recorded
            .and_then(|c| c.get("median_ms"))
            .and_then(|v| v.as_number())
        else {
            eprintln!("smoke: no baseline for {} @k{k} — skipping", case.name);
            continue;
        };
        let topo = pod(k);
        let scopes = scopes_for(k, &case.program, case.multi);
        let m = measure(
            &Compiler::new(),
            &case.program,
            &scopes,
            &topo,
            SolveProfile::default(),
            1,
        );
        let bound = baseline_ms * SMOKE_FACTOR + SMOKE_GRACE_MS;
        let status = if ms(m.median) > bound {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "smoke {:<20} k={k}: {:.1} ms (baseline {:.1} ms, bound {:.1} ms) {status}",
            case.name,
            ms(m.median),
            baseline_ms,
            bound
        );
        if ms(m.median) > bound {
            failures += 1;
        }
    }

    // Rollout-latency tripwire: p50 prepare+commit on the k = 16 LB
    // failover. Bounded by the committed baseline when it carries the
    // `rollout` section, by an absolute ceiling otherwise.
    let rollout_baseline = baseline
        .get("rollout")
        .and_then(|r| r.get("p50_commit_ms"))
        .and_then(|v| v.as_number());
    let bound = match rollout_baseline {
        Some(b) => b * SMOKE_FACTOR + SMOKE_GRACE_MS,
        None => SMOKE_ROLLOUT_ABS_MS,
    };
    let p50 = ms(measure_rollout(1));
    let status = if p50 > bound { "REGRESSED" } else { "ok" };
    println!(
        "smoke rollout LB(MULTI-SW)@k16: {p50:.2} ms (bound {bound:.1} ms{}) {status}",
        if rollout_baseline.is_some() {
            ""
        } else {
            ", absolute — no baseline"
        }
    );
    if p50 > bound {
        failures += 1;
    }

    // O(delta) tripwire: at the smallest scale row, delta prepares must
    // still beat forced snapshots by the floor on prepare bytes — this is
    // deterministic wire accounting, not timing, so no grace is needed.
    let (n, table_size) = ROLLOUT_SCALES[0];
    let row = measure_rollout_scale(n, table_size, 1);
    let ratio = row.bytes_snapshot as f64 / row.bytes_delta.max(1) as f64;
    let status = if ratio < SMOKE_DELTA_RATIO_FLOOR {
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "smoke rollout-delta @{n} entries: snapshot {}B / delta {}B = {ratio:.1}x \
         (floor {SMOKE_DELTA_RATIO_FLOOR:.0}x) {status}",
        row.bytes_snapshot, row.bytes_delta
    );
    if ratio < SMOKE_DELTA_RATIO_FLOOR {
        failures += 1;
    }

    // Restart-recovery tripwire: p50 of driving a crash@commit-decision
    // rollout home from the intent log. Bounded by the committed baseline
    // when it carries the `recovery` section, by an absolute ceiling
    // otherwise.
    let recovery_baseline = baseline
        .get("recovery")
        .and_then(|r| r.get("p50_recover_ms"))
        .and_then(|v| v.as_number());
    let bound = match recovery_baseline {
        Some(b) => b * SMOKE_FACTOR + SMOKE_GRACE_MS,
        None => SMOKE_RECOVERY_ABS_MS,
    };
    let p50 = ms(measure_recovery(1));
    let status = if p50 > bound { "REGRESSED" } else { "ok" };
    println!(
        "smoke recovery LB(MULTI-SW)@k16: {p50:.2} ms (bound {bound:.1} ms{}) {status}",
        if recovery_baseline.is_some() {
            ""
        } else {
            ", absolute — no baseline"
        }
    );
    if p50 > bound {
        failures += 1;
    }

    // Self-healing tripwire: p50 of one closed-loop remediation round
    // (seeded Agg1 kill detected, recompiled, rolled out, audited) on the
    // k = 16 LB deployment. Bounded by the committed baseline when it
    // carries the `mttr` section, by an absolute ceiling otherwise.
    let mttr_baseline = baseline
        .get("mttr")
        .and_then(|r| r.get("p50_heal_ms"))
        .and_then(|v| v.as_number());
    let bound = match mttr_baseline {
        Some(b) => b * SMOKE_FACTOR + SMOKE_GRACE_MS,
        None => SMOKE_MTTR_ABS_MS,
    };
    let (p50, ticks) = measure_mttr(1);
    let p50 = ms(p50);
    let status = if p50 > bound { "REGRESSED" } else { "ok" };
    println!(
        "smoke mttr LB(MULTI-SW)@k16: {p50:.2} ms / {ticks} ticks (bound {bound:.1} ms{}) {status}",
        if mttr_baseline.is_some() {
            ""
        } else {
            ", absolute — no baseline"
        }
    );
    if p50 > bound {
        failures += 1;
    }

    // Datacenter-scale tripwires: the symmetry-breaking + decomposition
    // path must keep the MULTI-SW curve bent. k = 16 is bounded against
    // the committed snapshot at 2x (tighter than the generic 3x above,
    // with a small grace since the accelerated row is tens of ms); k = 32
    // carries the absolute one-second budget from the scaling work —
    // losing the quotient path sends it back toward the multi-second
    // monolithic encoding, which either bound catches.
    let nc = cases().pop().expect("NetCache MULTI-SW case");
    for (k, bound, label) in [
        (
            16usize,
            cases_json
                .iter()
                .find(|c| {
                    c.get("name").and_then(|n| n.as_str()) == Some(nc.name)
                        && c.get("k").and_then(|v| v.as_number()) == Some(16.0)
                })
                .and_then(|c| c.get("median_ms"))
                .and_then(|v| v.as_number())
                .map(|b| b * SMOKE_SCALE_FACTOR + SMOKE_SCALE_GRACE_MS),
            "2x snapshot",
        ),
        (32usize, Some(SMOKE_K32_BUDGET_MS), "absolute budget"),
    ] {
        let Some(bound) = bound else {
            eprintln!("smoke: no baseline for {} @k{k} — skipping", nc.name);
            continue;
        };
        let topo = pod(k);
        let scopes = scopes_for(k, &nc.program, nc.multi);
        let m = measure(
            &Compiler::new(),
            &nc.program,
            &scopes,
            &topo,
            SolveProfile::default(),
            1,
        );
        let status = if ms(m.median) > bound {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "smoke {:<20} k={k}: {:.1} ms (bound {:.1} ms, {label}) {status}",
            nc.name,
            ms(m.median),
            bound
        );
        if ms(m.median) > bound {
            failures += 1;
        }
    }
    failures + pps_smoke()
}

fn main() {
    if std::env::args().any(|a| a == "--audit-cost") {
        audit_cost();
        return;
    }
    if std::env::args().any(|a| a == "--pps-smoke") {
        let failures = pps_smoke();
        if failures > 0 {
            eprintln!("record_bench --pps-smoke: {failures} data-plane tripwire(s) failed");
            std::process::exit(1);
        }
        println!("record_bench --pps-smoke: data plane within bounds");
        return;
    }
    if std::env::args().any(|a| a == "--smoke") {
        let failures = smoke();
        if failures > 0 {
            eprintln!("record_bench --smoke: {failures} case(s) regressed over baseline");
            std::process::exit(1);
        }
        println!("record_bench --smoke: all cases within bounds");
        return;
    }
    let fig10 = record_fig10();
    std::fs::write("BENCH_fig10.json", Value::Object(fig10).to_pretty())
        .expect("write BENCH_fig10.json");
    let fig9 = record_fig9();
    std::fs::write("BENCH_fig9.json", Value::Object(fig9).to_pretty())
        .expect("write BENCH_fig9.json");
    let pps = record_pps();
    std::fs::write("BENCH_pps.json", Value::Object(pps).to_pretty()).expect("write BENCH_pps.json");
    println!("wrote BENCH_fig10.json, BENCH_fig9.json, and BENCH_pps.json");
}
