//! Benchmark harness crate — see the `benches/` directory; one bench per
//! table/figure of the paper. This library target is intentionally empty.
