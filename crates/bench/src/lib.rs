//! Benchmark harness crate — see the `benches/` directory; one bench per
//! table/figure of the paper.
//!
//! The workspace builds offline with no external crates, so this library
//! provides the small timing harness the benches share: warm-up, a fixed
//! sample count, and min/median/max wall-clock reporting. Benches are
//! `harness = false` binaries; each prints its paper-figure table, asserts
//! its shape checks, and then times its hot paths through [`Harness`].

use std::time::{Duration, Instant};

/// A minimal sampling timer: runs each benchmark once to warm up, then
/// `samples` more times, and prints `min / median / max`.
pub struct Harness {
    samples: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness taking 10 samples per benchmark.
    pub fn new() -> Self {
        Harness { samples: 10 }
    }

    /// Set the number of timed samples.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Time `f`, print a result line, and return the median.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Duration {
        std::hint::black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        println!(
            "bench {name:<40} min {:>9.1?}  median {:>9.1?}  max {:>9.1?}  ({} samples)",
            times[0],
            median,
            times[times.len() - 1],
            self.samples
        );
        median
    }
}
