//! §7.2 extensibility case study — growing the ConnTable.
//!
//! The paper's narrative: ConnTable and VIPTable start at one million
//! entries each (fits the aggregation layer); growing ConnTable to 2.5 and
//! then 4 million entries forces Lyra to split it across the aggregation
//! and ToR layers, generating the cross-switch hit/miss pass-through
//! automatically. Each recompile took the paper less than 10 seconds (vs
//! ~1.5 days of manual work).
//!
//! Shape checks:
//!  * every size compiles in < 10 s;
//!  * at 4 M entries the table occupies ≥ 2 switches (a single ASIC holds
//!    about 3 M);
//!  * the split produces carried hit/miss bridge fields.

use lyra::{CompileRequest, Compiler};
use lyra_apps::programs;
use lyra_bench::Harness;
use lyra_topo::figure1_network;

const SCOPES: &str = "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

fn run_case(conn_entries: u64) -> (std::time::Duration, usize, bool) {
    let program = programs::load_balancer(conn_entries);
    let t = std::time::Instant::now();
    let out = Compiler::new()
        .compile(&CompileRequest::new(&program, SCOPES, figure1_network()))
        .unwrap_or_else(|e| panic!("{conn_entries}-entry LB: {e}"));
    let elapsed = t.elapsed();
    let holders = out
        .placement
        .switches
        .values()
        .filter(|p| p.extern_entries.contains_key("conn_table"))
        .count();
    let bridged = out
        .placement
        .switches
        .values()
        .any(|p| !p.carried_in.is_empty() || !p.carried_out.is_empty());
    (elapsed, holders, bridged)
}

fn print_study() {
    println!("\n=== §7.2 case study: ConnTable growth ===");
    for entries in [1_000_000u64, 2_500_000, 4_000_000] {
        let (elapsed, holders, bridged) = run_case(entries);
        println!(
            "ConnTable {entries:>9}: {elapsed:>8.1?}, table on {holders} switch(es){}",
            if bridged {
                ", hit/miss bridged between switches"
            } else {
                ""
            }
        );
        assert!(
            elapsed.as_secs() < 10,
            "recompile exceeded the paper's 10 s bound"
        );
    }
    let (_, holders_4m, bridged_4m) = run_case(4_000_000);
    assert!(holders_4m >= 2, "4M entries must split across switches");
    assert!(
        bridged_4m,
        "a split ConnTable must bridge hit/miss information"
    );
}

fn main() {
    print_study();
    let harness = Harness::new().samples(10);
    for entries in [1_000_000u64, 2_500_000, 4_000_000] {
        let program = programs::load_balancer(entries);
        harness.bench(&format!("ext_conntable/conn_{entries}"), || {
            Compiler::new()
                .compile(&CompileRequest::new(&program, SCOPES, figure1_network()))
                .unwrap()
        });
    }
}
