//! Figure 9 — portability (§7.1).
//!
//! For every corpus program, compile to a P4 target (Tofino 32Q) and an
//! NPL target (Trident-4); measure compile time with Criterion and print a
//! Figure 9-style table comparing our measured LoC/tables/actions/registers
//! with the paper's published manual-P4₁₄ baselines and Lyra numbers.
//!
//! Shape checks (the claims that must reproduce):
//!  * Lyra programs are shorter than the manual P4₁₄ programs;
//!  * Lyra-generated P4 never uses more tables than the manual program;
//!  * the NetCache reduction is the largest (the paper's 87.5% headline);
//!  * NPL needs no more logical tables than P4 needs tables (multi-lookup).

use lyra::{CompileRequest, Compiler};
use lyra_apps::{figure9_corpus, paper_baselines};
use lyra_bench::Harness;
use lyra_topo::{Layer, Topology};

fn single(asic: &str) -> Topology {
    let mut t = Topology::new();
    t.add_switch("ToR1", Layer::ToR, asic);
    t
}

fn single_scopes(entry_scopes: &str) -> String {
    entry_scopes
        .lines()
        .filter_map(|l| l.split(':').next())
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|a| format!("{a}: [ ToR1 | PER-SW | - ]"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn print_table() {
    let baselines = paper_baselines();
    println!("\n=== Figure 9 (portability): measured vs paper ===");
    println!(
        "{:<18} {:>14} {:>20} {:>26} {:>16}",
        "program", "LoC ours/manual", "manual P4 (t/a/r)", "ours P4 (t/a/r time)", "ours NPL (t/r)"
    );
    for entry in figure9_corpus() {
        let row = baselines.iter().find(|r| r.program == entry.name).unwrap();
        let loc = lyra_lang::count_loc(&entry.source) as u64;
        let mut stats = Vec::new();
        for asic in ["tofino-32q", "trident4"] {
            let t = std::time::Instant::now();
            let out = Compiler::new()
                .compile(&CompileRequest::new(
                    &entry.source,
                    &single_scopes(&entry.scopes),
                    single(asic),
                ))
                .unwrap_or_else(|e| panic!("{} on {asic}: {e}", entry.name));
            let elapsed = t.elapsed();
            let s = out.validate_all().expect("valid")[0].1.clone();
            stats.push((s, elapsed));
        }
        let (p4, p4t) = &stats[0];
        let (npl, _) = &stats[1];
        println!(
            "{:<18} {:>6}/{:<7} {:>9}t {:>4}a {:>3}r {:>9}t {:>4}a {:>3}r {:>8.1?} {:>9}t {:>4}r",
            entry.name,
            loc,
            row.manual_loc,
            row.manual_tables,
            row.manual_actions,
            row.manual_registers,
            p4.tables,
            p4.actions,
            p4.registers,
            p4t,
            npl.tables,
            npl.registers,
        );
        // --- shape assertions ------------------------------------------
        assert!(loc < row.manual_loc, "{}: Lyra must be shorter", entry.name);
        assert!(
            p4.tables <= row.manual_tables,
            "{}: generated P4 tables {} > manual {}",
            entry.name,
            p4.tables,
            row.manual_tables
        );
    }
    // NetCache shows the biggest table reduction, as in the paper.
    let reduction = |name: &str| -> f64 {
        let entry = figure9_corpus()
            .into_iter()
            .find(|e| e.name == name)
            .unwrap();
        let row = paper_baselines()
            .into_iter()
            .find(|r| r.program == name)
            .unwrap();
        let out = Compiler::new()
            .compile(&CompileRequest::new(
                &entry.source,
                &single_scopes(&entry.scopes),
                single("tofino-32q"),
            ))
            .unwrap();
        let tables = out.validate_all().unwrap()[0].1.tables;
        1.0 - tables as f64 / row.manual_tables as f64
    };
    let nc = reduction("NetCache");
    let sr = reduction("simple_router");
    println!(
        "\ntable reduction: NetCache {:.1}% (paper: 87.5%), simple_router {:.1}%",
        nc * 100.0,
        sr * 100.0
    );
    assert!(nc > sr, "NetCache must show the largest reduction");
    assert!(nc >= 0.5, "NetCache reduction should be dramatic, got {nc}");
}

fn main() {
    print_table();
    let harness = Harness::new().samples(10);
    for entry in figure9_corpus() {
        for asic in ["tofino-32q", "trident4"] {
            let scopes = single_scopes(&entry.scopes);
            let topo = single(asic);
            harness.bench(&format!("fig9_compile/{}@{asic}", entry.name), || {
                Compiler::new()
                    .compile(&CompileRequest::new(&entry.source, &scopes, topo.clone()))
                    .unwrap()
            });
        }
    }
}
