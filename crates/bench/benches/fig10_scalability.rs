//! Figure 10 — scalability of extensibility (§7.2).
//!
//! Compile three deployments on fat-tree pods of growing size (k = 4, 8,
//! 16, 32 switches): the load balancer in MULTI-SW mode, NetCache in
//! PER-SW mode, and NetCache in MULTI-SW mode; each on an all-Tofino (P4)
//! pod and an all-Trident-4 (NPL) pod.
//!
//! Shape checks against the paper's Figure 10:
//!  * MULTI-SW compile time grows with k but stays below 100 s even at
//!    k = 32;
//!  * PER-SW compile time stays (near-)flat — identical switches share one
//!    synthesis run;
//!  * NPL/Trident-4 compiles faster than P4/Tofino at the same k.

use lyra::{CompileRequest, Compiler};
use lyra_apps::programs;
use lyra_bench::Harness;
use lyra_topo::{fat_tree_pod, Topology};
use std::time::{Duration, Instant};

struct Case {
    name: &'static str,
    program: String,
    multi: bool,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "LB(MULTI-SW)",
            program: programs::load_balancer(1_000_000),
            multi: true,
        },
        Case {
            name: "NetCache(PER-SW)",
            program: programs::netcache(),
            multi: false,
        },
        Case {
            name: "NetCache(MULTI-SW)",
            program: programs::netcache(),
            multi: true,
        },
    ]
}

fn alg_of(program: &str) -> &'static str {
    if program.contains("algorithm loadbalancer") {
        "loadbalancer"
    } else {
        "netcache"
    }
}

fn scopes_for(k: usize, program: &str, multi: bool) -> String {
    let alg = alg_of(program);
    if multi {
        let aggs: Vec<String> = (1..=k / 2).map(|i| format!("Agg{i}")).collect();
        let tors: Vec<String> = (1..=k / 2).map(|i| format!("ToR{i}")).collect();
        format!(
            "{alg}: [ ToR*,Agg* | MULTI-SW | ({}->{}) ]",
            aggs.join(","),
            tors.join(",")
        )
    } else {
        format!("{alg}: [ ToR*,Agg* | PER-SW | - ]")
    }
}

fn compile_once(program: &str, scopes: &str, topo: Topology) -> Duration {
    let t = Instant::now();
    Compiler::new()
        .compile(&CompileRequest::new(program, scopes, topo))
        .expect("fig10 workload compiles");
    t.elapsed()
}

fn print_series() {
    println!("\n=== Figure 10 (scalability): compile time vs pod size ===");
    let ks = [4usize, 8, 16, 32];
    for (asic_tor, asic_agg, label) in [
        ("tofino-32q", "tofino-32q", "Tofino/P4"),
        ("trident4", "trident4", "Trident-4/NPL"),
    ] {
        println!("--- {label} ---");
        let mut rows: Vec<(String, Vec<Duration>)> = Vec::new();
        for case in cases() {
            let mut series = Vec::new();
            for &k in &ks {
                let topo = fat_tree_pod(k, asic_tor, asic_agg);
                let scopes = scopes_for(k, &case.program, case.multi);
                series.push(compile_once(&case.program, &scopes, topo));
            }
            let cells: Vec<String> = series.iter().map(|d| format!("{d:>9.1?}")).collect();
            println!("{:<20} {}", case.name, cells.join(" "));
            rows.push((case.name.to_string(), series));
        }
        // --- shape assertions ---------------------------------------------
        for (name, series) in &rows {
            // Everything finishes well under the paper's 100 s bound.
            for (i, d) in series.iter().enumerate() {
                assert!(
                    d.as_secs() < 100,
                    "{label}/{name} at k={} exceeded 100 s: {d:?}",
                    ks[i]
                );
            }
            if name.contains("PER-SW") {
                // PER-SW stays flat: k=32 within 8x of k=4 (the paper's
                // curve is horizontal; we allow generous noise).
                let flat = series[3].as_secs_f64() <= series[0].as_secs_f64() * 8.0 + 0.05;
                assert!(flat, "{label}/{name} PER-SW not flat: {series:?}");
            } else {
                // MULTI-SW grows: k=32 costs more than k=4.
                assert!(
                    series[3] > series[0],
                    "{label}/{name} MULTI-SW should grow with k: {series:?}"
                );
            }
        }
    }
    // NPL faster than P4 on the MULTI-SW workloads at k=32 (the paper's 2×).
    let k = 32;
    let lb = &cases()[0];
    let p4 = compile_once(
        &lb.program,
        &scopes_for(k, &lb.program, true),
        fat_tree_pod(k, "tofino-32q", "tofino-32q"),
    );
    let npl = compile_once(
        &lb.program,
        &scopes_for(k, &lb.program, true),
        fat_tree_pod(k, "trident4", "trident4"),
    );
    println!("\nk=32 LB(MULTI-SW): P4 {p4:?} vs NPL {npl:?} (paper: NPL ≈ 2× faster)");
}

fn main() {
    print_series();
    let harness = Harness::new().samples(10);
    for case in cases() {
        for &k in &[4usize, 16] {
            let topo = fat_tree_pod(k, "tofino-32q", "trident4");
            let scopes = scopes_for(k, &case.program, case.multi);
            harness.bench(&format!("fig10/{}@k{k}", case.name), || {
                Compiler::new()
                    .compile(&CompileRequest::new(&case.program, &scopes, topo.clone()))
                    .unwrap()
            });
        }
    }
}
