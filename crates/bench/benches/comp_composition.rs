//! §7.3 composition case study — compressing a service chain.
//!
//! A five-algorithm Dejavu-style chain (classifier, firewall, gateway,
//! load balancer, scheduler) is compiled while the scope shrinks from the
//! whole testbed to a single switch. Smaller scopes are harder: the entire
//! chain must fit one ASIC's resources. The paper reports under five
//! seconds per compile (vs ~2 days of manual restructuring).
//!
//! Shape checks:
//!  * every scope compiles in < 5 s;
//!  * the single-switch scope really does host all five algorithms;
//!  * per-algorithm resources are prefix-isolated (no shared tables).

use lyra::{CompileRequest, Compiler};
use lyra_apps::programs;
use lyra_bench::Harness;
use lyra_topo::evaluation_testbed;

const ALGS: [&str; 5] = ["classifier", "firewall", "gateway", "chain_lb", "scheduler"];

fn scopes_for(region: &str) -> String {
    ALGS.iter()
        .map(|a| format!("{a}: [ {region} | PER-SW | - ]"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn print_study() {
    println!("\n=== §7.3 case study: composition, scope 8 switches → 1 ===");
    let program = programs::service_chain();
    for region in ["ToR*,Agg*", "ToR*", "ToR1,ToR2", "ToR1"] {
        let scopes = scopes_for(region);
        let t = std::time::Instant::now();
        let out = Compiler::new()
            .compile(&CompileRequest::new(
                &program,
                &scopes,
                evaluation_testbed(),
            ))
            .unwrap_or_else(|e| panic!("composition in `{region}`: {e}"));
        let elapsed = t.elapsed();
        println!(
            "scope {region:<12}: {elapsed:>8.1?}, {} switch(es) programmed",
            out.placement.used_switches()
        );
        assert!(
            elapsed.as_secs() < 5,
            "compile exceeded the paper's 5 s bound"
        );
        if region == "ToR1" {
            let plan = out.placement.switches.get("ToR1").expect("ToR1 programmed");
            assert_eq!(
                plan.instrs.len(),
                ALGS.len(),
                "all five algorithms on one switch"
            );
            for t in &plan.tables {
                assert!(
                    ALGS.iter().any(|a| t.name.starts_with(a)),
                    "table {} not algorithm-prefixed",
                    t.name
                );
            }
        }
    }
}

fn main() {
    print_study();
    let program = programs::service_chain();
    let harness = Harness::new().samples(10);
    for region in ["ToR*,Agg*", "ToR1"] {
        let scopes = scopes_for(region);
        harness.bench(&format!("composition/scope_{region}"), || {
            Compiler::new()
                .compile(&CompileRequest::new(
                    &program,
                    &scopes,
                    evaluation_testbed(),
                ))
                .unwrap()
        });
    }
}
