//! Optimization ablations (§6 / Appendix C).
//!
//! Two design choices DESIGN.md calls out, measured with the feature on
//! vs off:
//!
//! * **parser hoisting** (Appendix C.1): moving dependency-free constant
//!   metadata stores into the parser as `set_metadata`, which the paper
//!   credits with "a 50% reduction to the number of generated tables in
//!   our P4 INT program";
//! * **MinSwitches objective** (Appendix C.2): minimizing the number of
//!   switches hosting code, traded against plain feasibility search.

use lyra::{CompileRequest, Compiler, Objective};
use lyra_bench::Harness;
use lyra_topo::{figure1_network, Layer, Topology};

/// An INT-flavored program with several constant metadata initializations
/// — the pattern parser hoisting targets.
const HOIST_PROGRAM: &str = r#"
pipeline[P]{int_like};
algorithm int_like {
    int_version = 2;
    int_domain = 7;
    md_sum = int_version + ipv4.srcAddr;
    out = md_sum + int_domain;
}
"#;

const SPREAD_PROGRAM: &str = r#"
pipeline[P]{small};
algorithm small {
    bit[32] x;
    x = ipv4.srcAddr + 1;
    ipv4.dstAddr = x;
}
"#;

fn single(asic: &str) -> Topology {
    let mut t = Topology::new();
    t.add_switch("ToR1", Layer::ToR, asic);
    t
}

fn tables_with_hoisting(on: bool) -> u64 {
    let out = Compiler::new()
        .with_parser_hoisting(on)
        .compile(&CompileRequest::new(
            HOIST_PROGRAM,
            "int_like: [ ToR1 | PER-SW | - ]",
            single("tofino-32q"),
        ))
        .unwrap();
    out.validate_all().unwrap()[0].1.tables
}

fn switches_with_objective(objective: Objective) -> usize {
    let out = Compiler::new()
        .with_objective(objective)
        .compile(&CompileRequest::new(
            SPREAD_PROGRAM,
            "small: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
            figure1_network(),
        ))
        .unwrap();
    out.placement.used_switches()
}

fn stage_detail_time(on: bool) -> std::time::Duration {
    let program = r#"
pipeline[P]{staged};
algorithm staged {
    extern dict<bit[32] k1, bit[32] v1>[2048] first;
    extern dict<bit[32] k2, bit[32] v2>[2048] second;
    if (x in first) {
        y = first[x];
        if (y in second) {
            z = second[y];
        }
    }
}
"#;
    let t = std::time::Instant::now();
    Compiler::new()
        .with_stage_detail(on)
        .compile(&CompileRequest::new(
            program,
            "staged: [ ToR1 | PER-SW | - ]",
            single("tofino-32q"),
        ))
        .expect("staged program compiles");
    t.elapsed()
}

fn print_ablation() {
    println!("\n=== Optimization ablations ===");
    let with = tables_with_hoisting(true);
    let without = tables_with_hoisting(false);
    println!(
        "parser hoisting: {with} tables with, {without} without ({}% reduction; paper: ~50% on INT)",
        (100 * (without - with)) / without.max(1)
    );
    assert!(with < without, "hoisting must reduce table count");

    let feasible = switches_with_objective(Objective::Feasible);
    let minimized = switches_with_objective(Objective::MinSwitches);
    println!("MinSwitches objective: {minimized} switches vs {feasible} with plain feasibility");
    assert!(
        minimized <= feasible,
        "objective must not use more switches"
    );
    assert!(
        minimized <= 2,
        "the tiny program fits the two path-entry switches"
    );

    let coarse = stage_detail_time(false);
    let detail = stage_detail_time(true);
    println!(
        "stage-detail encoding (eqs. 13–15): {detail:?} vs coarse {coarse:?} — fidelity costs solve time"
    );
}

fn main() {
    print_ablation();
    let harness = Harness::new().samples(10);
    for on in [true, false] {
        harness.bench(&format!("ablation/hoisting_{on}"), || {
            tables_with_hoisting(on)
        });
    }
    harness.bench("ablation/objective_feasible", || {
        switches_with_objective(Objective::Feasible)
    });
    harness.bench("ablation/objective_min_switches", || {
        switches_with_objective(Objective::MinSwitches)
    });
}
